//! The Gatekeeper front door of the four-server topology.
//!
//! In the paper's deployment (§VI.C) the Gatekeeper is its own server: the
//! RC's first hop, which "authenticate[s] the user and establish[es] a
//! secure channel of communication between RC and MWS". This module
//! reproduces that as a standalone service: it verifies the §V.D auth blob
//! `ID_RC ‖ E(HashPassword, ID_RC ‖ T ‖ N)` against its own User Database
//! and only then relays the request upstream to the warehouse.
//!
//! The warehouse keeps its own gatekeeper (defense in depth): the relayed
//! request carries the original auth blob and is verified a second time
//! there. The two replay guards are independent, so the single forwarded
//! copy passes both.

use mws_core::clock::{LogicalClock, ReplayPolicy};
use mws_core::gatekeeper::{Gatekeeper, GkReject};
use mws_net::{Client, Service};
use mws_store::StorageKind;
use mws_wire::Pdu;
use parking_lot::Mutex;
use std::sync::Arc;

/// Upstream relay retry budget (transient socket failures only).
const UPSTREAM_ATTEMPTS: u32 = 3;

struct FrontdoorInner {
    gatekeeper: Gatekeeper,
    clock: LogicalClock,
    upstream: Client,
}

/// The standalone Gatekeeper service: authenticate, then relay to the MMS.
#[derive(Clone)]
pub struct GatekeeperFrontdoor {
    inner: Arc<Mutex<FrontdoorInner>>,
}

impl GatekeeperFrontdoor {
    /// A front door with its own in-memory user table, relaying to
    /// `upstream` (an MMS client — TCP in deployment, bus in tests).
    pub fn new(clock: LogicalClock, replay: ReplayPolicy, upstream: Client) -> Self {
        let gatekeeper =
            Gatekeeper::open(StorageKind::Memory, replay).expect("memory storage cannot fail");
        Self {
            inner: Arc::new(Mutex::new(FrontdoorInner {
                gatekeeper,
                clock,
                upstream,
            })),
        }
    }

    /// Registers an RC at the front door. The same identity must also be
    /// registered at the warehouse, which issues the actual token.
    pub fn register(&self, rc_id: &str, password: &str, public_key: &[u8]) {
        self.inner
            .lock()
            .gatekeeper
            .register(rc_id, password, public_key)
            .expect("memory storage cannot fail");
    }

    /// A bindable service facade (clones share the user table and the
    /// upstream connection).
    pub fn as_service(&self) -> impl Service + 'static {
        let inner = self.inner.clone();
        move |req: Pdu| inner.lock().handle(req)
    }
}

impl FrontdoorInner {
    fn handle(&mut self, request: Pdu) -> Pdu {
        if matches!(request, Pdu::HealthRequest) {
            return Pdu::HealthResponse {
                role: "gatekeeper".into(),
                ready: true,
                detail: format!("relaying to {}", self.upstream.target()),
            };
        }
        if matches!(request, Pdu::StatsRequest) {
            return Pdu::StatsResponse {
                role: "gatekeeper".into(),
                text: mws_obs::registry().exposition(),
            };
        }
        let Pdu::RetrieveRequest {
            ref rc_id,
            ref auth,
            ..
        } = request
        else {
            // Deposits go straight to the MMS and key requests to the PKG;
            // the front door only fronts retrievals.
            return Pdu::Error {
                code: 400,
                detail: "unexpected PDU at gatekeeper".into(),
            };
        };
        let now = self.clock.now();
        if let Err(reject) = self.gatekeeper.verify(now, rc_id, auth) {
            let code = match reject {
                GkReject::Replay => 409,
                _ => 401,
            };
            gw_stats().rejected.inc();
            mws_obs::warn!(target: "mws_server", "retrieve stopped at front door",
                code = u64::from(code), reason = reject.to_string(),);
            return Pdu::Error {
                code,
                detail: reject.to_string(),
            };
        }
        match self.upstream.call_with_retry(&request, UPSTREAM_ATTEMPTS) {
            Ok(reply) => {
                gw_stats().relayed.inc();
                mws_obs::debug!(target: "mws_gateway", "retrieve relayed upstream",
                    upstream = self.upstream.target(),);
                reply
            }
            Err(e) => {
                gw_stats().upstream_errors.inc();
                mws_obs::warn!(target: "mws_server", "warehouse unreachable",
                    upstream = self.upstream.target(), error = e.to_string(),);
                Pdu::Error {
                    code: 502,
                    detail: format!("warehouse unreachable: {e}"),
                }
            }
        }
    }
}

/// Front-door relay counters (preregistered, see `crate::stats`).
struct GwStats {
    relayed: mws_obs::Counter,
    rejected: mws_obs::Counter,
    upstream_errors: mws_obs::Counter,
}

fn gw_stats() -> &'static GwStats {
    static STATS: std::sync::OnceLock<GwStats> = std::sync::OnceLock::new();
    STATS.get_or_init(|| {
        let r = mws_obs::registry();
        GwStats {
            relayed: r.counter("mws_gateway_relayed_total"),
            rejected: r.counter("mws_gateway_rejected_total"),
            upstream_errors: r.counter("mws_gateway_upstream_errors_total"),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mws_core::protocol::{Deployment, DeploymentConfig};
    use mws_net::Network;

    /// Front door on the bus in front of a real deployment's MWS.
    fn fronted_deployment() -> (Deployment, Network) {
        let mut dep = Deployment::new(DeploymentConfig::test_default());
        dep.register_device("m");
        dep.register_client("rc", "pw", &["A"]);
        let net = Network::new();
        let front = GatekeeperFrontdoor::new(
            dep.clock().clone(),
            ReplayPolicy::standard(),
            dep.network().client("mws"),
        );
        front.register(
            "rc",
            "pw",
            &dep.mws().client_public_key("rc").expect("registered"),
        );
        net.bind("gatekeeper", front.as_service());
        // The PKG stays directly reachable.
        let pkg_upstream = dep.network().client("pkg");
        net.bind("pkg", move |req: Pdu| {
            pkg_upstream.call(&req).expect("bus relay")
        });
        (dep, net)
    }

    #[test]
    fn retrieval_through_front_door_end_to_end() {
        let (mut dep, net) = fronted_deployment();
        let mut meter = dep.device("m");
        meter.deposit("A", b"reading").unwrap();
        let mut rc = dep.client_with("rc", "pw", net.client("gatekeeper"), net.client("pkg"));
        let msgs = rc.retrieve_and_decrypt(0).unwrap();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].plaintext, b"reading");
    }

    #[test]
    fn wrong_password_stopped_at_front_door() {
        let (mut dep, net) = fronted_deployment();
        let mut rc = dep.client_with("rc", "nope", net.client("gatekeeper"), net.client("pkg"));
        let err = rc.retrieve_and_decrypt(0).unwrap_err();
        assert!(matches!(
            err,
            mws_core::CoreError::Remote {
                code: mws_core::ErrorCode::AuthFailed,
                ..
            }
        ));
        // The warehouse never saw the request.
        assert_eq!(dep.mws().rejection_count(), 0);
    }

    #[test]
    fn non_retrieve_pdus_rejected() {
        let (dep, net) = fronted_deployment();
        let reply = net.client("gatekeeper").call(&Pdu::ParamsRequest).unwrap();
        assert!(matches!(reply, Pdu::Error { code: 400, .. }));
        drop(dep);
    }

    #[test]
    fn unreachable_warehouse_maps_to_502() {
        let mut dep = Deployment::new(DeploymentConfig::test_default());
        dep.register_client("rc", "pw", &["A"]);
        let net = Network::new();
        // Upstream points at an unbound name on the deployment's network —
        // NOT on `net`, where this front door itself is bound: the bus
        // holds its state lock across a handler, so a relay back into the
        // same Network would self-deadlock.
        let front = GatekeeperFrontdoor::new(
            dep.clock().clone(),
            ReplayPolicy::standard(),
            dep.network().client("nowhere"),
        );
        front.register(
            "rc",
            "pw",
            &dep.mws().client_public_key("rc").expect("registered"),
        );
        net.bind("gatekeeper", front.as_service());
        let pkg = dep.network().client("pkg");
        let mut rc = dep.client_with("rc", "pw", net.client("gatekeeper"), pkg);
        // 502 has no ErrorCode variant, so it degrades to Internal — but
        // the detail names the relay failure.
        match rc.retrieve_and_decrypt(0).unwrap_err() {
            mws_core::CoreError::Remote { code, detail } => {
                assert_eq!(code, mws_core::ErrorCode::Internal);
                assert!(detail.contains("warehouse unreachable"), "{detail}");
            }
            other => panic!("expected remote 502, got {other:?}"),
        }
    }
}
