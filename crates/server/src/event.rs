//! The readiness-based (epoll) server core — DESIGN.md §11.
//!
//! Thread-per-connection caps concurrent smart devices at thread-pool
//! size; a utility fleet is thousands of mostly-idle meters holding one
//! persistent connection each. This core inverts the shape: a small,
//! fixed set of **event-loop threads** owns every connection as a state
//! machine over nonblocking sockets, and the existing worker pool only
//! ever sees decoded PDUs, so crypto/storage work never blocks the loop
//! and an idle connection costs one fd plus a few hundred bytes.
//!
//! Per-connection invariants, identical to the threaded core:
//!
//! * **FIFO replies.** At most one request per connection is in flight
//!   at a worker; further decoded requests queue in arrival order and
//!   dispatch one-by-one as completions return, so reply order always
//!   equals request order.
//! * **Bounded pipeline.** At most [`pipeline_depth`] requests may be
//!   decoded-but-unanswered; past that the loop drops `EPOLLIN`
//!   interest and TCP backpressure reaches the client.
//! * **Write backpressure.** Replies append to a per-connection write
//!   queue flushed opportunistically; `EAGAIN` parks the queue behind
//!   `EPOLLOUT` interest instead of blocking the loop.
//! * **Desync closes.** Every request decoded before a framing error is
//!   answered, then a `400` error frame, then close — byte-for-byte the
//!   threaded core's sequence.
//!
//! The loop wakes for socket readiness, for worker completions and for
//! newly accepted connections (the accept thread stays blocking and
//! round-robins sockets across loops); both cross-thread signals ride a
//! [`UnixStream`] pair registered in the same epoll set, so there is no
//! polling hot loop. A periodic sweep reaps connections idle past
//! [`ServerConfig::idle_timeout`].
//!
//! [`pipeline_depth`]: crate::ServerConfig::pipeline_depth
//! [`ServerConfig::idle_timeout`]: crate::ServerConfig::idle_timeout

use crate::secure::SecureSettings;
use crate::server::{over_capacity_close, ServerConfig};
use crate::stats::{handle_us, stats};
use crate::sys::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crossbeam::channel;
use mws_net::Service;
use mws_obs::trace::TraceContext;
use mws_wire::secure::{Handshaker, Opened, RecordDecoder, RecvHalf, SecureError, SendHalf};
use mws_wire::{decode_envelope_traced, encode_envelope, encode_envelope_auto, Pdu, StreamDecoder};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Token reserved for the loop's waker pipe; connections start at 1.
const WAKER_TOKEN: u64 = 0;
/// Bytes per nonblocking read. Also the decoder buffer's resting
/// capacity after a burst, so it bounds per-connection memory: 10k
/// connections hold ~40 MB of read buffers, not 80+.
const READ_CHUNK: usize = 4 * 1024;
/// Reads drained per readiness event before yielding back to the loop,
/// so one firehose connection cannot starve thousands of idle ones
/// (level-triggered epoll re-reports whatever is left).
const READS_PER_EVENT: usize = 16;
/// Readiness events pulled per `epoll_wait`.
const EVENTS_PER_TICK: usize = 1024;

/// A decoded request on its way to the worker pool.
struct Job {
    loop_id: usize,
    token: u64,
    pdu: Pdu,
    trace: Option<TraceContext>,
}

/// A handled request on its way back: the encoded reply frame.
struct Completion {
    token: u64,
    frame: Vec<u8>,
}

/// The cross-thread face of one event loop: where the accept thread
/// injects sockets, where workers post completions, and the pipe that
/// wakes the loop out of `epoll_wait` after either.
pub(crate) struct LoopHandle {
    injector: channel::Sender<TcpStream>,
    completions: channel::Sender<Completion>,
    waker: UnixStream,
}

impl LoopHandle {
    /// Kicks the loop out of `epoll_wait`. The pipe is nonblocking and
    /// a full pipe already guarantees a pending wakeup, so the result
    /// is ignorable by construction.
    pub(crate) fn wake(&self) {
        let _ = (&self.waker).write(&[1u8]);
    }
}

/// Join handles plus wake handles for a running event core; owned by
/// [`TcpServer`](crate::TcpServer).
pub(crate) struct EventCore {
    pub(crate) handles: Arc<Vec<LoopHandle>>,
    pub(crate) accept: Option<JoinHandle<()>>,
    pub(crate) loops: Vec<JoinHandle<()>>,
    pub(crate) workers: Vec<JoinHandle<()>>,
}

/// Secure-transport state for one connection (`None` = plaintext).
/// On a secure listener every connection is born HANDSHAKING and only
/// reaches the decoded-PDU path once the handshake proves the peer and
/// derives session keys — the epoll analogue of the threaded core's
/// handshake-first `serve_conn`.
// `Open` is the steady state touched on every record, so its halves stay
// inline; only the transient handshake driver is boxed.
#[allow(clippy::large_enum_variant)]
enum SecState {
    /// Handshake in progress; `since` enforces the handshake deadline
    /// via the idle sweep. Boxed: the driver's transcript state would
    /// otherwise bloat every established connection's inline `Conn`.
    Handshaking { hs: Box<Handshaker>, since: Instant },
    /// Keys established: inbound bytes split into records, open through
    /// `recv`; replies seal through `send`.
    Open {
        send: SendHalf,
        recv: RecvHalf,
        records: RecordDecoder,
    },
}

/// One step of the secure decode loop (see [`EventLoop::next_request`]).
enum Decoded {
    /// No complete request buffered.
    Idle,
    /// One decoded request.
    Req(Pdu, Option<TraceContext>),
    /// The peer sent the authenticated CLOSE record.
    Close,
}

/// One connection's entire state machine. Owned by exactly one loop
/// thread; nothing here is shared or locked.
struct Conn {
    stream: TcpStream,
    decoder: StreamDecoder,
    /// Secure-transport state; `None` on a plaintext listener.
    sec: Option<SecState>,
    /// Decoded-but-undispatched requests, in arrival order.
    pending: VecDeque<(Pdu, Option<TraceContext>)>,
    /// One request is at a worker; its completion dispatches the next.
    busy: bool,
    /// Encoded reply frames not yet fully written.
    out: VecDeque<Vec<u8>>,
    /// Bytes of `out.front()` already written (partial-write cursor).
    out_pos: usize,
    /// Current epoll interest mask (avoid redundant `EPOLL_CTL_MOD`s).
    interest: u32,
    last_activity: Instant,
    /// EOF or read error: no further bytes will arrive.
    read_done: bool,
    /// Framing error detail, reported as a 400 after `pending` drains.
    desync: Option<String>,
    /// Close as soon as `out` drains.
    closing: bool,
}

impl Conn {
    fn new(stream: TcpStream, interest: u32, sec: Option<SecState>) -> Self {
        Self {
            stream,
            decoder: StreamDecoder::new(),
            sec,
            pending: VecDeque::new(),
            busy: false,
            out: VecDeque::new(),
            out_pos: 0,
            interest,
            last_activity: Instant::now(),
            read_done: false,
            desync: None,
            closing: false,
        }
    }
}

struct EventLoop {
    id: usize,
    epoll: Epoll,
    waker_rx: UnixStream,
    injector: channel::Receiver<TcpStream>,
    completions: channel::Receiver<Completion>,
    jobs: channel::Sender<Job>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    pipeline_depth: usize,
    idle_timeout: Option<Duration>,
    secure: Option<Arc<SecureSettings>>,
    tick: Duration,
    shutdown: Arc<AtomicBool>,
    open: Arc<AtomicUsize>,
}

impl EventLoop {
    fn run(mut self) {
        let mut events = vec![EpollEvent::empty(); EVENTS_PER_TICK];
        let tick_ms = self.tick.as_millis().clamp(1, 1000) as i32;
        let mut last_sweep = Instant::now();
        loop {
            let n = self.epoll.wait(&mut events, tick_ms).unwrap_or(0);
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            for ev in events.iter().take(n) {
                let ev = *ev;
                let (token, bits) = ({ ev.token }, { ev.events });
                if token == WAKER_TOKEN {
                    self.drain_waker();
                } else {
                    self.handle_io(token, bits);
                }
            }
            self.drain_completions();
            self.drain_injector();
            self.sweep_idle(&mut last_sweep);
        }
        // Teardown closes every owned connection so the shared
        // open-connection accounting stays truthful across restarts.
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for t in tokens {
            self.close(t);
        }
    }

    fn drain_waker(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            match (&self.waker_rx).read(&mut buf) {
                Ok(0) => break, // peer gone: shutdown path
                Ok(_) => continue,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn handle_io(&mut self, token: u64, bits: u32) {
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            // ERR/HUP/RDHUP all surface through the read path as an
            // error or EOF, which preserves the drain-then-close
            // sequencing; there is no separate teardown branch to get
            // subtly out of order.
            if bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0 {
                Self::pump_read(conn);
            }
        }
        self.service_conn(token);
    }

    /// Nonblocking reads until `EAGAIN`, EOF, or the per-event fairness
    /// cap. Plaintext bytes go straight into the envelope decoder;
    /// secure bytes route through the handshake driver or record
    /// decoder via [`Self::feed_secure`].
    fn pump_read(conn: &mut Conn) {
        if conn.read_done {
            return;
        }
        if conn.sec.is_none() {
            for _ in 0..READS_PER_EVENT {
                match conn.decoder.fill_from(&mut conn.stream, READ_CHUNK) {
                    Ok(0) => {
                        conn.read_done = true;
                        return;
                    }
                    Ok(_) => conn.last_activity = Instant::now(),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.read_done = true;
                        return;
                    }
                }
            }
            return;
        }
        let mut buf = [0u8; READ_CHUNK];
        for _ in 0..READS_PER_EVENT {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.read_done = true;
                    return;
                }
                Ok(n) => {
                    conn.last_activity = Instant::now();
                    Self::feed_secure(conn, &buf[..n]);
                    if conn.read_done || conn.closing {
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.read_done = true;
                    return;
                }
            }
        }
    }

    /// Routes freshly read bytes through the connection's secure state.
    /// Handshake completion swaps HANDSHAKING for OPEN in place and
    /// carries buffered post-handshake records over; handshake failure
    /// closes (after a plaintext 426 when the peer never spoke the
    /// secure protocol at all).
    fn feed_secure(conn: &mut Conn, bytes: &[u8]) {
        match &mut conn.sec {
            Some(SecState::Handshaking { hs, since }) => {
                let fed = hs.feed(bytes);
                let out = hs.take_output();
                if !out.is_empty() {
                    conn.out.push_back(out);
                }
                match fed {
                    Ok(None) => {}
                    Ok(Some(est)) => {
                        stats().secure_handshakes.inc();
                        stats().handshake_us.record_duration(since.elapsed());
                        mws_obs::debug!(target: "mws_server", "secure session established",
                            peer_identity = est.peer.clone(),);
                        let (send, recv) = est.session.into_halves();
                        let mut records = RecordDecoder::new();
                        records.feed(&est.leftover);
                        conn.sec = Some(SecState::Open {
                            send,
                            recv,
                            records,
                        });
                    }
                    Err(e) => {
                        stats().secure_handshake_failures.inc();
                        conn.out.clear();
                        if matches!(e, SecureError::PlaintextPeer(_)) {
                            // A plaintext client dialed a secure
                            // listener: answer in its own protocol so
                            // the operator sees the misconfiguration.
                            stats().secure_downgrades.inc();
                            conn.out.push_back(encode_envelope(&Pdu::Error {
                                code: 426,
                                detail: "secure transport required (--transport secure)".into(),
                            }));
                        }
                        mws_obs::warn!(target: "mws_server", "secure handshake failed",
                            error = e.to_string(),);
                        conn.read_done = true;
                        conn.closing = true;
                    }
                }
            }
            Some(SecState::Open { records, .. }) => records.feed(bytes),
            None => {}
        }
    }

    /// Decodes the next complete request, routing through the secure
    /// record layer when the connection has one. `Err` is a desync: the
    /// stream (or record sequence) can no longer be trusted.
    fn next_request(conn: &mut Conn) -> Result<Decoded, String> {
        match &mut conn.sec {
            None => match conn.decoder.next_traced() {
                Ok(Some((pdu, trace))) => Ok(Decoded::Req(pdu, trace)),
                Ok(None) => Ok(Decoded::Idle),
                Err(e) => Err(e.to_string()),
            },
            // No requests exist before the handshake proves the peer.
            Some(SecState::Handshaking { .. }) => Ok(Decoded::Idle),
            // One record per call; the pipeline loop in `service_conn`
            // keeps calling until `Idle`, draining everything buffered.
            Some(SecState::Open { recv, records, .. }) => {
                let Some((rtype, payload)) = records.next_record().map_err(|e| e.to_string())?
                else {
                    return Ok(Decoded::Idle);
                };
                match recv
                    .open_record(rtype, &payload)
                    .map_err(|e| e.to_string())?
                {
                    Opened::Close => Ok(Decoded::Close),
                    Opened::Frame(frame) => match decode_envelope_traced(&frame) {
                        Ok((pdu, consumed, trace)) if consumed == frame.len() => {
                            Ok(Decoded::Req(pdu, trace))
                        }
                        Ok(_) => Err("trailing bytes in record".into()),
                        Err(e) => Err(e.to_string()),
                    },
                }
            }
        }
    }

    /// Queues one reply frame, sealing it first on a secure connection.
    /// A seal failure is unrecoverable for the session: abandon the
    /// reply and close.
    fn push_reply(conn: &mut Conn, frame: Vec<u8>) {
        match &mut conn.sec {
            Some(SecState::Open { send, .. }) => match send.seal_frame(&frame) {
                Ok(rec) => conn.out.push_back(rec),
                Err(_) => conn.closing = true,
            },
            // Unreachable (no request decodes before keys), but closing
            // beats leaking plaintext if it ever were.
            Some(SecState::Handshaking { .. }) => conn.closing = true,
            None => conn.out.push_back(frame),
        }
    }

    /// Flushes the write queue until empty or `EAGAIN`. Returns `true`
    /// when the socket is dead for writing (reply undeliverable).
    fn flush(conn: &mut Conn) -> bool {
        while let Some(front) = conn.out.front() {
            match conn.stream.write(&front[conn.out_pos..]) {
                Ok(0) => return true,
                Ok(n) => {
                    conn.out_pos += n;
                    conn.last_activity = Instant::now();
                    if conn.out_pos == front.len() {
                        conn.out.pop_front();
                        conn.out_pos = 0;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return true,
            }
        }
        false
    }

    /// The connection state machine's single advance step: decode under
    /// the pipeline bound, dispatch at most one job, render a pending
    /// desync once the queue drains, flush, then either close or
    /// reconcile epoll interest. Every path that changes a connection
    /// funnels through here, so the invariants live in one place.
    fn service_conn(&mut self, token: u64) {
        let mut must_close = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            while conn.desync.is_none()
                && (conn.busy as usize) + conn.pending.len() < self.pipeline_depth
            {
                match Self::next_request(conn) {
                    Ok(Decoded::Req(pdu, trace)) => conn.pending.push_back((pdu, trace)),
                    Ok(Decoded::Idle) => break,
                    Ok(Decoded::Close) => {
                        // Authenticated session close: same
                        // drain-then-close sequencing as EOF.
                        conn.read_done = true;
                        break;
                    }
                    Err(e) => conn.desync = Some(e),
                }
            }
            if !conn.busy {
                if let Some((pdu, trace)) = conn.pending.pop_front() {
                    conn.busy = true;
                    stats().requests.inc();
                    // Occupancy behind the dispatched request — same
                    // signal the threaded core records at dequeue.
                    stats().pipeline_depth.record(conn.pending.len() as u64);
                    let _ = self.jobs.send(Job {
                        loop_id: self.id,
                        token,
                        pdu,
                        trace,
                    });
                }
            }
            if conn.desync.is_some() && !conn.busy && conn.pending.is_empty() && !conn.closing {
                let detail = conn.desync.take().expect("guarded by is_some");
                stats().wire_errors.inc();
                mws_obs::warn!(target: "mws_server", "stream desynchronized, dropping connection",
                    error = detail.clone(),);
                Self::push_reply(conn, encode_envelope(&Pdu::Error { code: 400, detail }));
                conn.closing = true;
            }
            let write_dead = Self::flush(conn);
            let quiescent = !conn.busy && conn.pending.is_empty() && conn.out.is_empty();
            if write_dead || (conn.closing && conn.out.is_empty()) || (conn.read_done && quiescent)
            {
                must_close = true;
            } else {
                let want_read = !conn.read_done
                    && conn.desync.is_none()
                    && !conn.closing
                    && (conn.busy as usize) + conn.pending.len() < self.pipeline_depth;
                let mut mask = EPOLLRDHUP;
                if want_read {
                    mask |= EPOLLIN;
                }
                if !conn.out.is_empty() {
                    mask |= EPOLLOUT;
                }
                if mask != conn.interest
                    && self
                        .epoll
                        .modify(conn.stream.as_raw_fd(), mask, token)
                        .is_ok()
                {
                    conn.interest = mask;
                }
            }
        }
        if must_close {
            self.close(token);
        }
    }

    fn drain_completions(&mut self) {
        while let Ok(c) = self.completions.try_recv() {
            // Completions for already-closed connections drop silently;
            // tokens are never reused, so a late reply cannot land on a
            // different client's socket.
            let live = match self.conns.get_mut(&c.token) {
                Some(conn) => {
                    conn.busy = false;
                    Self::push_reply(conn, c.frame);
                    true
                }
                None => false,
            };
            if live {
                self.service_conn(c.token);
            }
        }
    }

    fn drain_injector(&mut self) {
        while let Ok(stream) = self.injector.try_recv() {
            if stream.set_nonblocking(true).is_err() {
                self.release_one();
                continue;
            }
            let _ = stream.set_nodelay(true);
            let token = self.next_token;
            self.next_token += 1;
            let mask = EPOLLIN | EPOLLRDHUP;
            if self.epoll.add(stream.as_raw_fd(), mask, token).is_err() {
                self.release_one();
                continue;
            }
            // On a secure listener the connection is born HANDSHAKING;
            // the server speaks second, so there is no initial output.
            let sec = self.secure.as_ref().map(|s| SecState::Handshaking {
                hs: Box::new(Handshaker::server(s.auth.clone(), s.session.clone())),
                since: Instant::now(),
            });
            self.conns.insert(token, Conn::new(stream, mask, sec));
            stats().connections.inc();
        }
    }

    fn sweep_idle(&mut self, last_sweep: &mut Instant) {
        let idle = self.idle_timeout;
        let hs_timeout = self.secure.as_ref().map(|s| s.handshake_timeout);
        let Some(shortest) = [idle, hs_timeout].into_iter().flatten().min() else {
            return;
        };
        // Sweeping is O(connections); amortize it to a fraction of the
        // shortest deadline instead of every tick.
        let granularity = (shortest / 4).max(Duration::from_millis(10));
        if last_sweep.elapsed() < granularity {
            return;
        }
        *last_sweep = Instant::now();
        let now = Instant::now();
        let mut hs_expired = Vec::new();
        let mut stale = Vec::new();
        for (t, c) in &self.conns {
            // A connection stuck mid-handshake is dropped on its own
            // (shorter) deadline, so a slowloris peer cannot park in
            // HANDSHAKING forever.
            if let (Some(limit), Some(SecState::Handshaking { since, .. })) = (hs_timeout, &c.sec) {
                if now.duration_since(*since) >= limit {
                    hs_expired.push(*t);
                }
                continue;
            }
            // Only truly quiet connections reap: in-flight work or
            // unflushed replies both count as activity.
            if let Some(timeout) = idle {
                if !c.busy
                    && c.pending.is_empty()
                    && c.out.is_empty()
                    && now.duration_since(c.last_activity) >= timeout
                {
                    stale.push(*t);
                }
            }
        }
        for t in hs_expired {
            stats().secure_handshake_failures.inc();
            self.close(t);
        }
        for t in stale {
            stats().idle_reaped.inc();
            self.close(t);
        }
    }

    fn close(&mut self, token: u64) {
        if let Some(mut conn) = self.conns.remove(&token) {
            // A secure session announces its end with an authenticated
            // CLOSE record so the peer can tell shutdown from
            // truncation (best-effort: a nonblocking short write or
            // dead socket just drops it).
            if let Some(SecState::Open { send, .. }) = &mut conn.sec {
                if let Ok(rec) = send.seal_close() {
                    let _ = conn.stream.write(&rec);
                }
            }
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            self.release_one();
        }
    }

    /// Gives one connection slot back to the accept thread's limit.
    fn release_one(&self) {
        self.open.fetch_sub(1, Ordering::SeqCst);
        stats().open_connections.add(-1);
    }
}

/// Blocking accept, enforcing `max_connections` with an explicit `503`
/// close, then round-robin handoff to the event loops.
fn accept_loop(
    listener: TcpListener,
    handles: &[LoopHandle],
    shutdown: &AtomicBool,
    open: &AtomicUsize,
    max_connections: Option<usize>,
) {
    let mut next = 0usize;
    for conn in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(stream) => stream,
            // Transient accept failures (EMFILE, aborted handshake) must
            // not kill the listener.
            Err(_) => continue,
        };
        if max_connections.is_some_and(|max| open.load(Ordering::SeqCst) >= max) {
            over_capacity_close(stream);
            continue;
        }
        open.fetch_add(1, Ordering::SeqCst);
        stats().open_connections.add(1);
        let h = &handles[next % handles.len()];
        next = next.wrapping_add(1);
        if h.injector.send(stream).is_err() {
            open.fetch_sub(1, Ordering::SeqCst);
            stats().open_connections.add(-1);
            break;
        }
        h.wake();
    }
}

/// Worker side: decoded request in, encoded reply frame out. The trace
/// scope wraps both handling and encoding, so handler events and the
/// reply envelope itself carry the caller's trace id — exactly the
/// threaded core's behaviour.
fn worker_loop<S: Service>(jobs: channel::Receiver<Job>, handles: &[LoopHandle], service: &mut S) {
    while let Ok(job) = jobs.recv() {
        let frame = {
            let _span = job.trace.map(mws_obs::trace::enter);
            let pdu = job.pdu.type_name();
            let started = Instant::now();
            let reply = service.handle(job.pdu);
            handle_us(pdu).record_duration(started.elapsed());
            encode_envelope_auto(&reply)
        };
        let h = &handles[job.loop_id];
        if h.completions
            .send(Completion {
                token: job.token,
                frame,
            })
            .is_ok()
        {
            h.wake();
        }
    }
}

/// Builds and starts the full event core: `event_loops` loop threads,
/// one blocking accept thread, and `workers` service threads.
pub(crate) fn spawn<S, F>(
    cfg: &ServerConfig,
    factory: &mut F,
    listener: TcpListener,
    shutdown: &Arc<AtomicBool>,
) -> std::io::Result<EventCore>
where
    S: Service + 'static,
    F: FnMut() -> S,
{
    let local_addr = listener.local_addr()?;
    let n_loops = cfg.event_loops.max(1);
    let (jobs_tx, jobs_rx) = channel::unbounded::<Job>();
    let open = Arc::new(AtomicUsize::new(0));

    let mut handles = Vec::with_capacity(n_loops);
    let mut parts = Vec::with_capacity(n_loops);
    for _ in 0..n_loops {
        let (waker_tx, waker_rx) = UnixStream::pair()?;
        waker_tx.set_nonblocking(true)?;
        waker_rx.set_nonblocking(true)?;
        let epoll = Epoll::new()?;
        epoll.add(waker_rx.as_raw_fd(), EPOLLIN, WAKER_TOKEN)?;
        let (injector_tx, injector_rx) = channel::unbounded();
        let (completions_tx, completions_rx) = channel::unbounded();
        handles.push(LoopHandle {
            injector: injector_tx,
            completions: completions_tx,
            waker: waker_tx,
        });
        parts.push((epoll, waker_rx, injector_rx, completions_rx));
    }
    let handles = Arc::new(handles);

    let mut loops = Vec::with_capacity(n_loops);
    for (id, (epoll, waker_rx, injector, completions)) in parts.into_iter().enumerate() {
        let el = EventLoop {
            id,
            epoll,
            waker_rx,
            injector,
            completions,
            jobs: jobs_tx.clone(),
            conns: HashMap::new(),
            next_token: WAKER_TOKEN + 1,
            pipeline_depth: cfg.pipeline_depth.max(1),
            idle_timeout: cfg.idle_timeout,
            secure: cfg.secure.clone(),
            tick: cfg.read_poll,
            shutdown: shutdown.clone(),
            open: open.clone(),
        };
        loops.push(
            std::thread::Builder::new()
                .name(format!("mws-loop-{id}"))
                .spawn(move || el.run())?,
        );
    }
    // Loop threads own the only job senders: when they exit, workers'
    // recv() disconnects and the pool drains without a poison message.
    drop(jobs_tx);

    let accept = {
        let handles = handles.clone();
        let shutdown = shutdown.clone();
        let open = open.clone();
        let max_connections = cfg.max_connections;
        std::thread::Builder::new()
            .name(format!("mws-accept-{local_addr}"))
            .spawn(move || accept_loop(listener, &handles, &shutdown, &open, max_connections))?
    };

    let mut workers = Vec::with_capacity(cfg.workers.max(1));
    for i in 0..cfg.workers.max(1) {
        let jobs = jobs_rx.clone();
        let handles = handles.clone();
        let mut service = factory();
        workers.push(
            std::thread::Builder::new()
                .name(format!("mws-worker-{i}"))
                .spawn(move || worker_loop(jobs, &handles, &mut service))?,
        );
    }

    Ok(EventCore {
        handles,
        accept: Some(accept),
        loops,
        workers,
    })
}
