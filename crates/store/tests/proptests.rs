//! Property-based tests: the KvEngine must behave exactly like a model
//! `BTreeMap` under any operation sequence, including across reopen.

use mws_store::{KvEngine, StorageKind};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Put(Vec<u8>, Vec<u8>),
    Del(Vec<u8>),
    Compact,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (prop::collection::vec(any::<u8>(), 1..8), prop::collection::vec(any::<u8>(), 0..24))
            .prop_map(|(k, v)| Op::Put(k, v)),
        2 => prop::collection::vec(any::<u8>(), 1..8).prop_map(Op::Del),
        1 => Just(Op::Compact),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engine_matches_model(ops in prop::collection::vec(arb_op(), 0..60)) {
        let mut kv = KvEngine::open(StorageKind::Memory).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    kv.put(k, v).unwrap();
                    model.insert(k.clone(), v.clone());
                }
                Op::Del(k) => {
                    kv.delete(k).unwrap();
                    model.remove(k);
                }
                Op::Compact => kv.compact().unwrap(),
            }
            prop_assert_eq!(kv.len(), model.len());
        }
        for (k, v) in &model {
            prop_assert_eq!(kv.get(k).unwrap(), Some(v.clone()));
        }
        // Full iteration agrees.
        let got: Vec<_> = kv.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        let want: Vec<_> = model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn file_engine_reopen_matches_model(ops in prop::collection::vec(arb_op(), 0..40), reopen_at in 0usize..40) {
        let path = std::env::temp_dir().join(format!(
            "mws-prop-{}-{:x}.wal",
            std::process::id(),
            rand::random::<u64>()
        ));
        let _ = std::fs::remove_file(&path);
        let mut kv = KvEngine::open(StorageKind::File(path.clone())).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for (i, op) in ops.iter().enumerate() {
            if i == reopen_at {
                kv.sync().unwrap();
                drop(kv);
                kv = KvEngine::open(StorageKind::File(path.clone())).unwrap();
            }
            match op {
                Op::Put(k, v) => {
                    kv.put(k, v).unwrap();
                    model.insert(k.clone(), v.clone());
                }
                Op::Del(k) => {
                    kv.delete(k).unwrap();
                    model.remove(k);
                }
                Op::Compact => kv.compact().unwrap(),
            }
        }
        kv.sync().unwrap();
        drop(kv);
        let kv = KvEngine::open(StorageKind::File(path.clone())).unwrap();
        prop_assert_eq!(kv.len(), model.len());
        for (k, v) in &model {
            prop_assert_eq!(kv.get(k).unwrap(), Some(v.clone()));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn prefix_scan_matches_model(
        keys in prop::collection::vec(prop::collection::vec(0u8..4, 1..5), 0..30),
        prefix in prop::collection::vec(0u8..4, 0..3),
    ) {
        let mut kv = KvEngine::open(StorageKind::Memory).unwrap();
        let mut model = BTreeMap::new();
        for (i, k) in keys.iter().enumerate() {
            kv.put(k, &[i as u8]).unwrap();
            model.insert(k.clone(), vec![i as u8]);
        }
        let got = kv.scan_prefix(&prefix);
        let want: Vec<_> = model
            .iter()
            .filter(|(k, _)| k.starts_with(&prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        prop_assert_eq!(got, want);
    }
}
