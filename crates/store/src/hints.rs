//! Durable hinted-handoff queues for the cluster write path (DESIGN.md
//! §10).
//!
//! When a write-wave replica is down, the cluster router still owes that
//! node its copy of the deposit. A [`HintQueue`] is where the debt is
//! recorded: one CRC-framed append-only [`Segment`] per down target
//! holding the byte-identical deposit PDUs, plus a sidecar cursor file
//! recording how far replay has progressed. A hint is only considered
//! queued once both the frame and the fsync land, so a router crash can
//! lose at most work it never acknowledged on the strength of the hint.
//!
//! Durability rules:
//!
//! * **Queue before ack.** [`push`](HintQueue::push) appends and fsyncs
//!   before returning; callers must not count a hint toward anything
//!   user-visible until `push` succeeds.
//! * **Replay before advance.** [`pop`](HintQueue::pop) persists the new
//!   cursor only after the caller has delivered the front hint. The
//!   cursor may therefore lag reality (re-delivering a hint after a
//!   crash) but never lead it (dropping one). Replay must be idempotent —
//!   deposits are, by their `(sd_id, nonce)` origin dedup.
//! * **Corrupt cursor ⇒ replay from the start.** A torn or nonsensical
//!   cursor file degrades to offset 0, trading duplicate idempotent
//!   replays for zero loss; a torn WAL tail is dropped by the segment's
//!   own recovery (the hint it held was never fsynced, so it was never
//!   queued).
//!
//! The WAL is append-only and is not compacted in place; a fully drained
//! queue persists its end-of-log cursor, so reopening it replays nothing.

use crate::fault::FaultPlan;
use crate::segment::Segment;
use crate::{Result, StorageKind};
use std::collections::VecDeque;
use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// Sidecar suffix holding the replay cursor next to a file-backed queue.
const CURSOR_SUFFIX: &str = ".cursor";

/// A durable FIFO of opaque hint payloads for one handoff target.
#[derive(Debug)]
pub struct HintQueue {
    wal: Segment,
    /// Offset of the first frame replay has not yet delivered.
    cursor: u64,
    cursor_path: Option<PathBuf>,
    /// Unreplayed frames: `(frame offset, payload)`, oldest first.
    queue: VecDeque<(u64, Vec<u8>)>,
}

impl HintQueue {
    /// Opens (or creates) the queue described by `kind`, recovering the
    /// replay cursor and any undelivered hints. File-backed queues keep
    /// their cursor in a `<path>.cursor` sidecar.
    pub fn open(kind: StorageKind) -> Result<Self> {
        let (mut wal, cursor_path) = open_segment(&kind)?;
        let frames = wal.iter()?;
        let cursor = match &cursor_path {
            Some(path) => recover_cursor(path, &frames, wal.len_bytes()),
            None => 0,
        };
        let queue = frames
            .into_iter()
            .filter(|(offset, _)| *offset >= cursor)
            .collect();
        Ok(Self {
            wal,
            cursor,
            cursor_path,
            queue,
        })
    }

    /// Appends a hint and fsyncs it. On return the hint will survive a
    /// crash; on error nothing was queued.
    pub fn push(&mut self, payload: &[u8]) -> Result<()> {
        let offset = self.wal.append(payload)?;
        self.wal.sync()?;
        self.queue.push_back((offset, payload.to_vec()));
        Ok(())
    }

    /// Number of hints awaiting replay.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The oldest undelivered hint, if any.
    pub fn peek(&self) -> Option<&[u8]> {
        self.queue.front().map(|(_, payload)| payload.as_slice())
    }

    /// Marks the oldest hint delivered and durably advances the cursor
    /// past it. Call only after the hint has actually been replayed.
    pub fn pop(&mut self) -> Result<()> {
        if self.queue.pop_front().is_none() {
            return Ok(());
        }
        self.cursor = match self.queue.front() {
            Some((offset, _)) => *offset,
            None => self.wal.len_bytes(),
        };
        self.persist_cursor()
    }

    fn persist_cursor(&self) -> Result<()> {
        let Some(path) = &self.cursor_path else {
            return Ok(());
        };
        let mut file = fs::File::create(path)?;
        file.write_all(&self.cursor.to_le_bytes())?;
        file.sync_all()?;
        Ok(())
    }
}

/// Opens the WAL segment behind `kind` and derives the cursor sidecar
/// path for file-backed storage (mirrors the engine's segment opening,
/// including fault-plan attachment for the chaos harness).
fn open_segment(kind: &StorageKind) -> Result<(Segment, Option<PathBuf>)> {
    fn open(kind: &StorageKind, plan: Option<&FaultPlan>) -> Result<(Segment, Option<PathBuf>)> {
        let (mut seg, cursor) = match kind {
            StorageKind::Memory => (Segment::memory(), None),
            StorageKind::File(path) => {
                let mut cursor = path.as_os_str().to_owned();
                cursor.push(CURSOR_SUFFIX);
                (Segment::open_file(path)?, Some(PathBuf::from(cursor)))
            }
            StorageKind::Faulty { base, plan } => return open(base, Some(plan)),
        };
        if let Some(plan) = plan {
            seg.attach_faults(plan.clone());
        }
        Ok((seg, cursor))
    }
    open(kind, None)
}

/// Reads the cursor sidecar, degrading to 0 (full idempotent replay)
/// unless it holds exactly a valid frame boundary of the recovered WAL.
fn recover_cursor(path: &std::path::Path, frames: &[(u64, Vec<u8>)], len: u64) -> u64 {
    let Ok(bytes) = fs::read(path) else {
        return 0;
    };
    let Ok(raw) = <[u8; 8]>::try_from(bytes.as_slice()) else {
        return 0;
    };
    let cursor = u64::from_le_bytes(raw);
    let boundary = cursor == len || frames.iter().any(|(offset, _)| *offset == cursor);
    if boundary {
        cursor
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultPlan;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mws-hints-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn drain_all(q: &mut HintQueue) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while let Some(payload) = q.peek() {
            out.push(payload.to_vec());
            q.pop().unwrap();
        }
        out
    }

    #[test]
    fn fifo_push_peek_pop() {
        let mut q = HintQueue::open(StorageKind::Memory).unwrap();
        assert_eq!(q.pending(), 0);
        assert!(q.peek().is_none());
        q.push(b"one").unwrap();
        q.push(b"two").unwrap();
        assert_eq!(q.pending(), 2);
        assert_eq!(drain_all(&mut q), vec![b"one".to_vec(), b"two".to_vec()]);
        assert_eq!(q.pending(), 0);
        q.pop().unwrap(); // popping an empty queue is a no-op
    }

    #[test]
    fn hints_survive_reopen_and_replayed_ones_do_not() {
        let dir = tmpdir("reopen");
        let path = dir.join("node-1.hints");
        {
            let mut q = HintQueue::open(StorageKind::File(path.clone())).unwrap();
            q.push(b"a").unwrap();
            q.push(b"b").unwrap();
            q.push(b"c").unwrap();
            // Deliver the first hint only; crash before the rest.
            assert_eq!(q.peek().unwrap(), b"a");
            q.pop().unwrap();
        }
        let mut q = HintQueue::open(StorageKind::File(path)).unwrap();
        assert_eq!(q.pending(), 2);
        assert_eq!(drain_all(&mut q), vec![b"b".to_vec(), b"c".to_vec()]);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn fully_drained_queue_reopens_empty() {
        let dir = tmpdir("drained");
        let path = dir.join("node-2.hints");
        {
            let mut q = HintQueue::open(StorageKind::File(path.clone())).unwrap();
            q.push(b"x").unwrap();
            q.pop().unwrap();
        }
        let q = HintQueue::open(StorageKind::File(path)).unwrap();
        assert_eq!(q.pending(), 0);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupt_cursor_degrades_to_full_replay() {
        let dir = tmpdir("cursor");
        let path = dir.join("node-3.hints");
        {
            let mut q = HintQueue::open(StorageKind::File(path.clone())).unwrap();
            q.push(b"a").unwrap();
            q.push(b"b").unwrap();
            q.pop().unwrap();
        }
        // A cursor pointing inside a frame (not at a boundary) must be
        // rejected: replay restarts from 0 — duplicates, never loss.
        let cursor_file: PathBuf = {
            let mut s = path.as_os_str().to_owned();
            s.push(CURSOR_SUFFIX);
            PathBuf::from(s)
        };
        fs::write(&cursor_file, 3u64.to_le_bytes()).unwrap();
        let mut q = HintQueue::open(StorageKind::File(path.clone())).unwrap();
        assert_eq!(drain_all(&mut q), vec![b"a".to_vec(), b"b".to_vec()]);
        // A short cursor file degrades the same way.
        fs::write(&cursor_file, [1u8, 2]).unwrap();
        let q = HintQueue::open(StorageKind::File(path)).unwrap();
        assert_eq!(q.pending(), 2);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn failed_append_queues_nothing() {
        let plan = FaultPlan::new();
        plan.fail_append(0);
        let mut q = HintQueue::open(StorageKind::Memory.with_faults(plan)).unwrap();
        assert!(q.push(b"doomed").is_err());
        assert_eq!(q.pending(), 0);
        assert!(q.peek().is_none());
    }

    #[test]
    fn torn_wal_tail_drops_only_the_unsynced_hint() {
        let dir = tmpdir("torn");
        let path = dir.join("node-4.hints");
        {
            let plan = FaultPlan::new();
            plan.tear_append(1);
            let mut q = HintQueue::open(StorageKind::File(path.clone()).with_faults(plan)).unwrap();
            q.push(b"kept").unwrap();
            assert!(q.push(b"torn").is_err());
        }
        let mut q = HintQueue::open(StorageKind::File(path)).unwrap();
        assert_eq!(drain_all(&mut q), vec![b"kept".to_vec()]);
        let _ = fs::remove_dir_all(dir);
    }
}
