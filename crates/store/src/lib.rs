//! Embedded storage engine for the Message Warehousing Service.
//!
//! The paper's prototype used flat files and listed "move to a database
//! management system" as future work (§VI, §VIII). This crate provides both
//! ends of that spectrum:
//!
//! * [`segment`] — CRC-framed append-only record segments over pluggable
//!   byte storage (in-memory or file-backed), with torn-write recovery.
//! * [`engine`] — [`KvEngine`]: a log-structured key-value store with an
//!   in-memory index rebuilt by replay, tombstone deletes, prefix scans and
//!   compaction.
//! * [`tables`] — a tiny length-prefixed record codec shared by the typed
//!   tables.
//! * [`fault`] — deterministic fault injection ([`FaultPlan`]): fail or
//!   tear the Nth append, fail the Nth fsync — so WAL recovery is
//!   exercised by injection rather than hand-crafted files.
//! * [`message_db`] / [`policy_db`] / [`user_db`] — the three databases of
//!   the paper's Figure 3 (Message Database, Policy Database with the
//!   Table 1 identity–attribute mapping, User Database).
//! * [`flatfile`] — the prototype's flat-file layout, kept as the baseline
//!   for experiment E8 (design decision D3).
//! * [`hints`] — [`HintQueue`]: durable per-target hinted-handoff queues
//!   backing the cluster's sloppy-quorum write path (DESIGN.md §10).
//! * [`shard`] — [`ShardedMessageDb`]: the message table striped N ways by
//!   attribute hash ([`ShardRouter`]), each shard with its own WAL, fsync
//!   cadence, compaction, and recovery (DESIGN.md §9).
//!
//! # Example
//!
//! ```
//! use mws_store::{KvEngine, StorageKind};
//!
//! let mut kv = KvEngine::open(StorageKind::Memory).unwrap();
//! kv.put(b"k", b"v1").unwrap();
//! kv.put(b"k", b"v2").unwrap();
//! assert_eq!(kv.get(b"k").unwrap().as_deref(), Some(&b"v2"[..]));
//! kv.delete(b"k").unwrap();
//! assert!(kv.get(b"k").unwrap().is_none());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod engine;
pub mod fault;
pub mod flatfile;
pub mod hints;
pub mod message_db;
pub mod policy_db;
pub mod segment;
pub mod shard;
pub(crate) mod stats;
pub mod tables;
pub mod user_db;

pub use engine::{KvEngine, StorageKind};
pub use fault::FaultPlan;
pub use flatfile::FlatFileStore;
pub use hints::HintQueue;
pub use message_db::{MessageDb, MessageId, PendingDeposit, StoredMessage};
pub use policy_db::{AttributeId, PolicyDb, PolicyRow};
pub use shard::{shard_kinds, ShardRouter, ShardedMessageDb};
pub use user_db::{UserDb, UserRecord};

/// Storage-layer errors.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A record failed its CRC or framing check at the given offset.
    Corrupt {
        /// Byte offset of the damaged frame.
        offset: u64,
    },
    /// Record payload failed to decode.
    Codec(&'static str),
    /// A referenced row does not exist.
    NotFound,
    /// A uniqueness constraint would be violated.
    Duplicate,
}

impl core::fmt::Display for StoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Corrupt { offset } => write!(f, "corrupt frame at offset {offset}"),
            StoreError::Codec(what) => write!(f, "codec error: {what}"),
            StoreError::NotFound => write!(f, "row not found"),
            StoreError::Duplicate => write!(f, "uniqueness violation"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, StoreError>;
