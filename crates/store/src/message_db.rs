//! The Message Database (MD) of Figure 3.
//!
//! "Once authenticated, `rP ‖ C ‖ (A ‖ Nonce)` is stored in the Message
//! Database" (§V.D). Rows keep the IBE component `U = rP`, the symmetric
//! ciphertext, the attribute string and nonce, plus provenance (depositing
//! device, logical timestamp). A secondary in-memory index maps attribute →
//! message ids so the MMS can serve "all records whose attribute field
//! matches" without a full scan (experiment E8 measures the difference
//! against the flat-file baseline).

use crate::engine::{KvEngine, StorageKind};
use crate::tables::{RowReader, RowWriter};
use crate::{Result, StoreError};
use std::collections::BTreeMap;

/// Message identifier (monotonically increasing).
pub type MessageId = u64;

/// One warehoused message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoredMessage {
    /// Assigned id.
    pub id: MessageId,
    /// The attribute string `A` used for encryption (the MWS stores it in
    /// the clear — it needs it for access mapping; §V.A).
    pub attribute: String,
    /// Per-message nonce.
    pub nonce: Vec<u8>,
    /// Compressed encoding of `U = rP`.
    pub u: Vec<u8>,
    /// Symmetric cipher id (see `mws_ibe::CipherAlgo::wire_id`).
    pub algo: u8,
    /// The sealed symmetric ciphertext `C`.
    pub sealed: Vec<u8>,
    /// Identity of the depositing smart device.
    pub sd_id: String,
    /// Logical deposit timestamp.
    pub timestamp: u64,
}

/// One deposit awaiting storage — the row shape shared by the single and
/// batched deposit paths ([`MessageDb::insert_batch_dedup`],
/// [`crate::shard::ShardedMessageDb::deposit_batch`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PendingDeposit {
    /// Attribute string `A` the message was encrypted under.
    pub attribute: String,
    /// Per-message nonce (dedup key together with `sd_id`).
    pub nonce: Vec<u8>,
    /// Compressed encoding of `U = rP`.
    pub u: Vec<u8>,
    /// Symmetric cipher id.
    pub algo: u8,
    /// The sealed symmetric ciphertext `C`.
    pub sealed: Vec<u8>,
    /// Identity of the depositing smart device.
    pub sd_id: String,
    /// Logical deposit timestamp.
    pub timestamp: u64,
}

/// The message table plus its attribute index.
#[derive(Debug)]
pub struct MessageDb {
    kv: KvEngine,
    next_id: MessageId,
    /// Id-space striding for sharded deployments: this table only ever
    /// assigns ids congruent to its opening offset modulo `stride`, so N
    /// striped tables share one global id space without coordination. The
    /// unsharded default is `stride = 1`.
    stride: u64,
    by_attribute: BTreeMap<String, Vec<MessageId>>,
    /// Deposit origin `(sd_id, nonce)` → id, for idempotent retransmission
    /// handling. Rebuilt from the message rows on open, so it is exactly as
    /// durable as the messages themselves.
    by_origin: BTreeMap<Vec<u8>, MessageId>,
}

fn key_of(id: MessageId) -> Vec<u8> {
    let mut k = b"m/".to_vec();
    k.extend_from_slice(&id.to_be_bytes());
    k
}

/// Deduplication key for a deposit's origin `(sd_id, nonce)`.
/// Length-prefixed so no `(sd_id, nonce)` pair can collide with another.
fn origin_key(sd_id: &str, nonce: &[u8]) -> Vec<u8> {
    let mut k = (sd_id.len() as u32).to_le_bytes().to_vec();
    k.extend_from_slice(sd_id.as_bytes());
    k.extend_from_slice(nonce);
    k
}

fn encode(msg: &StoredMessage) -> Vec<u8> {
    let mut w = RowWriter::new();
    w.u64(msg.id)
        .string(&msg.attribute)
        .bytes(&msg.nonce)
        .bytes(&msg.u)
        .u8(msg.algo)
        .bytes(&msg.sealed)
        .string(&msg.sd_id)
        .u64(msg.timestamp);
    w.finish()
}

fn decode(row: &[u8]) -> Result<StoredMessage> {
    let mut r = RowReader::new(row);
    let msg = StoredMessage {
        id: r.u64()?,
        attribute: r.string()?,
        nonce: r.bytes()?,
        u: r.bytes()?,
        algo: r.u8()?,
        sealed: r.bytes()?,
        sd_id: r.string()?,
        timestamp: r.u64()?,
    };
    r.finish()?;
    Ok(msg)
}

impl MessageDb {
    /// Opens the table, rebuilding the attribute index by replay.
    pub fn open(kind: StorageKind) -> Result<Self> {
        Self::open_with_stride(kind, 0, 1)
    }

    /// Opens the table with a strided id space: every id this table
    /// assigns is congruent to `offset` modulo `stride`. Shard k of an
    /// n-way warehouse opens with `(k, n)` so ids stay globally unique
    /// and `id % n` routes reads back to the owning shard.
    pub fn open_with_stride(kind: StorageKind, offset: u64, stride: u64) -> Result<Self> {
        assert!(stride > 0 && offset < stride, "offset must be < stride");
        let kv = KvEngine::open(kind)?;
        let mut next_id = offset;
        let mut by_attribute: BTreeMap<String, Vec<MessageId>> = BTreeMap::new();
        let mut by_origin = BTreeMap::new();
        for (_, row) in kv.iter() {
            let msg = decode(row)?;
            next_id = next_id.max(msg.id + stride);
            by_origin.insert(origin_key(&msg.sd_id, &msg.nonce), msg.id);
            by_attribute.entry(msg.attribute).or_default().push(msg.id);
        }
        for ids in by_attribute.values_mut() {
            ids.sort_unstable();
        }
        Ok(Self {
            kv,
            next_id,
            stride,
            by_attribute,
            by_origin,
        })
    }

    /// Inserts a message, assigning and returning its id.
    #[allow(clippy::too_many_arguments)]
    pub fn insert(
        &mut self,
        attribute: &str,
        nonce: &[u8],
        u: &[u8],
        algo: u8,
        sealed: &[u8],
        sd_id: &str,
        timestamp: u64,
    ) -> Result<MessageId> {
        let id = self.next_id;
        let msg = StoredMessage {
            id,
            attribute: attribute.to_string(),
            nonce: nonce.to_vec(),
            u: u.to_vec(),
            algo,
            sealed: sealed.to_vec(),
            sd_id: sd_id.to_string(),
            timestamp,
        };
        self.kv.put(&key_of(id), &encode(&msg))?;
        self.next_id += self.stride;
        self.by_origin.insert(origin_key(sd_id, nonce), id);
        self.by_attribute.entry(msg.attribute).or_default().push(id);
        Ok(id)
    }

    /// Group-commits a batch of deposits in ONE WAL append: all fresh rows
    /// share a single frame (and, after the caller's [`Self::sync`], a
    /// single fsync), which is what makes batched deposits cheap. Per row
    /// the result mirrors [`Self::insert_dedup`] — `(id, fresh)` where a
    /// duplicate origin (against the table or an earlier row of the same
    /// batch) returns the already-assigned id with `fresh = false`.
    ///
    /// All-or-nothing: on append failure no id is consumed and no index is
    /// touched, so a retry after a torn append starts from clean state.
    pub fn insert_batch_dedup(
        &mut self,
        rows: &[PendingDeposit],
    ) -> Result<Vec<(MessageId, bool)>> {
        let mut results = Vec::with_capacity(rows.len());
        let mut pairs: Vec<(Vec<u8>, Vec<u8>)> = Vec::with_capacity(rows.len());
        let mut staged: BTreeMap<Vec<u8>, MessageId> = BTreeMap::new();
        let mut next = self.next_id;
        for row in rows {
            let okey = origin_key(&row.sd_id, &row.nonce);
            if let Some(&id) = self.by_origin.get(&okey).or_else(|| staged.get(&okey)) {
                results.push((id, false));
                continue;
            }
            let id = next;
            next += self.stride;
            staged.insert(okey, id);
            let msg = StoredMessage {
                id,
                attribute: row.attribute.clone(),
                nonce: row.nonce.clone(),
                u: row.u.clone(),
                algo: row.algo,
                sealed: row.sealed.clone(),
                sd_id: row.sd_id.clone(),
                timestamp: row.timestamp,
            };
            pairs.push((key_of(id), encode(&msg)));
            results.push((id, true));
        }
        // One frame, one CRC: the WAL either replays every fresh row or
        // none. Indices and the id cursor commit only after the append
        // succeeds, so a failed batch leaves the table untouched.
        self.kv.put_many(&pairs)?;
        self.next_id = next;
        for row in rows.iter() {
            let okey = origin_key(&row.sd_id, &row.nonce);
            if let Some(&id) = staged.get(&okey) {
                if self.by_origin.insert(okey, id).is_none() {
                    self.by_attribute
                        .entry(row.attribute.clone())
                        .or_default()
                        .push(id);
                }
            }
        }
        Ok(results)
    }

    /// Like [`Self::insert`], but idempotent on the deposit origin
    /// `(sd_id, nonce)`: a retransmission of an already-stored deposit —
    /// even one from before a crash and restart — returns the original id
    /// with `fresh = false` instead of storing a second copy. The origin
    /// index is rebuilt from the message rows on open, so the guarantee is
    /// exactly as durable as the message itself.
    #[allow(clippy::too_many_arguments)]
    pub fn insert_dedup(
        &mut self,
        attribute: &str,
        nonce: &[u8],
        u: &[u8],
        algo: u8,
        sealed: &[u8],
        sd_id: &str,
        timestamp: u64,
    ) -> Result<(MessageId, bool)> {
        if let Some(&id) = self.by_origin.get(&origin_key(sd_id, nonce)) {
            return Ok((id, false));
        }
        let id = self.insert(attribute, nonce, u, algo, sealed, sd_id, timestamp)?;
        Ok((id, true))
    }

    /// Fetches one message.
    pub fn get(&self, id: MessageId) -> Result<StoredMessage> {
        match self.kv.get(&key_of(id))? {
            Some(row) => decode(&row),
            None => Err(StoreError::NotFound),
        }
    }

    /// All messages carrying exactly this attribute, oldest first.
    pub fn by_attribute(&self, attribute: &str) -> Result<Vec<StoredMessage>> {
        let Some(ids) = self.by_attribute.get(attribute) else {
            return Ok(Vec::new());
        };
        ids.iter().map(|&id| self.get(id)).collect()
    }

    /// Union over several attributes, deduplicated, oldest first.
    pub fn by_attributes(&self, attributes: &[String]) -> Result<Vec<StoredMessage>> {
        let mut ids: Vec<MessageId> = attributes
            .iter()
            .filter_map(|a| self.by_attribute.get(a))
            .flatten()
            .copied()
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.iter().map(|&id| self.get(id)).collect()
    }

    /// Messages newer than a logical timestamp for one attribute.
    pub fn by_attribute_since(&self, attribute: &str, since: u64) -> Result<Vec<StoredMessage>> {
        Ok(self
            .by_attribute(attribute)?
            .into_iter()
            .filter(|m| m.timestamp >= since)
            .collect())
    }

    /// Deletes every message with `timestamp < before` (retention sweep).
    /// Returns how many rows were removed. Compacts the WAL when the sweep
    /// leaves a majority of dead appends behind.
    pub fn purge_before(&mut self, before: u64) -> Result<usize> {
        let victims: Vec<StoredMessage> = self
            .kv
            .iter()
            .map(|(_, row)| decode(row))
            .collect::<Result<Vec<_>>>()?
            .into_iter()
            .filter(|m| m.timestamp < before)
            .collect();
        for msg in &victims {
            self.kv.delete(&key_of(msg.id))?;
            self.by_origin.remove(&origin_key(&msg.sd_id, &msg.nonce));
            if let Some(ids) = self.by_attribute.get_mut(&msg.attribute) {
                ids.retain(|x| *x != msg.id);
                if ids.is_empty() {
                    self.by_attribute.remove(&msg.attribute);
                }
            }
        }
        if self.kv.garbage_ratio() > 0.5 {
            self.kv.compact()?;
        }
        Ok(victims.len())
    }

    /// Deletes every message carrying exactly `attribute` (replica-plane
    /// handover: this node is no longer in the attribute's replica set).
    /// Returns how many rows were removed; compacts like
    /// [`Self::purge_before`] when the sweep leaves mostly garbage.
    pub fn evict_attribute(&mut self, attribute: &str) -> Result<usize> {
        let Some(ids) = self.by_attribute.remove(attribute) else {
            return Ok(0);
        };
        for &id in &ids {
            let msg = self.get(id)?;
            self.kv.delete(&key_of(id))?;
            self.by_origin.remove(&origin_key(&msg.sd_id, &msg.nonce));
        }
        if self.kv.garbage_ratio() > 0.5 {
            self.kv.compact()?;
        }
        Ok(ids.len())
    }

    /// Number of stored messages.
    pub fn len(&self) -> usize {
        self.kv.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.kv.is_empty()
    }

    /// Distinct attributes present.
    pub fn attributes(&self) -> Vec<String> {
        self.by_attribute.keys().cloned().collect()
    }

    /// Durability point.
    pub fn sync(&mut self) -> Result<()> {
        self.kv.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(db: &mut MessageDb, attr: &str, sd: &str, ts: u64) -> MessageId {
        db.insert(attr, b"n", b"\x02u-bytes", 3, b"sealed", sd, ts)
            .unwrap()
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut db = MessageDb::open(StorageKind::Memory).unwrap();
        let id = db
            .insert(
                "ELECTRIC-APT-SV-CA",
                b"nonce9",
                b"\x02abc",
                1,
                b"ciphertext",
                "meter-7",
                42,
            )
            .unwrap();
        let msg = db.get(id).unwrap();
        assert_eq!(msg.attribute, "ELECTRIC-APT-SV-CA");
        assert_eq!(msg.nonce, b"nonce9");
        assert_eq!(msg.algo, 1);
        assert_eq!(msg.sd_id, "meter-7");
        assert_eq!(msg.timestamp, 42);
        assert!(matches!(db.get(id + 1), Err(StoreError::NotFound)));
    }

    #[test]
    fn attribute_index() {
        let mut db = MessageDb::open(StorageKind::Memory).unwrap();
        mk(&mut db, "ELECTRIC", "m1", 1);
        mk(&mut db, "WATER", "m2", 2);
        mk(&mut db, "ELECTRIC", "m3", 3);
        let elec = db.by_attribute("ELECTRIC").unwrap();
        assert_eq!(elec.len(), 2);
        assert!(elec[0].timestamp < elec[1].timestamp);
        assert_eq!(db.by_attribute("GAS").unwrap().len(), 0);
        assert_eq!(db.attributes(), vec!["ELECTRIC", "WATER"]);
    }

    #[test]
    fn multi_attribute_union_dedups() {
        let mut db = MessageDb::open(StorageKind::Memory).unwrap();
        mk(&mut db, "A", "m", 1);
        mk(&mut db, "B", "m", 2);
        mk(&mut db, "A", "m", 3);
        let got = db
            .by_attributes(&["A".into(), "B".into(), "A".into()])
            .unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(got.iter().map(|m| m.id).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn since_filter() {
        let mut db = MessageDb::open(StorageKind::Memory).unwrap();
        for ts in 1..=5 {
            mk(&mut db, "A", "m", ts);
        }
        assert_eq!(db.by_attribute_since("A", 3).unwrap().len(), 3);
        assert_eq!(db.by_attribute_since("A", 6).unwrap().len(), 0);
    }

    #[test]
    fn purge_before_sweeps_and_reindexes() {
        let mut db = MessageDb::open(StorageKind::Memory).unwrap();
        for ts in 1..=10 {
            mk(&mut db, if ts % 2 == 0 { "EVEN" } else { "ODD" }, "m", ts);
        }
        assert_eq!(db.purge_before(6).unwrap(), 5);
        assert_eq!(db.len(), 5);
        // Index reflects the sweep.
        assert_eq!(db.by_attribute("ODD").unwrap().len(), 2); // ts 7, 9
        assert_eq!(db.by_attribute("EVEN").unwrap().len(), 3); // ts 6, 8, 10
                                                               // Idempotent.
        assert_eq!(db.purge_before(6).unwrap(), 0);
        // Purging everything clears the attribute index.
        assert_eq!(db.purge_before(u64::MAX).unwrap(), 5);
        assert!(db.attributes().is_empty());
        // Ids are not reused after a purge.
        let id = mk(&mut db, "NEW", "m", 99);
        assert_eq!(id, 10);
    }

    #[test]
    fn purge_survives_reopen() {
        let path = std::env::temp_dir().join(format!("mws-mdp-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut db = MessageDb::open(StorageKind::File(path.clone())).unwrap();
            for ts in 1..=6 {
                mk(&mut db, "A", "m", ts);
            }
            assert_eq!(db.purge_before(4).unwrap(), 3);
            db.sync().unwrap();
        }
        let db = MessageDb::open(StorageKind::File(path.clone())).unwrap();
        assert_eq!(db.len(), 3);
        assert_eq!(db.by_attribute("A").unwrap().len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn evict_attribute_sweeps_rows_index_and_origins() {
        let mut db = MessageDb::open(StorageKind::Memory).unwrap();
        for ts in 1..=4 {
            db.insert("GONE", &[ts as u8], b"\x02u", 1, b"c", "m", ts)
                .unwrap();
        }
        mk(&mut db, "KEPT", "m", 9);
        assert_eq!(db.evict_attribute("GONE").unwrap(), 4);
        assert_eq!(db.len(), 1);
        assert!(db.by_attribute("GONE").unwrap().is_empty());
        assert_eq!(db.attributes(), vec!["KEPT"]);
        // The origin index forgot the evicted rows: a re-push of one is
        // fresh again (the node may re-inherit the arc later).
        let (_, fresh) = db
            .insert_dedup("GONE", &[1], b"\x02u", 1, b"c", "m", 1)
            .unwrap();
        assert!(fresh, "evicted origin must not shadow a re-inherited row");
        // Idempotent.
        db.evict_attribute("GONE").unwrap();
        assert_eq!(db.evict_attribute("NEVER").unwrap(), 0);
    }

    #[test]
    fn insert_dedup_is_idempotent_per_origin() {
        let mut db = MessageDb::open(StorageKind::Memory).unwrap();
        let (id, fresh) = db
            .insert_dedup("A", b"nonce-1", b"\x02u", 1, b"c", "meter", 5)
            .unwrap();
        assert!(fresh);
        // Retransmission of the same deposit: same id, nothing stored.
        let (again, fresh) = db
            .insert_dedup("A", b"nonce-1", b"\x02u", 1, b"c", "meter", 5)
            .unwrap();
        assert_eq!(again, id);
        assert!(!fresh);
        assert_eq!(db.len(), 1);
        // Same nonce from a *different* device is a different origin.
        let (other, fresh) = db
            .insert_dedup("A", b"nonce-1", b"\x02u", 1, b"c", "meter-2", 5)
            .unwrap();
        assert!(fresh);
        assert_ne!(other, id);
    }

    #[test]
    fn insert_dedup_survives_reopen() {
        // The crash-between-store-and-ack case: the deposit is on disk, the
        // ack was lost, the warehouse restarted, and the device retransmits.
        let path = std::env::temp_dir().join(format!("mws-md-dedup-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let id = {
            let mut db = MessageDb::open(StorageKind::File(path.clone())).unwrap();
            let (id, fresh) = db
                .insert_dedup("A", b"nonce-9", b"\x02u", 1, b"c", "meter", 5)
                .unwrap();
            assert!(fresh);
            db.sync().unwrap();
            id
        };
        let mut db = MessageDb::open(StorageKind::File(path.clone())).unwrap();
        let (again, fresh) = db
            .insert_dedup("A", b"nonce-9", b"\x02u", 1, b"c", "meter", 5)
            .unwrap();
        assert_eq!(again, id, "retransmit after restart maps to the stored row");
        assert!(!fresh);
        assert_eq!(db.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    fn pending(attr: &str, nonce: &[u8], sd: &str, ts: u64) -> PendingDeposit {
        PendingDeposit {
            attribute: attr.to_string(),
            nonce: nonce.to_vec(),
            u: b"\x02u".to_vec(),
            algo: 1,
            sealed: b"c".to_vec(),
            sd_id: sd.to_string(),
            timestamp: ts,
        }
    }

    #[test]
    fn strided_ids_stay_in_the_residue_class() {
        let mut db = MessageDb::open_with_stride(StorageKind::Memory, 2, 4).unwrap();
        let a = mk(&mut db, "A", "m1", 1);
        let b = mk(&mut db, "A", "m2", 2);
        assert_eq!(a, 2);
        assert_eq!(b, 6);
    }

    #[test]
    fn strided_reopen_continues_the_stripe() {
        let path = std::env::temp_dir().join(format!("mws-md-stride-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut db =
                MessageDb::open_with_stride(StorageKind::File(path.clone()), 1, 3).unwrap();
            assert_eq!(mk(&mut db, "A", "m", 1), 1);
            assert_eq!(mk(&mut db, "A", "m2", 2), 4);
            db.sync().unwrap();
        }
        let mut db = MessageDb::open_with_stride(StorageKind::File(path.clone()), 1, 3).unwrap();
        assert_eq!(mk(&mut db, "A", "m3", 3), 7, "replay resumes after max id");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn batch_dedup_against_table_and_within_batch() {
        let mut db = MessageDb::open(StorageKind::Memory).unwrap();
        let (prior, _) = db
            .insert_dedup("A", b"n0", b"\x02u", 1, b"c", "m", 1)
            .unwrap();
        let rows = vec![
            pending("A", b"n0", "m", 1), // dup of the stored row
            pending("B", b"n1", "m", 2), // fresh
            pending("B", b"n1", "m", 2), // dup within the batch
            pending("C", b"n2", "m2", 3),
        ];
        let got = db.insert_batch_dedup(&rows).unwrap();
        assert_eq!(got[0], (prior, false));
        assert!(got[1].1);
        assert_eq!(got[2], (got[1].0, false));
        assert!(got[3].1);
        assert_eq!(db.len(), 3);
        assert_eq!(db.by_attribute("B").unwrap().len(), 1);
    }

    #[test]
    fn batch_survives_reopen_with_indices() {
        let path = std::env::temp_dir().join(format!("mws-md-batch-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut db = MessageDb::open(StorageKind::File(path.clone())).unwrap();
            let rows: Vec<PendingDeposit> = (0..6u8)
                .map(|i| pending("A", &[i], "m", i as u64))
                .collect();
            assert!(db.insert_batch_dedup(&rows).unwrap().iter().all(|r| r.1));
            db.sync().unwrap();
        }
        let mut db = MessageDb::open(StorageKind::File(path.clone())).unwrap();
        assert_eq!(db.len(), 6);
        assert_eq!(db.by_attribute("A").unwrap().len(), 6);
        // Origin dedup holds across the reopen for batched rows too.
        let again = db
            .insert_batch_dedup(&[pending("A", &[3], "m", 3)])
            .unwrap();
        assert!(!again[0].1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failed_batch_leaves_the_table_clean() {
        let plan = crate::FaultPlan::new();
        let mut db = MessageDb::open(StorageKind::Memory.with_faults(plan.clone())).unwrap();
        mk(&mut db, "A", "m0", 1);
        plan.fail_append(plan.appends());
        let rows = vec![pending("B", b"x", "m", 2), pending("B", b"y", "m", 3)];
        assert!(db.insert_batch_dedup(&rows).is_err());
        assert_eq!(db.len(), 1, "no partial state from the failed batch");
        assert!(db.by_attribute("B").unwrap().is_empty());
        // A retry reuses the ids the failed batch never consumed.
        let got = db.insert_batch_dedup(&rows).unwrap();
        assert_eq!(got[0].0, 1);
        assert!(got.iter().all(|r| r.1));
    }

    #[test]
    fn reopen_rebuilds_index_and_ids() {
        let path = std::env::temp_dir().join(format!("mws-md-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut db = MessageDb::open(StorageKind::File(path.clone())).unwrap();
            mk(&mut db, "A", "m1", 1);
            mk(&mut db, "B", "m2", 2);
            db.sync().unwrap();
        }
        let mut db = MessageDb::open(StorageKind::File(path.clone())).unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(db.by_attribute("A").unwrap().len(), 1);
        // New ids continue after the persisted maximum.
        let id = mk(&mut db, "A", "m3", 3);
        assert_eq!(id, 2);
        std::fs::remove_file(&path).unwrap();
    }
}
