//! Deterministic storage fault injection.
//!
//! A [`FaultPlan`] is a shared, cloneable schedule of injected failures,
//! attached to a [`Segment`](crate::segment::Segment) (usually via
//! [`StorageKind::Faulty`](crate::StorageKind)). It can fail the Nth append
//! outright, *tear* the Nth append (leave a partial frame on the medium —
//! the torn tail the recovery scan must discard), or fail the Nth fsync.
//! Operations are counted from 0 in the order the wrapped segment performs
//! them, so a schedule derived from a seed replays identically.
//!
//! The handle stays shared after attachment: tests keep a clone to steer
//! the schedule and read the operation counters while the engine runs.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex, MutexGuard};

/// What to do to an intercepted append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AppendFault {
    /// Fail with an I/O error; nothing reaches the medium.
    Fail,
    /// Write a partial frame to the medium, then fail — the crash-mid-write
    /// a torn-tail recovery scan exists for.
    Tear,
}

#[derive(Debug, Default)]
struct PlanState {
    appends: u64,
    syncs: u64,
    fail_appends: BTreeSet<u64>,
    tear_appends: BTreeSet<u64>,
    fail_syncs: BTreeSet<u64>,
}

/// A shared schedule of storage faults; clones observe and steer the same
/// schedule.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    state: Arc<Mutex<PlanState>>,
}

impl FaultPlan {
    /// An empty plan (no faults until scheduled).
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, PlanState> {
        // A panicking test must not wedge the shared plan for its peers.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Schedules the `nth` append (0-based, counted across the segment's
    /// lifetime) to fail with an I/O error without touching the medium.
    pub fn fail_append(&self, nth: u64) -> &Self {
        self.lock().fail_appends.insert(nth);
        self
    }

    /// Schedules the `nth` append to tear: a partial frame lands on the
    /// medium and the call fails.
    pub fn tear_append(&self, nth: u64) -> &Self {
        self.lock().tear_appends.insert(nth);
        self
    }

    /// Schedules the `nth` sync (fsync) to fail.
    pub fn fail_sync(&self, nth: u64) -> &Self {
        self.lock().fail_syncs.insert(nth);
        self
    }

    /// Appends intercepted so far (including failed/torn ones).
    pub fn appends(&self) -> u64 {
        self.lock().appends
    }

    /// Syncs intercepted so far (including failed ones).
    pub fn syncs(&self) -> u64 {
        self.lock().syncs
    }

    /// Called by the segment before each append; counts it and returns the
    /// scheduled fault, if any.
    pub(crate) fn on_append(&self) -> Option<AppendFault> {
        let mut s = self.lock();
        let n = s.appends;
        s.appends += 1;
        if s.fail_appends.remove(&n) {
            Some(AppendFault::Fail)
        } else if s.tear_appends.remove(&n) {
            Some(AppendFault::Tear)
        } else {
            None
        }
    }

    /// Called by the segment before each sync; counts it and returns true
    /// when the sync must fail.
    pub(crate) fn on_sync(&self) -> bool {
        let mut s = self.lock();
        let n = s.syncs;
        s.syncs += 1;
        s.fail_syncs.remove(&n)
    }
}

/// The error returned for every injected fault — distinguishable from real
/// I/O failures by its message, indistinguishable by type (callers must
/// handle it like the real thing).
pub(crate) fn injected_io(what: &str) -> crate::StoreError {
    crate::StoreError::Io(std::io::Error::other(format!("injected fault: {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_fires_once_at_the_scheduled_index() {
        let plan = FaultPlan::new();
        plan.fail_append(1).tear_append(2).fail_sync(0);
        assert_eq!(plan.on_append(), None);
        assert_eq!(plan.on_append(), Some(AppendFault::Fail));
        assert_eq!(plan.on_append(), Some(AppendFault::Tear));
        assert_eq!(plan.on_append(), None, "each fault fires exactly once");
        assert!(plan.on_sync());
        assert!(!plan.on_sync());
        assert_eq!(plan.appends(), 4);
        assert_eq!(plan.syncs(), 2);
    }

    #[test]
    fn clones_share_the_schedule() {
        let plan = FaultPlan::new();
        let observer = plan.clone();
        observer.fail_append(0);
        assert_eq!(plan.on_append(), Some(AppendFault::Fail));
        assert_eq!(observer.appends(), 1);
    }
}
