//! A minimal length-prefixed record codec for the typed tables.
//!
//! Field encoding (little-endian lengths): `u32 len ‖ bytes` for variable
//! fields, fixed-width integers otherwise. Deliberately simple — the wire
//! protocol has its own codec in `mws-wire`; this one is only for rows at
//! rest.

use crate::{Result, StoreError};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Record writer.
#[derive(Debug, Default)]
pub struct RowWriter {
    buf: BytesMut,
}

impl RowWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a variable-length byte field.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.buf.put_u32_le(v.len() as u32);
        self.buf.put_slice(v);
        self
    }

    /// Appends a string field.
    pub fn string(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.put_u64_le(v);
        self
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.put_u32_le(v);
        self
    }

    /// Appends a single byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.put_u8(v);
        self
    }

    /// Finishes the row.
    pub fn finish(self) -> Vec<u8> {
        self.buf.to_vec()
    }
}

/// Record reader.
#[derive(Debug)]
pub struct RowReader {
    buf: Bytes,
}

impl RowReader {
    /// Wraps a stored row.
    pub fn new(data: &[u8]) -> Self {
        Self {
            buf: Bytes::copy_from_slice(data),
        }
    }

    /// Reads a variable-length byte field.
    pub fn bytes(&mut self) -> Result<Vec<u8>> {
        if self.buf.remaining() < 4 {
            return Err(StoreError::Codec("missing length"));
        }
        let len = self.buf.get_u32_le() as usize;
        if self.buf.remaining() < len {
            return Err(StoreError::Codec("field overruns row"));
        }
        Ok(self.buf.copy_to_bytes(len).to_vec())
    }

    /// Reads a UTF-8 string field.
    pub fn string(&mut self) -> Result<String> {
        String::from_utf8(self.bytes()?).map_err(|_| StoreError::Codec("invalid utf-8"))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        if self.buf.remaining() < 8 {
            return Err(StoreError::Codec("missing u64"));
        }
        Ok(self.buf.get_u64_le())
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        if self.buf.remaining() < 4 {
            return Err(StoreError::Codec("missing u32"));
        }
        Ok(self.buf.get_u32_le())
    }

    /// Reads a byte.
    pub fn u8(&mut self) -> Result<u8> {
        if self.buf.remaining() < 1 {
            return Err(StoreError::Codec("missing u8"));
        }
        Ok(self.buf.get_u8())
    }

    /// Asserts the row was fully consumed.
    pub fn finish(self) -> Result<()> {
        if self.buf.has_remaining() {
            Err(StoreError::Codec("trailing bytes in row"))
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_row() {
        let mut w = RowWriter::new();
        w.u64(42).string("ELECTRIC").bytes(&[1, 2, 3]).u32(7).u8(9);
        let row = w.finish();
        let mut r = RowReader::new(&row);
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.string().unwrap(), "ELECTRIC");
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.u8().unwrap(), 9);
        r.finish().unwrap();
    }

    #[test]
    fn truncated_rows_rejected() {
        let mut w = RowWriter::new();
        w.string("hello").u64(1);
        let row = w.finish();
        for cut in 0..row.len() {
            let mut r = RowReader::new(&row[..cut]);
            let ok = r.string().and_then(|_| r.u64());
            assert!(ok.is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = RowWriter::new();
        w.u8(1);
        let mut row = w.finish();
        row.push(0xff);
        let mut r = RowReader::new(&row);
        r.u8().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = RowWriter::new();
        w.bytes(&[0xff, 0xfe]);
        let row = w.finish();
        let mut r = RowReader::new(&row);
        assert!(r.string().is_err());
    }
}
