//! CRC-framed append-only record segments.
//!
//! Frame layout (little-endian):
//!
//! ```text
//! ┌───────┬─────────┬───────────┬─────────┐
//! │ magic │ len u32 │ crc32 u32 │ payload │
//! │ 0xA7  │         │ (payload) │         │
//! └───────┴─────────┴───────────┴─────────┘
//! ```
//!
//! Recovery rule: on open, records are replayed until the first frame that
//! fails magic/length/CRC validation; everything after a torn write is
//! discarded (single-writer, crash-consistent append model — the same
//! contract as a WAL tail).

use crate::fault::{injected_io, AppendFault, FaultPlan};
use crate::stats::stats;
use crate::{Result, StoreError};
use mws_crypto::crc32;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::time::Instant;

const MAGIC: u8 = 0xa7;
const HEADER: usize = 1 + 4 + 4;

/// Maximum payload size (16 MiB) — guards against reading a garbage length.
pub const MAX_RECORD: usize = 16 << 20;

/// Byte-level storage behind a segment.
#[derive(Debug)]
pub enum SegmentStorage {
    /// Volatile in-memory buffer.
    Memory(Vec<u8>),
    /// File-backed storage.
    File(File),
}

/// An append-only segment of framed records.
#[derive(Debug)]
pub struct Segment {
    storage: SegmentStorage,
    /// Logical end-of-log (bytes of valid frames).
    len: u64,
    /// Injected-failure schedule (chaos testing); `None` in production.
    faults: Option<FaultPlan>,
}

impl Segment {
    /// Opens an in-memory segment.
    pub fn memory() -> Self {
        Self {
            storage: SegmentStorage::Memory(Vec::new()),
            len: 0,
            faults: None,
        }
    }

    /// Opens (or creates) a file segment, scanning to find the valid tail.
    pub fn open_file(path: &Path) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut seg = Self {
            storage: SegmentStorage::File(file),
            len: 0,
            faults: None,
        };
        // Find the valid prefix by replaying.
        let bytes = seg.read_all()?;
        seg.len = valid_prefix_len(&bytes);
        let discarded = bytes.len() as u64 - seg.len;
        if discarded > 0 {
            stats().torn_tails.inc();
            stats().torn_tail_bytes.add(discarded);
            mws_obs::warn!(
                target: "mws_store",
                "torn WAL tail discarded on open",
                discarded_bytes = discarded,
                valid_bytes = seg.len,
            );
        }
        Ok(seg)
    }

    /// Attaches a fault-injection schedule; subsequent appends and syncs
    /// consult it. The handle is shared — the caller keeps a clone to steer
    /// the schedule.
    pub fn attach_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// Total bytes of valid frames.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    fn read_all(&mut self) -> Result<Vec<u8>> {
        match &mut self.storage {
            SegmentStorage::Memory(buf) => Ok(buf.clone()),
            SegmentStorage::File(f) => {
                let mut buf = Vec::new();
                f.seek(SeekFrom::Start(0))?;
                f.read_to_end(&mut buf)?;
                Ok(buf)
            }
        }
    }

    /// Appends one record, returning its byte offset.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        if payload.len() > MAX_RECORD {
            return Err(StoreError::Codec("record exceeds MAX_RECORD"));
        }
        let offset = self.len;
        let mut frame = Vec::with_capacity(HEADER + payload.len());
        frame.push(MAGIC);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        match self.faults.as_ref().map(|f| f.on_append()) {
            Some(Some(AppendFault::Fail)) => {
                stats().append_errors.inc();
                return Err(injected_io("append failed before write"));
            }
            Some(Some(AppendFault::Tear)) => {
                // Crash mid-write: a partial frame lands on the medium, the
                // logical length does NOT advance, and the caller sees an
                // error. A later reopen must discard this torn tail.
                let torn = &frame[..HEADER.min(frame.len() - 1).max(1)];
                match &mut self.storage {
                    SegmentStorage::Memory(buf) => {
                        buf.truncate(self.len as usize);
                        buf.extend_from_slice(torn);
                    }
                    SegmentStorage::File(f) => {
                        f.seek(SeekFrom::Start(self.len))?;
                        f.write_all(torn)?;
                        f.flush()?;
                    }
                }
                stats().append_errors.inc();
                return Err(injected_io("append torn mid-frame"));
            }
            _ => {}
        }
        let start = Instant::now();
        let wrote = (|| -> Result<()> {
            match &mut self.storage {
                SegmentStorage::Memory(buf) => {
                    buf.truncate(self.len as usize); // drop any torn tail
                    buf.extend_from_slice(&frame);
                }
                SegmentStorage::File(f) => {
                    f.seek(SeekFrom::Start(self.len))?;
                    f.write_all(&frame)?;
                }
            }
            Ok(())
        })();
        if let Err(e) = wrote {
            stats().append_errors.inc();
            return Err(e);
        }
        stats().appends.inc();
        stats().wal_append_us.record_duration(start.elapsed());
        self.len += frame.len() as u64;
        Ok(offset)
    }

    /// Flushes file-backed storage to the OS (durability point).
    pub fn sync(&mut self) -> Result<()> {
        if let Some(f) = &self.faults {
            if f.on_sync() {
                stats().fsync_errors.inc();
                return Err(injected_io("fsync failed"));
            }
        }
        if let SegmentStorage::File(f) = &mut self.storage {
            let start = Instant::now();
            let flushed = f.flush().and_then(|()| f.sync_data());
            if let Err(e) = flushed {
                stats().fsync_errors.inc();
                return Err(e.into());
            }
            stats().wal_fsync_us.record_duration(start.elapsed());
        }
        Ok(())
    }

    /// Reads the record at `offset` (as returned by [`Self::append`]).
    pub fn read_at(&mut self, offset: u64) -> Result<Vec<u8>> {
        let bytes = self.read_all()?;
        let bytes = &bytes[..(self.len as usize).min(bytes.len())];
        decode_frame(bytes, offset as usize)
            .map(|(payload, _)| payload)
            .ok_or(StoreError::Corrupt { offset })
    }

    /// Iterates `(offset, payload)` over all valid records.
    pub fn iter(&mut self) -> Result<Vec<(u64, Vec<u8>)>> {
        let bytes = self.read_all()?;
        let bytes = &bytes[..(self.len as usize).min(bytes.len())];
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < bytes.len() {
            match decode_frame(bytes, pos) {
                Some((payload, next)) => {
                    out.push((pos as u64, payload));
                    pos = next;
                }
                None => break,
            }
        }
        Ok(out)
    }
}

/// Decodes the frame starting at `pos`; returns `(payload, next_pos)`.
fn decode_frame(bytes: &[u8], pos: usize) -> Option<(Vec<u8>, usize)> {
    if pos + HEADER > bytes.len() || bytes[pos] != MAGIC {
        return None;
    }
    let len = u32::from_le_bytes(bytes[pos + 1..pos + 5].try_into().ok()?) as usize;
    if len > MAX_RECORD || pos + HEADER + len > bytes.len() {
        return None;
    }
    let crc = u32::from_le_bytes(bytes[pos + 5..pos + 9].try_into().ok()?);
    let payload = &bytes[pos + HEADER..pos + HEADER + len];
    if crc32(payload) != crc {
        return None;
    }
    Some((payload.to_vec(), pos + HEADER + len))
}

/// Length of the valid frame prefix (recovery scan).
fn valid_prefix_len(bytes: &[u8]) -> u64 {
    let mut pos = 0usize;
    while pos < bytes.len() {
        match decode_frame(bytes, pos) {
            Some((_, next)) => pos = next,
            None => break,
        }
    }
    pos as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_read_memory() {
        let mut seg = Segment::memory();
        let o1 = seg.append(b"first").unwrap();
        let o2 = seg.append(b"second record").unwrap();
        assert_eq!(seg.read_at(o1).unwrap(), b"first");
        assert_eq!(seg.read_at(o2).unwrap(), b"second record");
        let all = seg.iter().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0], (o1, b"first".to_vec()));
    }

    #[test]
    fn empty_record_roundtrips() {
        let mut seg = Segment::memory();
        let o = seg.append(b"").unwrap();
        assert_eq!(seg.read_at(o).unwrap(), b"");
    }

    #[test]
    fn read_at_bad_offset_fails() {
        let mut seg = Segment::memory();
        seg.append(b"data").unwrap();
        assert!(matches!(
            seg.read_at(1),
            Err(StoreError::Corrupt { offset: 1 })
        ));
        assert!(seg.read_at(10_000).is_err());
    }

    #[test]
    fn oversized_record_rejected() {
        let mut seg = Segment::memory();
        assert!(matches!(
            seg.append(&vec![0u8; MAX_RECORD + 1]),
            Err(StoreError::Codec(_))
        ));
    }

    #[test]
    fn file_segment_persists() {
        let dir = std::env::temp_dir().join(format!("mws-seg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t1.seg");
        let _ = std::fs::remove_file(&path);
        {
            let mut seg = Segment::open_file(&path).unwrap();
            seg.append(b"alpha").unwrap();
            seg.append(b"beta").unwrap();
            seg.sync().unwrap();
        }
        let mut seg = Segment::open_file(&path).unwrap();
        let all = seg.iter().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[1].1, b"beta");
        // Appending after reopen continues the log.
        seg.append(b"gamma").unwrap();
        assert_eq!(seg.iter().unwrap().len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_write_recovery() {
        let dir = std::env::temp_dir().join(format!("mws-seg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t2.seg");
        let _ = std::fs::remove_file(&path);
        {
            let mut seg = Segment::open_file(&path).unwrap();
            seg.append(b"good one").unwrap();
            seg.append(b"good two").unwrap();
            seg.sync().unwrap();
        }
        // Simulate a torn write: append garbage bytes directly.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[MAGIC, 0xff, 0xff, 0x00, 0x00, 1, 2, 3])
                .unwrap();
        }
        let mut seg = Segment::open_file(&path).unwrap();
        let all = seg.iter().unwrap();
        assert_eq!(all.len(), 2, "torn tail discarded");
        // New appends overwrite the torn tail cleanly.
        seg.append(b"good three").unwrap();
        assert_eq!(seg.iter().unwrap().len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_payload_detected() {
        let dir = std::env::temp_dir().join(format!("mws-seg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t3.seg");
        let _ = std::fs::remove_file(&path);
        {
            let mut seg = Segment::open_file(&path).unwrap();
            seg.append(b"payload-under-test").unwrap();
            seg.sync().unwrap();
        }
        // Flip a payload byte on disk.
        {
            let mut bytes = std::fs::read(&path).unwrap();
            let n = bytes.len();
            bytes[n - 3] ^= 0x40;
            std::fs::write(&path, bytes).unwrap();
        }
        let mut seg = Segment::open_file(&path).unwrap();
        assert_eq!(seg.iter().unwrap().len(), 0, "bad CRC drops the record");
        std::fs::remove_file(&path).unwrap();
    }
}
