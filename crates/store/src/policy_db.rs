//! The Policy Database (PD) of Figure 3 — the paper's Table 1.
//!
//! "The MMS accesses the Policy Database, which maintains a mapping between
//! RC's identity and the attributes to which RC has access. It also contains
//! an 'Attribute ID – Attribute' mapping" (§V.D).
//!
//! Note the subtlety in Table 1: the *Attribute ID* is per **row** — the
//! same attribute `A1` has AID 1 for `IDRC1` but AID 3 for `IDRC2`. AIDs are
//! what RCs see in plaintext; per-row ids prevent two RCs from correlating
//! that they share an attribute, which is the point of hiding attributes
//! inside the ticket.

use crate::engine::{KvEngine, StorageKind};
use crate::tables::{RowReader, RowWriter};
use crate::{Result, StoreError};
use std::collections::BTreeMap;

/// Row identifier — the paper's "Attribute ID".
pub type AttributeId = u64;

/// One row of Table 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PolicyRow {
    /// RC identity (`ID_RC`).
    pub identity: String,
    /// Attribute string (`A`).
    pub attribute: String,
    /// Row id (`AID`).
    pub attribute_id: AttributeId,
}

/// The identity–attribute mapping table.
#[derive(Debug)]
pub struct PolicyDb {
    kv: KvEngine,
    next_aid: AttributeId,
    rows: BTreeMap<AttributeId, PolicyRow>,
    by_identity: BTreeMap<String, Vec<AttributeId>>,
}

fn key_of(aid: AttributeId) -> Vec<u8> {
    let mut k = b"p/".to_vec();
    k.extend_from_slice(&aid.to_be_bytes());
    k
}

fn encode(row: &PolicyRow) -> Vec<u8> {
    let mut w = RowWriter::new();
    w.u64(row.attribute_id)
        .string(&row.identity)
        .string(&row.attribute);
    w.finish()
}

fn decode(bytes: &[u8]) -> Result<PolicyRow> {
    let mut r = RowReader::new(bytes);
    let row = PolicyRow {
        attribute_id: r.u64()?,
        identity: r.string()?,
        attribute: r.string()?,
    };
    r.finish()?;
    Ok(row)
}

impl PolicyDb {
    /// Opens the table.
    pub fn open(kind: StorageKind) -> Result<Self> {
        let kv = KvEngine::open(kind)?;
        let mut rows = BTreeMap::new();
        let mut by_identity: BTreeMap<String, Vec<AttributeId>> = BTreeMap::new();
        let mut next_aid = 1; // Table 1 starts AIDs at 1
        for (_, bytes) in kv.iter() {
            let row = decode(bytes)?;
            next_aid = next_aid.max(row.attribute_id + 1);
            by_identity
                .entry(row.identity.clone())
                .or_default()
                .push(row.attribute_id);
            rows.insert(row.attribute_id, row);
        }
        for aids in by_identity.values_mut() {
            aids.sort_unstable();
        }
        Ok(Self {
            kv,
            next_aid,
            rows,
            by_identity,
        })
    }

    /// Grants `identity` access to `attribute`. Idempotent: re-granting an
    /// existing pair returns the existing AID.
    pub fn grant(&mut self, identity: &str, attribute: &str) -> Result<AttributeId> {
        if let Some(existing) = self.find_pair(identity, attribute) {
            return Ok(existing);
        }
        let aid = self.next_aid;
        let row = PolicyRow {
            identity: identity.to_string(),
            attribute: attribute.to_string(),
            attribute_id: aid,
        };
        self.kv.put(&key_of(aid), &encode(&row))?;
        self.next_aid += 1;
        self.by_identity
            .entry(row.identity.clone())
            .or_default()
            .push(aid);
        self.rows.insert(aid, row);
        Ok(aid)
    }

    /// Revokes `identity`'s access to `attribute` (requirement iii).
    pub fn revoke(&mut self, identity: &str, attribute: &str) -> Result<()> {
        let aid = self
            .find_pair(identity, attribute)
            .ok_or(StoreError::NotFound)?;
        self.kv.delete(&key_of(aid))?;
        self.rows.remove(&aid);
        if let Some(aids) = self.by_identity.get_mut(identity) {
            aids.retain(|&a| a != aid);
            if aids.is_empty() {
                self.by_identity.remove(identity);
            }
        }
        Ok(())
    }

    /// Revokes everything for an identity (e.g. C-Services discontinues
    /// service). Returns how many rows were removed.
    pub fn revoke_identity(&mut self, identity: &str) -> Result<usize> {
        let aids = self.by_identity.remove(identity).unwrap_or_default();
        for aid in &aids {
            self.kv.delete(&key_of(*aid))?;
            self.rows.remove(aid);
        }
        Ok(aids.len())
    }

    fn find_pair(&self, identity: &str, attribute: &str) -> Option<AttributeId> {
        self.by_identity
            .get(identity)?
            .iter()
            .copied()
            .find(|aid| self.rows.get(aid).is_some_and(|r| r.attribute == attribute))
    }

    /// Does `identity` currently map to `attribute`?
    pub fn has_access(&self, identity: &str, attribute: &str) -> bool {
        self.find_pair(identity, attribute).is_some()
    }

    /// The `(AID, A)` pairs an identity may read — what the MMS feeds the
    /// Token Generator.
    pub fn attributes_for(&self, identity: &str) -> Vec<(AttributeId, String)> {
        self.by_identity
            .get(identity)
            .map(|aids| {
                aids.iter()
                    .filter_map(|aid| self.rows.get(aid).map(|r| (*aid, r.attribute.clone())))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Resolves an AID to its attribute (the PKG-side lookup: "PKG replaces
    /// AID with A").
    pub fn attribute_by_id(&self, aid: AttributeId) -> Option<&PolicyRow> {
        self.rows.get(&aid)
    }

    /// Every row in AID order — regenerates the paper's Table 1.
    pub fn table(&self) -> Vec<PolicyRow> {
        self.rows.values().cloned().collect()
    }

    /// Number of mapping rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no mappings exist.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Durability point.
    pub fn sync(&mut self) -> Result<()> {
        self.kv.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Recreates the paper's Table 1 exactly.
    fn table1() -> PolicyDb {
        let mut db = PolicyDb::open(StorageKind::Memory).unwrap();
        assert_eq!(db.grant("IDRC1", "A1").unwrap(), 1);
        assert_eq!(db.grant("IDRC1", "A2").unwrap(), 2);
        assert_eq!(db.grant("IDRC2", "A1").unwrap(), 3);
        assert_eq!(db.grant("IDRC3", "A3").unwrap(), 4);
        assert_eq!(db.grant("IDRC4", "A4").unwrap(), 5);
        db
    }

    #[test]
    fn reproduces_paper_table_1() {
        let db = table1();
        let rows = db.table();
        let expect = [
            ("IDRC1", "A1", 1),
            ("IDRC1", "A2", 2),
            ("IDRC2", "A1", 3),
            ("IDRC3", "A3", 4),
            ("IDRC4", "A4", 5),
        ];
        assert_eq!(rows.len(), expect.len());
        for (row, (id, attr, aid)) in rows.iter().zip(expect.iter()) {
            assert_eq!(row.identity, *id);
            assert_eq!(row.attribute, *attr);
            assert_eq!(row.attribute_id, *aid);
        }
    }

    #[test]
    fn per_row_aids_hide_shared_attributes() {
        // IDRC1 and IDRC2 both hold A1 but under different AIDs.
        let db = table1();
        let rc1: Vec<_> = db.attributes_for("IDRC1");
        let rc2: Vec<_> = db.attributes_for("IDRC2");
        assert_eq!(rc1, vec![(1, "A1".into()), (2, "A2".into())]);
        assert_eq!(rc2, vec![(3, "A1".into())]);
    }

    #[test]
    fn grant_is_idempotent() {
        let mut db = table1();
        assert_eq!(db.grant("IDRC1", "A1").unwrap(), 1);
        assert_eq!(db.len(), 5);
    }

    #[test]
    fn revoke_removes_access() {
        let mut db = table1();
        assert!(db.has_access("IDRC1", "A1"));
        db.revoke("IDRC1", "A1").unwrap();
        assert!(!db.has_access("IDRC1", "A1"));
        assert!(db.has_access("IDRC1", "A2"), "other grants survive");
        assert!(db.has_access("IDRC2", "A1"), "other identities survive");
        assert!(matches!(
            db.revoke("IDRC1", "A1"),
            Err(StoreError::NotFound)
        ));
    }

    #[test]
    fn revoke_identity_sweeps_all_rows() {
        let mut db = table1();
        assert_eq!(db.revoke_identity("IDRC1").unwrap(), 2);
        assert!(db.attributes_for("IDRC1").is_empty());
        assert_eq!(db.len(), 3);
        assert_eq!(db.revoke_identity("IDRC1").unwrap(), 0);
    }

    #[test]
    fn aid_resolution() {
        let db = table1();
        let row = db.attribute_by_id(3).unwrap();
        assert_eq!(row.identity, "IDRC2");
        assert_eq!(row.attribute, "A1");
        assert!(db.attribute_by_id(99).is_none());
    }

    #[test]
    fn reopen_preserves_table_and_aid_counter() {
        let path = std::env::temp_dir().join(format!("mws-pd-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut db = PolicyDb::open(StorageKind::File(path.clone())).unwrap();
            db.grant("IDRC1", "A1").unwrap();
            db.grant("IDRC1", "A2").unwrap();
            db.revoke("IDRC1", "A1").unwrap();
            db.sync().unwrap();
        }
        let mut db = PolicyDb::open(StorageKind::File(path.clone())).unwrap();
        assert!(!db.has_access("IDRC1", "A1"));
        assert!(db.has_access("IDRC1", "A2"));
        // AIDs are never reused after revocation.
        assert_eq!(db.grant("IDRC9", "A9").unwrap(), 3);
        std::fs::remove_file(&path).unwrap();
    }
}
