//! The User Database of Figure 3.
//!
//! "It is used by the Gatekeeper to authenticate RCs. It stores RC
//! identities and their hashed passwords." The protocol (§V.D) then uses
//! `HashPassword` directly as a symmetric key (`E(HashPassword, ID ‖ T ‖ N)`),
//! so — unlike a login database — the stored value must be the *exact* hash
//! both sides derive, not a salted verifier. The table additionally keeps
//! the RC's RSA public key (`PubK_RC`), which the prototype hardcoded.

use crate::engine::{KvEngine, StorageKind};
use crate::tables::{RowReader, RowWriter};
use crate::{Result, StoreError};
use mws_crypto::{ct_eq, Digest, Sha256};

/// One registered receiving client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UserRecord {
    /// RC identity string.
    pub identity: String,
    /// `SHA-256(password)` — the shared authentication key of §V.D.
    pub hash_password: Vec<u8>,
    /// Serialized RSA public key material (opaque to this table).
    pub public_key: Vec<u8>,
}

/// The RC registry.
#[derive(Debug)]
pub struct UserDb {
    kv: KvEngine,
}

fn key_of(identity: &str) -> Vec<u8> {
    let mut k = b"u/".to_vec();
    k.extend_from_slice(identity.as_bytes());
    k
}

impl UserDb {
    /// Opens the table.
    pub fn open(kind: StorageKind) -> Result<Self> {
        Ok(Self {
            kv: KvEngine::open(kind)?,
        })
    }

    /// Registers a new RC. Fails with [`StoreError::Duplicate`] if the
    /// identity exists.
    pub fn register(&mut self, identity: &str, password: &str, public_key: &[u8]) -> Result<()> {
        let key = key_of(identity);
        if self.kv.contains(&key) {
            return Err(StoreError::Duplicate);
        }
        let rec = UserRecord {
            identity: identity.to_string(),
            hash_password: Sha256::digest(password.as_bytes()),
            public_key: public_key.to_vec(),
        };
        self.kv.put(&key, &encode(&rec))
    }

    /// Looks up a registered RC.
    pub fn get(&self, identity: &str) -> Result<UserRecord> {
        match self.kv.get(&key_of(identity))? {
            Some(row) => decode(&row),
            None => Err(StoreError::NotFound),
        }
    }

    /// Verifies a password in constant time.
    pub fn verify_password(&self, identity: &str, password: &str) -> bool {
        match self.get(identity) {
            Ok(rec) => ct_eq(&rec.hash_password, &Sha256::digest(password.as_bytes())),
            Err(_) => false,
        }
    }

    /// Removes an RC entirely.
    pub fn remove(&mut self, identity: &str) -> Result<()> {
        if !self.kv.contains(&key_of(identity)) {
            return Err(StoreError::NotFound);
        }
        self.kv.delete(&key_of(identity))
    }

    /// Number of registered RCs.
    pub fn len(&self) -> usize {
        self.kv.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.kv.is_empty()
    }

    /// Durability point.
    pub fn sync(&mut self) -> Result<()> {
        self.kv.sync()
    }
}

fn encode(rec: &UserRecord) -> Vec<u8> {
    let mut w = RowWriter::new();
    w.string(&rec.identity)
        .bytes(&rec.hash_password)
        .bytes(&rec.public_key);
    w.finish()
}

fn decode(row: &[u8]) -> Result<UserRecord> {
    let mut r = RowReader::new(row);
    let rec = UserRecord {
        identity: r.string()?,
        hash_password: r.bytes()?,
        public_key: r.bytes()?,
    };
    r.finish()?;
    Ok(rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_verify() {
        let mut db = UserDb::open(StorageKind::Memory).unwrap();
        db.register("C-Services", "hunter2", b"pubkey-bytes")
            .unwrap();
        assert!(db.verify_password("C-Services", "hunter2"));
        assert!(!db.verify_password("C-Services", "hunter3"));
        assert!(!db.verify_password("Nobody", "hunter2"));
        let rec = db.get("C-Services").unwrap();
        assert_eq!(rec.public_key, b"pubkey-bytes");
        assert_eq!(rec.hash_password.len(), 32);
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut db = UserDb::open(StorageKind::Memory).unwrap();
        db.register("rc", "pw", b"").unwrap();
        assert!(matches!(
            db.register("rc", "other", b""),
            Err(StoreError::Duplicate)
        ));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn remove_and_missing() {
        let mut db = UserDb::open(StorageKind::Memory).unwrap();
        db.register("rc", "pw", b"").unwrap();
        db.remove("rc").unwrap();
        assert!(matches!(db.get("rc"), Err(StoreError::NotFound)));
        assert!(matches!(db.remove("rc"), Err(StoreError::NotFound)));
        assert!(db.is_empty());
    }

    #[test]
    fn persistence() {
        let path = std::env::temp_dir().join(format!("mws-ud-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut db = UserDb::open(StorageKind::File(path.clone())).unwrap();
            db.register("rc1", "pw1", b"k1").unwrap();
            db.sync().unwrap();
        }
        let db = UserDb::open(StorageKind::File(path.clone())).unwrap();
        assert!(db.verify_password("rc1", "pw1"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn hash_is_protocol_compatible() {
        // The stored value must equal SHA-256(password) because the RC
        // derives the same value locally as an encryption key (§V.D).
        let mut db = UserDb::open(StorageKind::Memory).unwrap();
        db.register("rc", "secret", b"").unwrap();
        assert_eq!(
            db.get("rc").unwrap().hash_password,
            Sha256::digest(b"secret")
        );
    }
}
