//! [`KvEngine`] — a log-structured key-value store.
//!
//! Architecture: every mutation is appended to a [`Segment`] WAL
//! (`put` / tombstone frames); the full live state is kept in an in-memory
//! B-tree (rebuilt by replay on open). Reads never touch storage. Compaction
//! rewrites the log to contain exactly the live rows.
//!
//! This is the "move to a DBMS" the paper's §VIII asks for, scoped to what
//! the MWS actually needs: point lookups, prefix scans and durable appends.

use crate::fault::FaultPlan;
use crate::segment::Segment;
use crate::stats::stats;
use crate::{Result, StoreError};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

const OP_PUT: u8 = 1;
const OP_DEL: u8 = 2;
/// A group-committed batch of `OP_PUT` sub-entries carried in ONE WAL
/// frame: the whole batch shares a single CRC, so recovery either replays
/// every row or discards the frame — a torn batch can never surface a
/// prefix of itself.
const OP_BATCH: u8 = 3;

/// Where the engine's WAL lives.
#[derive(Debug, Clone)]
pub enum StorageKind {
    /// Volatile (tests, benchmarks).
    Memory,
    /// Durable file at the given path.
    File(PathBuf),
    /// Any of the above with an injected-failure schedule attached — the
    /// `FaultStore` flavor used by the chaos harness. The shared
    /// [`FaultPlan`] handle steers which appends/syncs fail or tear.
    Faulty {
        /// The real storage underneath.
        base: Box<StorageKind>,
        /// The shared fault schedule.
        plan: FaultPlan,
    },
}

impl StorageKind {
    /// Wraps this kind with a fault-injection schedule.
    pub fn with_faults(self, plan: FaultPlan) -> Self {
        StorageKind::Faulty {
            base: Box::new(self),
            plan,
        }
    }

    /// The file path behind this kind, if it is file-backed.
    fn file_path(&self) -> Option<&Path> {
        match self {
            StorageKind::Memory => None,
            StorageKind::File(p) => Some(p),
            StorageKind::Faulty { base, .. } => base.file_path(),
        }
    }

    /// Opens the segment this kind describes, attaching any fault plan.
    fn open_segment(&self) -> Result<Segment> {
        match self {
            StorageKind::Memory => Ok(Segment::memory()),
            StorageKind::File(path) => Segment::open_file(path),
            StorageKind::Faulty { base, plan } => {
                let mut seg = base.open_segment()?;
                seg.attach_faults(plan.clone());
                Ok(seg)
            }
        }
    }
}

/// Log-structured KV store with an in-memory materialized state.
#[derive(Debug)]
pub struct KvEngine {
    wal: Segment,
    kind: StorageKind,
    map: BTreeMap<Vec<u8>, Vec<u8>>,
    /// Appends since the last compaction (compaction heuristic input).
    dead_writes: usize,
}

impl KvEngine {
    /// Opens an engine, replaying any existing WAL.
    pub fn open(kind: StorageKind) -> Result<Self> {
        if let Some(path) = kind.file_path() {
            // A sibling `.compact` file is debris from a compaction that
            // crashed before its atomic rename; the WAL is still the truth.
            let _ = std::fs::remove_file(path.with_extension("compact"));
        }
        let mut wal = kind.open_segment()?;
        let mut map = BTreeMap::new();
        let mut dead_writes = 0usize;
        let mut replayed = 0u64;
        let mut apply = |op: u8, key: Vec<u8>, value: Vec<u8>| -> Result<()> {
            match op {
                OP_PUT => {
                    if map.insert(key, value).is_some() {
                        dead_writes += 1;
                    }
                    Ok(())
                }
                OP_DEL => {
                    map.remove(&key);
                    dead_writes += 1;
                    Ok(())
                }
                _ => Err(StoreError::Codec("unknown op")),
            }
        };
        for (_, payload) in wal.iter()? {
            replayed += 1;
            if payload.first() == Some(&OP_BATCH) {
                for entry in decode_batch(&payload)? {
                    let (op, key, value) = decode_entry(&entry)?;
                    apply(op, key, value)?;
                }
            } else {
                let (op, key, value) = decode_entry(&payload)?;
                apply(op, key, value)?;
            }
        }
        stats().replayed_records.add(replayed);
        mws_obs::debug!(
            target: "mws_store",
            "engine opened",
            replayed = replayed,
            live_rows = map.len(),
            dead_writes = dead_writes as u64,
        );
        Ok(Self {
            wal,
            kind,
            map,
            dead_writes,
        })
    }

    /// Inserts or replaces a row.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.wal.append(&encode_entry(OP_PUT, key, value))?;
        if self.map.insert(key.to_vec(), value.to_vec()).is_some() {
            self.dead_writes += 1;
        }
        Ok(())
    }

    /// Inserts or replaces several rows through ONE group-committed WAL
    /// append: the batch rides in a single `OP_BATCH` frame under one CRC,
    /// so after a crash recovery replays either the whole batch or none of
    /// it. One call costs one `append` regardless of batch size — the
    /// storage half of the deposit group-commit protocol (DESIGN.md §9).
    ///
    /// An empty batch is a no-op; a single pair degrades to [`Self::put`]
    /// (identical WAL bytes to the unbatched path).
    pub fn put_many(&mut self, pairs: &[(Vec<u8>, Vec<u8>)]) -> Result<()> {
        match pairs {
            [] => Ok(()),
            [(k, v)] => self.put(k, v),
            _ => {
                let mut payload = Vec::with_capacity(
                    1 + pairs
                        .iter()
                        .map(|(k, v)| 4 + 5 + k.len() + v.len())
                        .sum::<usize>(),
                );
                payload.push(OP_BATCH);
                for (k, v) in pairs {
                    let entry = encode_entry(OP_PUT, k, v);
                    payload.extend_from_slice(&(entry.len() as u32).to_le_bytes());
                    payload.extend_from_slice(&entry);
                }
                self.wal.append(&payload)?;
                for (k, v) in pairs {
                    if self.map.insert(k.clone(), v.clone()).is_some() {
                        self.dead_writes += 1;
                    }
                }
                Ok(())
            }
        }
    }

    /// Removes a row (idempotent).
    pub fn delete(&mut self, key: &[u8]) -> Result<()> {
        self.wal.append(&encode_entry(OP_DEL, key, &[]))?;
        self.map.remove(key);
        self.dead_writes += 1;
        Ok(())
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        Ok(self.map.get(key).cloned())
    }

    /// True if the key exists.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.map.contains_key(key)
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no live rows exist.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// All `(key, value)` pairs with the given key prefix, in key order.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.map
            .range(prefix.to_vec()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Iterates all live rows in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<u8>, &Vec<u8>)> {
        self.map.iter()
    }

    /// Durability point: flush + fsync the WAL (no-op for memory).
    pub fn sync(&mut self) -> Result<()> {
        self.wal.sync()
    }

    /// Fraction of WAL appends that are dead (overwritten or deleted).
    pub fn garbage_ratio(&self) -> f64 {
        let total = self.map.len() + self.dead_writes;
        if total == 0 {
            0.0
        } else {
            self.dead_writes as f64 / total as f64
        }
    }

    /// Rewrites the WAL to contain exactly the live rows.
    ///
    /// File engines compact via a sibling `.compact` file followed by an
    /// atomic rename; memory engines rebuild in place.
    pub fn compact(&mut self) -> Result<()> {
        let start = Instant::now();
        let reclaimable = self.dead_writes;
        match self.kind.file_path() {
            None => {
                // The rewrite itself runs fault-free (it is a rebuild from
                // the in-memory truth, not a client write); the reopened WAL
                // keeps any attached fault schedule for subsequent appends.
                let mut fresh = Segment::memory();
                for (k, v) in &self.map {
                    fresh.append(&encode_entry(OP_PUT, k, v))?;
                }
                self.wal = fresh;
            }
            Some(path) => {
                let path = path.to_path_buf();
                let tmp = path.with_extension("compact");
                let _ = std::fs::remove_file(&tmp);
                {
                    let mut fresh = Segment::open_file(&tmp)?;
                    for (k, v) in &self.map {
                        fresh.append(&encode_entry(OP_PUT, k, v))?;
                    }
                    fresh.sync()?;
                }
                std::fs::rename(&tmp, path)?;
                self.wal = self.kind.open_segment()?;
            }
        }
        self.dead_writes = 0;
        stats().compactions.inc();
        stats().compaction_us.record_duration(start.elapsed());
        mws_obs::info!(
            target: "mws_store",
            "compaction complete",
            live_rows = self.map.len(),
            dropped_writes = reclaimable as u64,
            wal_bytes = self.wal.len_bytes(),
        );
        Ok(())
    }

    /// WAL size in bytes (for compaction policy and benchmarks).
    pub fn wal_bytes(&self) -> u64 {
        self.wal.len_bytes()
    }
}

fn encode_entry(op: u8, key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + 4 + key.len() + value.len());
    out.push(op);
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(value);
    out
}

/// Splits an `OP_BATCH` frame into its length-prefixed sub-entries.
fn decode_batch(payload: &[u8]) -> Result<Vec<Vec<u8>>> {
    let mut rest = &payload[1..];
    let mut entries = Vec::new();
    while !rest.is_empty() {
        if rest.len() < 4 {
            return Err(StoreError::Codec("batch length truncated"));
        }
        let n = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        if rest.len() < 4 + n {
            return Err(StoreError::Codec("batch entry overruns frame"));
        }
        entries.push(rest[4..4 + n].to_vec());
        rest = &rest[4 + n..];
    }
    Ok(entries)
}

fn decode_entry(payload: &[u8]) -> Result<(u8, Vec<u8>, Vec<u8>)> {
    if payload.len() < 5 {
        return Err(StoreError::Codec("entry too short"));
    }
    let op = payload[0];
    let klen = u32::from_le_bytes(payload[1..5].try_into().expect("4 bytes")) as usize;
    if payload.len() < 5 + klen {
        return Err(StoreError::Codec("key overruns entry"));
    }
    let key = payload[5..5 + klen].to_vec();
    let value = payload[5 + klen..].to_vec();
    Ok((op, key, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let mut kv = KvEngine::open(StorageKind::Memory).unwrap();
        assert!(kv.is_empty());
        kv.put(b"a", b"1").unwrap();
        kv.put(b"b", b"2").unwrap();
        assert_eq!(kv.get(b"a").unwrap().unwrap(), b"1");
        assert_eq!(kv.len(), 2);
        kv.put(b"a", b"updated").unwrap();
        assert_eq!(kv.get(b"a").unwrap().unwrap(), b"updated");
        kv.delete(b"a").unwrap();
        assert!(kv.get(b"a").unwrap().is_none());
        assert!(!kv.contains(b"a"));
        assert!(kv.contains(b"b"));
        // Deleting a missing key is fine.
        kv.delete(b"zzz").unwrap();
    }

    #[test]
    fn prefix_scan_ordering() {
        let mut kv = KvEngine::open(StorageKind::Memory).unwrap();
        for (k, v) in [
            ("msg/002", "b"),
            ("msg/001", "a"),
            ("policy/x", "p"),
            ("msg/010", "c"),
        ] {
            kv.put(k.as_bytes(), v.as_bytes()).unwrap();
        }
        let rows = kv.scan_prefix(b"msg/");
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].0, b"msg/001");
        assert_eq!(rows[1].0, b"msg/002");
        assert_eq!(rows[2].0, b"msg/010");
        assert!(kv.scan_prefix(b"nothing/").is_empty());
        // Empty prefix scans everything.
        assert_eq!(kv.scan_prefix(b"").len(), 4);
    }

    #[test]
    fn replay_rebuilds_state() {
        let path = std::env::temp_dir().join(format!("mws-kv-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut kv = KvEngine::open(StorageKind::File(path.clone())).unwrap();
            kv.put(b"alive", b"yes").unwrap();
            kv.put(b"dead", b"soon").unwrap();
            kv.delete(b"dead").unwrap();
            kv.put(b"alive", b"still").unwrap();
            kv.sync().unwrap();
        }
        let kv = KvEngine::open(StorageKind::File(path.clone())).unwrap();
        assert_eq!(kv.len(), 1);
        assert_eq!(kv.get(b"alive").unwrap().unwrap(), b"still");
        assert!(kv.get(b"dead").unwrap().is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_drops_garbage_and_preserves_state() {
        let path = std::env::temp_dir().join(format!("mws-kvc-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut kv = KvEngine::open(StorageKind::File(path.clone())).unwrap();
        for i in 0..100u32 {
            kv.put(b"hot", format!("v{i}").as_bytes()).unwrap();
        }
        kv.put(b"cold", b"1").unwrap();
        let before = kv.wal_bytes();
        assert!(kv.garbage_ratio() > 0.9);
        kv.compact().unwrap();
        assert!(kv.wal_bytes() < before / 10);
        assert_eq!(kv.garbage_ratio(), 0.0);
        assert_eq!(kv.get(b"hot").unwrap().unwrap(), b"v99");
        assert_eq!(kv.get(b"cold").unwrap().unwrap(), b"1");
        // Reopen after compaction.
        drop(kv);
        let kv = KvEngine::open(StorageKind::File(path.clone())).unwrap();
        assert_eq!(kv.len(), 2);
        assert_eq!(kv.get(b"hot").unwrap().unwrap(), b"v99");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_wal_tail_recovers_valid_prefix() {
        let path = std::env::temp_dir().join(format!("mws-kv-torn-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut kv = KvEngine::open(StorageKind::File(path.clone())).unwrap();
            kv.put(b"a", b"1").unwrap();
            kv.put(b"b", b"2").unwrap();
            kv.sync().unwrap();
        }
        let durable_len = std::fs::metadata(&path).unwrap().len();
        {
            let mut kv = KvEngine::open(StorageKind::File(path.clone())).unwrap();
            kv.put(b"c", b"3-never-fully-written").unwrap();
            kv.sync().unwrap();
        }
        // Crash mid-append: cut the file partway through the last frame.
        let full_len = std::fs::metadata(&path).unwrap().len();
        assert!(full_len > durable_len);
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(durable_len + (full_len - durable_len) / 2)
            .unwrap();
        drop(f);

        let kv = KvEngine::open(StorageKind::File(path.clone())).unwrap();
        assert_eq!(kv.len(), 2, "torn record discarded, prefix intact");
        assert_eq!(kv.get(b"a").unwrap().unwrap(), b"1");
        assert_eq!(kv.get(b"b").unwrap().unwrap(), b"2");
        assert!(kv.get(b"c").unwrap().is_none());

        // The engine keeps working: new appends overwrite the torn tail
        // and survive the next replay.
        let mut kv = kv;
        kv.put(b"c", b"3").unwrap();
        kv.sync().unwrap();
        drop(kv);
        let kv = KvEngine::open(StorageKind::File(path.clone())).unwrap();
        assert_eq!(kv.len(), 3);
        assert_eq!(kv.get(b"c").unwrap().unwrap(), b"3");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_crc_in_tail_discards_only_the_tail() {
        let path = std::env::temp_dir().join(format!("mws-kv-crc-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut kv = KvEngine::open(StorageKind::File(path.clone())).unwrap();
            kv.put(b"good", b"kept").unwrap();
            kv.sync().unwrap();
        }
        let prefix_len = std::fs::metadata(&path).unwrap().len() as usize;
        {
            let mut kv = KvEngine::open(StorageKind::File(path.clone())).unwrap();
            kv.put(b"bad", b"bit-rotted").unwrap();
            kv.sync().unwrap();
        }
        // Flip a payload byte of the last record: its CRC no longer matches.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let kv = KvEngine::open(StorageKind::File(path.clone())).unwrap();
        assert_eq!(kv.len(), 1, "corrupt record dropped at the CRC check");
        assert_eq!(kv.get(b"good").unwrap().unwrap(), b"kept");
        assert!(kv.get(b"bad").unwrap().is_none());
        assert_eq!(kv.wal_bytes() as usize, prefix_len);
        std::fs::remove_file(&path).unwrap();
    }

    /// Seeds a file engine with live rows `a=1, b=2` plus garbage, returning
    /// the WAL path.
    fn seeded_wal(tag: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!("mws-kv-{tag}-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(path.with_extension("compact"));
        let mut kv = KvEngine::open(StorageKind::File(path.clone())).unwrap();
        kv.put(b"a", b"1").unwrap();
        kv.put(b"doomed", b"x").unwrap();
        kv.delete(b"doomed").unwrap();
        kv.put(b"b", b"2").unwrap();
        kv.sync().unwrap();
        path
    }

    fn assert_consistent(path: &Path) {
        let kv = KvEngine::open(StorageKind::File(path.to_path_buf())).unwrap();
        assert_eq!(kv.len(), 2, "exactly the live rows");
        assert_eq!(kv.get(b"a").unwrap().unwrap(), b"1");
        assert_eq!(kv.get(b"b").unwrap().unwrap(), b"2");
        assert!(kv.get(b"doomed").unwrap().is_none());
    }

    #[test]
    fn compact_interrupted_before_swap_recovers_from_wal() {
        // Crash model: the compaction wrote (part of) the .compact sibling
        // but died before the atomic rename. The original WAL is untouched,
        // so reopening must serve the same state and clear the debris.
        let path = seeded_wal("precswap");
        let tmp = path.with_extension("compact");
        // A half-written rewrite, torn mid-frame for good measure.
        std::fs::write(&tmp, [0xa7u8, 0xff, 0x00, 0x00]).unwrap();

        assert_consistent(&path);
        assert!(
            !tmp.exists(),
            "stale .compact debris removed on open, not left to shadow later compactions"
        );
        // The next compaction proceeds normally despite the earlier crash.
        let mut kv = KvEngine::open(StorageKind::File(path.clone())).unwrap();
        kv.compact().unwrap();
        assert_consistent(&path);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compact_interrupted_after_swap_recovers_from_new_wal() {
        // Crash model: the rename landed (the WAL *is* the compacted file)
        // but the process died before reopening it. A fresh open must see
        // the compacted state — nothing refers to the old log anymore.
        let path = seeded_wal("postswap");
        {
            let kv = KvEngine::open(StorageKind::File(path.clone())).unwrap();
            // Run the same rewrite compact() performs, then "crash": drop
            // everything without reopening the swapped file.
            let tmp = path.with_extension("compact");
            let mut fresh = Segment::open_file(&tmp).unwrap();
            for (k, v) in kv.iter() {
                fresh.append(&encode_entry(OP_PUT, k, v)).unwrap();
            }
            fresh.sync().unwrap();
            drop(fresh);
            std::fs::rename(&tmp, &path).unwrap();
        }
        assert_consistent(&path);
        // And the compacted log accepts new writes across another restart.
        {
            let mut kv = KvEngine::open(StorageKind::File(path.clone())).unwrap();
            kv.put(b"c", b"3").unwrap();
            kv.sync().unwrap();
        }
        let kv = KvEngine::open(StorageKind::File(path.clone())).unwrap();
        assert_eq!(kv.len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn injected_append_failure_leaves_state_unchanged() {
        let plan = crate::FaultPlan::new();
        let mut kv = KvEngine::open(StorageKind::Memory.with_faults(plan.clone())).unwrap();
        kv.put(b"a", b"1").unwrap();
        plan.fail_append(plan.appends());
        assert!(matches!(kv.put(b"b", b"2"), Err(StoreError::Io(_))));
        assert!(kv.get(b"b").unwrap().is_none(), "failed put not applied");
        // The engine keeps working after the fault.
        kv.put(b"b", b"2").unwrap();
        assert_eq!(kv.get(b"b").unwrap().unwrap(), b"2");
    }

    #[test]
    fn injected_torn_append_discarded_on_reopen() {
        let path = std::env::temp_dir().join(format!("mws-kv-fault-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let plan = crate::FaultPlan::new();
        {
            let kind = StorageKind::File(path.clone()).with_faults(plan.clone());
            let mut kv = KvEngine::open(kind).unwrap();
            kv.put(b"a", b"1").unwrap();
            kv.sync().unwrap();
            plan.tear_append(plan.appends());
            assert!(matches!(kv.put(b"b", b"2"), Err(StoreError::Io(_))));
            // Crash here: the torn frame is on disk past the valid prefix.
        }
        let kv = KvEngine::open(StorageKind::File(path.clone())).unwrap();
        assert_eq!(kv.len(), 1, "torn append discarded by recovery scan");
        assert_eq!(kv.get(b"a").unwrap().unwrap(), b"1");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn injected_sync_failure_surfaces() {
        let plan = crate::FaultPlan::new();
        let mut kv = KvEngine::open(StorageKind::Memory.with_faults(plan.clone())).unwrap();
        kv.put(b"a", b"1").unwrap();
        plan.fail_sync(plan.syncs());
        assert!(matches!(kv.sync(), Err(StoreError::Io(_))));
        kv.sync().unwrap();
    }

    #[test]
    fn memory_compaction() {
        let mut kv = KvEngine::open(StorageKind::Memory).unwrap();
        for i in 0..50u32 {
            kv.put(b"k", format!("{i}").as_bytes()).unwrap();
        }
        kv.compact().unwrap();
        assert_eq!(kv.get(b"k").unwrap().unwrap(), b"49");
        assert_eq!(kv.garbage_ratio(), 0.0);
    }

    #[test]
    fn put_many_is_one_wal_append_and_replays() {
        let path = std::env::temp_dir().join(format!("mws-kv-batch-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut kv = KvEngine::open(StorageKind::File(path.clone())).unwrap();
            let pairs: Vec<(Vec<u8>, Vec<u8>)> =
                (0..5u8).map(|i| (vec![b'k', i], vec![b'v', i])).collect();
            kv.put_many(&pairs).unwrap();
            kv.sync().unwrap();
            assert_eq!(kv.len(), 5);
        }
        let kv = KvEngine::open(StorageKind::File(path.clone())).unwrap();
        assert_eq!(kv.len(), 5, "whole batch replayed from one frame");
        assert_eq!(kv.get(&[b'k', 3]).unwrap().unwrap(), vec![b'v', 3]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn put_many_counts_a_single_append() {
        let plan = crate::FaultPlan::new();
        let mut kv = KvEngine::open(StorageKind::Memory.with_faults(plan.clone())).unwrap();
        let before = plan.appends();
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..8u8).map(|i| (vec![i], vec![i, i])).collect();
        kv.put_many(&pairs).unwrap();
        assert_eq!(plan.appends(), before + 1, "8 rows, one WAL append");
        // Empty and singleton degenerate cleanly.
        kv.put_many(&[]).unwrap();
        assert_eq!(plan.appends(), before + 1);
        kv.put_many(&[(b"solo".to_vec(), b"v".to_vec())]).unwrap();
        assert_eq!(plan.appends(), before + 2);
        assert_eq!(kv.len(), 9);
    }

    #[test]
    fn torn_batch_append_is_all_or_nothing() {
        let path = std::env::temp_dir().join(format!("mws-kv-tbatch-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let plan = crate::FaultPlan::new();
        {
            let kind = StorageKind::File(path.clone()).with_faults(plan.clone());
            let mut kv = KvEngine::open(kind).unwrap();
            kv.put(b"before", b"1").unwrap();
            kv.sync().unwrap();
            plan.tear_append(plan.appends());
            let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..4u8).map(|i| (vec![i], vec![i])).collect();
            assert!(kv.put_many(&pairs).is_err());
        }
        let kv = KvEngine::open(StorageKind::File(path.clone())).unwrap();
        assert_eq!(kv.len(), 1, "no partial batch survives the torn frame");
        assert_eq!(kv.get(b"before").unwrap().unwrap(), b"1");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn batched_rows_compact_and_overwrite_like_plain_puts() {
        let mut kv = KvEngine::open(StorageKind::Memory).unwrap();
        kv.put(b"a", b"old").unwrap();
        kv.put_many(&[
            (b"a".to_vec(), b"new".to_vec()),
            (b"b".to_vec(), b"2".to_vec()),
        ])
        .unwrap();
        assert_eq!(kv.get(b"a").unwrap().unwrap(), b"new");
        assert!(kv.garbage_ratio() > 0.0, "overwrite inside a batch counted");
        kv.compact().unwrap();
        assert_eq!(kv.len(), 2);
        assert_eq!(kv.get(b"a").unwrap().unwrap(), b"new");
    }

    #[test]
    fn binary_keys_and_values() {
        let mut kv = KvEngine::open(StorageKind::Memory).unwrap();
        let key = vec![0u8, 255, 1, 254];
        let val = (0..=255u8).collect::<Vec<_>>();
        kv.put(&key, &val).unwrap();
        assert_eq!(kv.get(&key).unwrap().unwrap(), val);
        // Empty value is distinct from absent.
        kv.put(b"empty", b"").unwrap();
        assert_eq!(kv.get(b"empty").unwrap(), Some(vec![]));
    }
}
