//! The prototype's flat-file message store — the E8 baseline.
//!
//! "Instead of databases, flat files are used" (§VI). Records are appended
//! as `hex(attribute) TAB hex(payload) NL` lines; retrieval by attribute is
//! a full scan, exactly the access pattern the Perl prototype had. Kept so
//! experiment E8 can measure what the paper's §VIII "move to a DBMS" is
//! worth.

use crate::{Result, StoreError};
use std::fs::OpenOptions;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::PathBuf;

/// Where the flat file lives.
#[derive(Debug)]
enum Backing {
    Memory(Vec<(String, Vec<u8>)>),
    File(PathBuf),
}

/// Append-only flat-file store with linear-scan retrieval.
#[derive(Debug)]
pub struct FlatFileStore {
    backing: Backing,
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn unhex(s: &str) -> Result<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return Err(StoreError::Codec("odd hex length"));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&s[i..i + 2], 16).map_err(|_| StoreError::Codec("bad hex digit"))
        })
        .collect()
}

impl FlatFileStore {
    /// In-memory variant (benchmarks without disk noise).
    pub fn memory() -> Self {
        Self {
            backing: Backing::Memory(Vec::new()),
        }
    }

    /// File-backed variant.
    pub fn file(path: PathBuf) -> Self {
        Self {
            backing: Backing::File(path),
        }
    }

    /// Appends one `(attribute, payload)` record.
    pub fn append(&mut self, attribute: &str, payload: &[u8]) -> Result<()> {
        match &mut self.backing {
            Backing::Memory(rows) => {
                rows.push((attribute.to_string(), payload.to_vec()));
                Ok(())
            }
            Backing::File(path) => {
                let file = OpenOptions::new().create(true).append(true).open(path)?;
                let mut w = BufWriter::new(file);
                writeln!(w, "{}\t{}", hex(attribute.as_bytes()), hex(payload))?;
                w.flush()?;
                Ok(())
            }
        }
    }

    /// Full scan: all payloads whose attribute matches.
    pub fn find_by_attribute(&self, attribute: &str) -> Result<Vec<Vec<u8>>> {
        match &self.backing {
            Backing::Memory(rows) => Ok(rows
                .iter()
                .filter(|(a, _)| a == attribute)
                .map(|(_, p)| p.clone())
                .collect()),
            Backing::File(path) => {
                let file = match std::fs::File::open(path) {
                    Ok(f) => f,
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
                    Err(e) => return Err(e.into()),
                };
                let want = hex(attribute.as_bytes());
                let mut out = Vec::new();
                for line in BufReader::new(file).lines() {
                    let line = line?;
                    let Some((a, p)) = line.split_once('\t') else {
                        return Err(StoreError::Codec("missing tab"));
                    };
                    if a == want {
                        out.push(unhex(p)?);
                    }
                }
                Ok(out)
            }
        }
    }

    /// Record count (full scan for files — that's the point).
    pub fn len(&self) -> Result<usize> {
        match &self.backing {
            Backing::Memory(rows) => Ok(rows.len()),
            Backing::File(path) => {
                let file = match std::fs::File::open(path) {
                    Ok(f) => f,
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
                    Err(e) => return Err(e.into()),
                };
                Ok(BufReader::new(file).lines().count())
            }
        }
    }

    /// True when no records exist.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_append_and_scan() {
        let mut s = FlatFileStore::memory();
        s.append("ELECTRIC", b"m1").unwrap();
        s.append("WATER", b"m2").unwrap();
        s.append("ELECTRIC", b"m3").unwrap();
        assert_eq!(
            s.find_by_attribute("ELECTRIC").unwrap(),
            vec![b"m1".to_vec(), b"m3".to_vec()]
        );
        assert!(s.find_by_attribute("GAS").unwrap().is_empty());
        assert_eq!(s.len().unwrap(), 3);
    }

    #[test]
    fn file_append_and_scan() {
        let path = std::env::temp_dir().join(format!("mws-ff-{}.txt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut s = FlatFileStore::file(path.clone());
        assert!(s.is_empty().unwrap());
        // Attribute values with tabs/newlines survive because fields are hexed.
        s.append("WEIRD\tATTR\n", b"payload\nwith\tstuff").unwrap();
        s.append("plain", b"x").unwrap();
        assert_eq!(
            s.find_by_attribute("WEIRD\tATTR\n").unwrap(),
            vec![b"payload\nwith\tstuff".to_vec()]
        );
        assert_eq!(s.len().unwrap(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_empty() {
        let s = FlatFileStore::file(PathBuf::from("/nonexistent/mws-never-here.txt"));
        assert!(s.find_by_attribute("a").unwrap().is_empty());
        assert_eq!(s.len().unwrap(), 0);
    }
}
