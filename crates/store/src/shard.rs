//! N-way sharding of the message warehouse (DESIGN.md §9).
//!
//! The paper's MWS fronts fleets of smart devices depositing continuously
//! (§III); a single WAL serializes every deposit behind one fsync. This
//! module stripes [`MessageDb`] across N independent shards — each with its
//! own WAL file, fsync cadence, and compaction — routed by an attribute-
//! string hash so one attribute's messages always share a shard. Recovery,
//! origin dedup, and fault injection all stay *per shard*: a torn append on
//! shard k cannot disturb shard k+1 (proved by the chaos harness).
//!
//! Global id uniqueness needs no cross-shard coordination: shard k of n
//! assigns ids congruent to k (mod n), so `id % n` routes any id back to
//! its owning shard.

use crate::engine::StorageKind;
use crate::message_db::{MessageDb, MessageId, PendingDeposit, StoredMessage};
use crate::Result;
use mws_obs::{metric_name, Counter};
use mws_wire::fnv1a64;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

/// Maps attribute strings (and message ids) to shard indices.
///
/// Routing is a stable FNV-1a 64-bit hash of the attribute bytes, reduced
/// modulo the shard count — deterministic across processes and restarts, so
/// a reopened deployment routes every attribute exactly as before.
///
/// ```
/// use mws_store::ShardRouter;
///
/// let router = ShardRouter::new(4);
/// let shard = router.route("ELECTRIC-APT-SV-CA");
/// assert!(shard < 4);
/// // Routing is deterministic: the same attribute always lands on the
/// // same shard, so its messages never straddle WAL files.
/// assert_eq!(shard, router.route("ELECTRIC-APT-SV-CA"));
/// // A single-shard router degenerates to the unsharded warehouse.
/// assert_eq!(ShardRouter::new(1).route("anything"), 0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// A router over `shards` shards. Panics if `shards == 0`.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a warehouse needs at least one shard");
        Self { shards }
    }

    /// The shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning this attribute string.
    pub fn route(&self, attribute: &str) -> usize {
        (fnv1a64(attribute.as_bytes()) % self.shards as u64) as usize
    }

    /// The shard owning this message id (ids are striped `id ≡ k mod n`).
    pub fn shard_of_id(&self, id: MessageId) -> usize {
        (id % self.shards as u64) as usize
    }
}

/// Per-shard metric handles, registered when the shard opens so the
/// exposition is scrape-complete from startup (no first-traffic gaps).
struct ShardStats {
    /// Fresh rows made durable on this shard (single or batched).
    deposits: Counter,
    /// Deposits answered from the origin-dedup index.
    dedup_hits: Counter,
    /// Batched appends: one WAL frame + one fsync covering ≥ 1 fresh row.
    group_commits: Counter,
    /// Fresh rows that shared their WAL frame with at least one other row —
    /// the fsyncs the group commit saved.
    coalesced: Counter,
}

impl ShardStats {
    fn new(shard: usize) -> Self {
        let r = mws_obs::registry();
        let label = shard.to_string();
        let c = |base| r.counter(&metric_name(base, &[("shard", &label)]));
        Self {
            deposits: c("mws_store_shard_deposits_total"),
            dedup_hits: c("mws_store_shard_dedup_hits_total"),
            group_commits: c("mws_store_shard_group_commits_total"),
            coalesced: c("mws_store_shard_coalesced_total"),
        }
    }
}

/// The sharded warehouse: N independent [`MessageDb`] stripes behind the
/// same API the single table offered, routed by [`ShardRouter`].
///
/// Each shard is guarded by its own mutex, so deposits on different shards
/// append and fsync fully in parallel; the type is `Sync` and all methods
/// take `&self`, so one instance is shared across server workers without an
/// outer lock. A single-shard instance (`shards = 1`) is byte-compatible
/// with the unsharded [`MessageDb`]: same WAL path, same frames.
pub struct ShardedMessageDb {
    router: ShardRouter,
    shards: Vec<Mutex<MessageDb>>,
    stats: Vec<ShardStats>,
}

impl std::fmt::Debug for ShardedMessageDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMessageDb")
            .field("shards", &self.shards.len())
            .finish()
    }
}

/// Derives the per-shard storage kinds for an n-way warehouse over one
/// base kind: file-backed stores get `<stem>-shard-<k>` sibling paths when
/// `n > 1` (and keep the base path untouched at `n = 1`), memory stores
/// stay memory (each shard opens its own segment), and fault wrappers
/// carry through to each derived base. Callers that need per-shard fault
/// plans (the chaos harness) wrap individual entries before
/// [`ShardedMessageDb::open_with`].
pub fn shard_kinds(base: &StorageKind, n: usize) -> Vec<StorageKind> {
    assert!(n > 0, "a warehouse needs at least one shard");
    (0..n).map(|k| derive_shard_kind(base, k, n)).collect()
}

/// Derives shard k's storage from the base kind: file-backed stores get a
/// `<stem>-shard-<k>` sibling path (shard counts > 1), memory stores stay
/// memory (each shard opens its own segment), and fault wrappers carry
/// through to the derived base.
fn derive_shard_kind(base: &StorageKind, k: usize, n: usize) -> StorageKind {
    match base {
        StorageKind::Memory => StorageKind::Memory,
        StorageKind::File(path) => {
            if n == 1 {
                StorageKind::File(path.clone())
            } else {
                StorageKind::File(shard_path(path, k))
            }
        }
        StorageKind::Faulty { base, plan } => StorageKind::Faulty {
            base: Box::new(derive_shard_kind(base, k, n)),
            plan: plan.clone(),
        },
    }
}

/// `dir/messages.wal` → `dir/messages-shard-3.wal`.
fn shard_path(path: &std::path::Path, k: usize) -> PathBuf {
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("messages");
    let name = match path.extension().and_then(|e| e.to_str()) {
        Some(ext) => format!("{stem}-shard-{k}.{ext}"),
        None => format!("{stem}-shard-{k}"),
    };
    path.with_file_name(name)
}

impl ShardedMessageDb {
    /// Opens an n-way warehouse from one base kind, deriving per-shard WAL
    /// paths. `shards = 1` reuses the base path unchanged, so existing
    /// single-store deployments reopen their data bit-for-bit.
    pub fn open(base: StorageKind, shards: usize) -> Result<Self> {
        Self::open_with(shard_kinds(&base, shards))
    }

    /// Opens a warehouse from explicit per-shard kinds (the chaos harness
    /// uses this to pin a [`crate::FaultPlan`] to one shard). Panics on an
    /// empty vector; per-shard WAL paths must already be distinct.
    pub fn open_with(kinds: Vec<StorageKind>) -> Result<Self> {
        assert!(!kinds.is_empty(), "a warehouse needs at least one shard");
        let n = kinds.len();
        let mut shards = Vec::with_capacity(n);
        let mut stats = Vec::with_capacity(n);
        for (k, kind) in kinds.into_iter().enumerate() {
            shards.push(Mutex::new(MessageDb::open_with_stride(
                kind, k as u64, n as u64,
            )?));
            stats.push(ShardStats::new(k));
        }
        Ok(Self {
            router: ShardRouter::new(n),
            shards,
            stats,
        })
    }

    /// The routing function (copyable; clients can pre-compute placement).
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// The shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, k: usize) -> MutexGuard<'_, MessageDb> {
        self.shards[k].lock().expect("shard lock poisoned")
    }

    /// Stores one deposit durably: origin-dedup insert, then fsync of the
    /// owning shard's WAL, all under that shard's lock — other shards keep
    /// depositing in parallel. Returns `(id, fresh)` like
    /// [`MessageDb::insert_dedup`]; duplicates still sync before returning,
    /// so a retransmitted ack is never issued ahead of durability.
    pub fn deposit(&self, row: &PendingDeposit) -> Result<(MessageId, bool)> {
        let k = self.router.route(&row.attribute);
        let mut shard = self.shard(k);
        let (id, fresh) = shard.insert_dedup(
            &row.attribute,
            &row.nonce,
            &row.u,
            row.algo,
            &row.sealed,
            &row.sd_id,
            row.timestamp,
        )?;
        shard.sync()?;
        if fresh {
            self.stats[k].deposits.inc();
        } else {
            self.stats[k].dedup_hits.inc();
        }
        Ok((id, fresh))
    }

    /// Group-commits a batch: rows are bucketed by shard, and each touched
    /// shard takes ONE lock acquisition, ONE WAL append, and ONE fsync for
    /// all its rows before any of them is acknowledged. Results keep the
    /// caller's row order; `None` marks a row whose shard failed to store
    /// or sync it (the caller should answer it with a storage error, never
    /// an ack). Failure on one shard does not disturb the others.
    pub fn deposit_batch(&self, rows: &[PendingDeposit]) -> Vec<Option<(MessageId, bool)>> {
        let n = self.shards.len();
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, row) in rows.iter().enumerate() {
            buckets[self.router.route(&row.attribute)].push(i);
        }
        let mut results: Vec<Option<(MessageId, bool)>> = vec![None; rows.len()];
        for (k, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let batch: Vec<PendingDeposit> = bucket.iter().map(|&i| rows[i].clone()).collect();
            let mut shard = self.shard(k);
            let stored = match shard.insert_batch_dedup(&batch) {
                Ok(stored) => stored,
                Err(_) => continue, // whole bucket stays `None`
            };
            if shard.sync().is_err() {
                // Appended but not durable: acking would break
                // durable-before-ack, so the bucket reports failure.
                continue;
            }
            drop(shard);
            let fresh = stored.iter().filter(|(_, f)| *f).count() as u64;
            let dups = stored.len() as u64 - fresh;
            self.stats[k].deposits.add(fresh);
            self.stats[k].dedup_hits.add(dups);
            if fresh > 0 {
                self.stats[k].group_commits.inc();
            }
            if fresh > 1 {
                self.stats[k].coalesced.add(fresh);
            }
            for (&i, r) in bucket.iter().zip(stored) {
                results[i] = Some(r);
            }
        }
        results
    }

    /// Inserts without a durability point (relay ingestion; the periodic
    /// [`Self::sync_all`] provides the flush cadence).
    pub fn insert(&self, row: &PendingDeposit) -> Result<MessageId> {
        let k = self.router.route(&row.attribute);
        self.shard(k).insert(
            &row.attribute,
            &row.nonce,
            &row.u,
            row.algo,
            &row.sealed,
            &row.sd_id,
            row.timestamp,
        )
    }

    /// Fetches one message, routing by the id's residue class.
    pub fn get(&self, id: MessageId) -> Result<StoredMessage> {
        self.shard(self.router.shard_of_id(id)).get(id)
    }

    /// All messages carrying exactly this attribute, oldest first. An
    /// attribute lives entirely on its routed shard, so this is one lookup.
    pub fn by_attribute(&self, attribute: &str) -> Result<Vec<StoredMessage>> {
        self.shard(self.router.route(attribute))
            .by_attribute(attribute)
    }

    /// Union over several attributes, deduplicated, oldest first (by id,
    /// matching the unsharded table's ordering).
    pub fn by_attributes(&self, attributes: &[String]) -> Result<Vec<StoredMessage>> {
        let mut out = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for attribute in attributes {
            for msg in self.by_attribute(attribute)? {
                if seen.insert(msg.id) {
                    out.push(msg);
                }
            }
        }
        out.sort_unstable_by_key(|m| m.id);
        Ok(out)
    }

    /// Messages newer than a logical timestamp for one attribute.
    pub fn by_attribute_since(&self, attribute: &str, since: u64) -> Result<Vec<StoredMessage>> {
        self.shard(self.router.route(attribute))
            .by_attribute_since(attribute, since)
    }

    /// Distinct attributes present, across all shards, sorted.
    pub fn attributes(&self) -> Vec<String> {
        let mut all: Vec<String> = (0..self.shards.len())
            .flat_map(|k| self.shard(k).attributes())
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// Total stored messages across all shards.
    pub fn len(&self) -> usize {
        (0..self.shards.len()).map(|k| self.shard(k).len()).sum()
    }

    /// True when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every row of one attribute (replica-plane handover). The
    /// attribute lives entirely on its routed shard; that shard syncs
    /// before this returns, so the eviction is as durable as a deposit.
    pub fn evict_attribute(&self, attribute: &str) -> Result<usize> {
        let mut shard = self.shard(self.router.route(attribute));
        let removed = shard.evict_attribute(attribute)?;
        if removed > 0 {
            shard.sync()?;
        }
        Ok(removed)
    }

    /// Retention sweep on every shard; each shard compacts its own WAL
    /// independently when the sweep leaves it mostly garbage. Returns the
    /// total rows removed.
    pub fn purge_before(&self, before: u64) -> Result<usize> {
        let mut removed = 0;
        for k in 0..self.shards.len() {
            removed += self.shard(k).purge_before(before)?;
        }
        Ok(removed)
    }

    /// Durability point across every shard. The first error is returned
    /// after all shards have been attempted.
    pub fn sync_all(&self) -> Result<()> {
        let mut first_err = None;
        for k in 0..self.shards.len() {
            if let Err(e) = self.shard(k).sync() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Messages stored on one shard (observability; panics on a bad index).
    pub fn shard_len(&self, k: usize) -> usize {
        self.shard(k).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending(attr: &str, nonce: &[u8], sd: &str, ts: u64) -> PendingDeposit {
        PendingDeposit {
            attribute: attr.to_string(),
            nonce: nonce.to_vec(),
            u: b"\x02u".to_vec(),
            algo: 1,
            sealed: b"c".to_vec(),
            sd_id: sd.to_string(),
            timestamp: ts,
        }
    }

    #[test]
    fn router_is_deterministic_and_in_range() {
        let r = ShardRouter::new(7);
        for attr in ["ELECTRIC", "WATER", "GAS", "x", ""] {
            let k = r.route(attr);
            assert!(k < 7);
            assert_eq!(k, r.route(attr));
        }
        assert_eq!(ShardRouter::new(1).route("ELECTRIC"), 0);
    }

    #[test]
    fn router_spreads_attributes() {
        let r = ShardRouter::new(4);
        let mut hit = [false; 4];
        for i in 0..64 {
            hit[r.route(&format!("ATTR-{i}"))] = true;
        }
        assert!(hit.iter().all(|&h| h), "64 attributes cover 4 shards");
    }

    #[test]
    fn ids_are_globally_unique_and_route_home() {
        let db = ShardedMessageDb::open(StorageKind::Memory, 4).unwrap();
        let mut ids = Vec::new();
        for i in 0..32 {
            let (id, fresh) = db
                .deposit(&pending(&format!("A{i}"), &[i as u8], "m", i))
                .unwrap();
            assert!(fresh);
            ids.push(id);
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 32, "no id collisions across shards");
        for (i, &id) in ids.iter().enumerate() {
            let msg = db.get(id).unwrap();
            assert_eq!(msg.attribute, format!("A{i}"));
        }
    }

    #[test]
    fn single_shard_reopens_unsharded_files() {
        // shards = 1 must keep the original WAL path so pre-sharding
        // deployments reopen their data unchanged.
        let path = std::env::temp_dir().join(format!("mws-shard1-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut db = MessageDb::open(StorageKind::File(path.clone())).unwrap();
            db.insert("A", b"n", b"\x02u", 1, b"c", "m", 7).unwrap();
            db.sync().unwrap();
        }
        let db = ShardedMessageDb::open(StorageKind::File(path.clone()), 1).unwrap();
        assert_eq!(db.len(), 1);
        assert_eq!(db.by_attribute("A").unwrap()[0].timestamp, 7);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sharded_files_reopen_per_shard() {
        let dir = std::env::temp_dir().join(format!("mws-shardN-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let base = StorageKind::File(dir.join("messages.wal"));
        {
            let db = ShardedMessageDb::open(base.clone(), 4).unwrap();
            for i in 0..16u64 {
                db.deposit(&pending(&format!("A{i}"), &[i as u8], "m", i))
                    .unwrap();
            }
        }
        assert!(
            dir.join("messages-shard-0.wal").exists(),
            "per-shard WAL files on disk"
        );
        let db = ShardedMessageDb::open(base, 4).unwrap();
        assert_eq!(db.len(), 16);
        for i in 0..16u64 {
            assert_eq!(db.by_attribute(&format!("A{i}")).unwrap().len(), 1);
        }
        // Dedup index survives the reopen, per shard.
        let (_, fresh) = db.deposit(&pending("A3", &[3], "m", 3)).unwrap();
        assert!(!fresh);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_coalesces_per_shard_and_keeps_order() {
        let plans: Vec<crate::FaultPlan> = (0..2).map(|_| crate::FaultPlan::new()).collect();
        let db = ShardedMessageDb::open_with(
            plans
                .iter()
                .map(|p| StorageKind::Memory.with_faults(p.clone()))
                .collect(),
        )
        .unwrap();
        let r = db.router();
        // Mine attributes pinned to each shard.
        let attr_on = |shard: usize| {
            (0..)
                .map(|i| format!("PIN-{i}"))
                .find(|a| r.route(a) == shard)
                .unwrap()
        };
        let (a0, a1) = (attr_on(0), attr_on(1));
        let rows: Vec<PendingDeposit> = (0..8u8)
            .map(|i| pending(if i % 2 == 0 { &a0 } else { &a1 }, &[i], "m", i as u64))
            .collect();
        let before: Vec<u64> = plans.iter().map(|p| p.appends()).collect();
        let results = db.deposit_batch(&rows);
        assert!(results.iter().all(|r| r.map(|(_, f)| f) == Some(true)));
        for (p, b) in plans.iter().zip(before) {
            assert_eq!(p.appends(), b + 1, "4 rows per shard, 1 append per shard");
        }
        // Row order is preserved in the results.
        for (i, r) in results.iter().enumerate() {
            let (id, _) = r.unwrap();
            assert_eq!(db.get(id).unwrap().nonce, vec![i as u8]);
        }
    }

    #[test]
    fn batch_failure_is_isolated_to_the_faulted_shard() {
        let bad = crate::FaultPlan::new();
        let db = ShardedMessageDb::open_with(vec![
            StorageKind::Memory.with_faults(bad.clone()),
            StorageKind::Memory,
        ])
        .unwrap();
        let r = db.router();
        let attr_on = |shard: usize| {
            (0..)
                .map(|i| format!("PIN-{i}"))
                .find(|a| r.route(a) == shard)
                .unwrap()
        };
        let (a0, a1) = (attr_on(0), attr_on(1));
        bad.fail_append(bad.appends());
        let rows = vec![
            pending(&a0, b"x", "m", 1), // shard 0: append fails
            pending(&a1, b"y", "m", 2), // shard 1: unaffected
        ];
        let results = db.deposit_batch(&rows);
        assert!(results[0].is_none(), "faulted shard reports failure");
        assert_eq!(results[1].map(|(_, f)| f), Some(true));
        assert_eq!(db.len(), 1);
        // The failed row retries cleanly once the fault passes.
        let retry = db.deposit_batch(&rows[..1]);
        assert_eq!(retry[0].map(|(_, f)| f), Some(true));
    }

    #[test]
    fn reads_union_across_shards() {
        let db = ShardedMessageDb::open(StorageKind::Memory, 3).unwrap();
        for i in 0..9u64 {
            db.deposit(&pending(&format!("A{i}"), &[i as u8], "m", i))
                .unwrap();
        }
        assert_eq!(db.attributes().len(), 9);
        let attrs: Vec<String> = (0..9).map(|i| format!("A{i}")).collect();
        let union = db.by_attributes(&attrs).unwrap();
        assert_eq!(union.len(), 9);
        assert!(union.windows(2).all(|w| w[0].id < w[1].id), "ordered by id");
        assert_eq!(db.purge_before(5).unwrap(), 5);
        assert_eq!(db.len(), 4);
        db.sync_all().unwrap();
    }
}
