//! Preregistered metric handles for the storage hot path.
//!
//! Handles are looked up once (lazily, on first use) and cached for the
//! process lifetime, so `append`/`sync` pay one relaxed atomic op per
//! update rather than a registry lock.

use mws_obs::{Counter, Histogram};
use std::sync::OnceLock;

pub(crate) struct StoreStats {
    /// Latency of one WAL frame write (µs).
    pub wal_append_us: Histogram,
    /// Latency of one durability point: flush + fsync (µs).
    pub wal_fsync_us: Histogram,
    /// Latency of one full compaction rewrite (µs).
    pub compaction_us: Histogram,
    /// Frames appended successfully.
    pub appends: Counter,
    /// Appends that failed (injected or real I/O errors).
    pub append_errors: Counter,
    /// Durability points that failed.
    pub fsync_errors: Counter,
    /// Compactions completed.
    pub compactions: Counter,
    /// Segment opens that found a torn/corrupt tail and discarded it.
    pub torn_tails: Counter,
    /// Bytes discarded by torn-tail recovery.
    pub torn_tail_bytes: Counter,
    /// Records replayed while rebuilding engine state on open.
    pub replayed_records: Counter,
}

pub(crate) fn stats() -> &'static StoreStats {
    static STATS: OnceLock<StoreStats> = OnceLock::new();
    STATS.get_or_init(|| {
        let r = mws_obs::registry();
        StoreStats {
            wal_append_us: r.histogram("mws_store_wal_append_us"),
            wal_fsync_us: r.histogram("mws_store_wal_fsync_us"),
            compaction_us: r.histogram("mws_store_compaction_us"),
            appends: r.counter("mws_store_wal_appends_total"),
            append_errors: r.counter("mws_store_wal_append_errors_total"),
            fsync_errors: r.counter("mws_store_wal_fsync_errors_total"),
            compactions: r.counter("mws_store_compactions_total"),
            torn_tails: r.counter("mws_store_recovered_torn_tails_total"),
            torn_tail_bytes: r.counter("mws_store_recovered_torn_tail_bytes_total"),
            replayed_records: r.counter("mws_store_replayed_records_total"),
        }
    })
}
