//! The quadratic extension `F_p² = F_p[i] / (i² + 1)`.
//!
//! Valid because `p ≡ 3 (mod 4)` makes −1 a non-residue. Pairing values and
//! the distortion-map image live here.

use crate::fp::{Fp, FpCtx};
use crate::FpW;

/// An element `c0 + c1·i` of `F_p²`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fp2 {
    /// Real component.
    pub c0: Fp,
    /// Imaginary component.
    pub c1: Fp,
}

impl core::fmt::Debug for Fp2 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Fp2({:?} + {:?}·i)", self.c0, self.c1)
    }
}

impl FpCtx {
    /// Builds an extension element from components.
    pub fn fp2(&self, c0: Fp, c1: Fp) -> Fp2 {
        Fp2 { c0, c1 }
    }

    /// Zero of `F_p²`.
    pub fn fp2_zero(&self) -> Fp2 {
        Fp2 {
            c0: self.zero(),
            c1: self.zero(),
        }
    }

    /// One of `F_p²`.
    pub fn fp2_one(&self) -> Fp2 {
        Fp2 {
            c0: self.one(),
            c1: self.zero(),
        }
    }

    /// Embeds a base-field element.
    pub fn fp2_from_fp(&self, a: Fp) -> Fp2 {
        Fp2 {
            c0: a,
            c1: self.zero(),
        }
    }

    /// Is the element zero?
    pub fn fp2_is_zero(&self, a: &Fp2) -> bool {
        self.is_zero(&a.c0) && self.is_zero(&a.c1)
    }

    /// `a + b` in `F_p²`.
    pub fn fp2_add(&self, a: &Fp2, b: &Fp2) -> Fp2 {
        Fp2 {
            c0: self.add(&a.c0, &b.c0),
            c1: self.add(&a.c1, &b.c1),
        }
    }

    /// `a − b` in `F_p²`.
    pub fn fp2_sub(&self, a: &Fp2, b: &Fp2) -> Fp2 {
        Fp2 {
            c0: self.sub(&a.c0, &b.c0),
            c1: self.sub(&a.c1, &b.c1),
        }
    }

    /// `−a` in `F_p²`.
    pub fn fp2_neg(&self, a: &Fp2) -> Fp2 {
        Fp2 {
            c0: self.neg(&a.c0),
            c1: self.neg(&a.c1),
        }
    }

    /// `a · b` in `F_p²` (Karatsuba: 3 base multiplications).
    pub fn fp2_mul(&self, a: &Fp2, b: &Fp2) -> Fp2 {
        let v0 = self.mul(&a.c0, &b.c0);
        let v1 = self.mul(&a.c1, &b.c1);
        let s = self.mul(&self.add(&a.c0, &a.c1), &self.add(&b.c0, &b.c1));
        Fp2 {
            c0: self.sub(&v0, &v1),
            c1: self.sub(&self.sub(&s, &v0), &v1),
        }
    }

    /// `a²` in `F_p²` (complex squaring: 2 base multiplications).
    pub fn fp2_sqr(&self, a: &Fp2) -> Fp2 {
        // (c0 + c1 i)² = (c0+c1)(c0−c1) + 2 c0 c1 i
        let t0 = self.add(&a.c0, &a.c1);
        let t1 = self.sub(&a.c0, &a.c1);
        let c1 = self.mul(&a.c0, &a.c1);
        Fp2 {
            c0: self.mul(&t0, &t1),
            c1: self.dbl(&c1),
        }
    }

    /// Multiplies an `F_p²` element by a base-field scalar.
    pub fn fp2_mul_fp(&self, a: &Fp2, s: &Fp) -> Fp2 {
        Fp2 {
            c0: self.mul(&a.c0, s),
            c1: self.mul(&a.c1, s),
        }
    }

    /// Conjugation `c0 − c1·i` — which is also the Frobenius `a ↦ a^p`.
    pub fn fp2_conj(&self, a: &Fp2) -> Fp2 {
        Fp2 {
            c0: a.c0,
            c1: self.neg(&a.c1),
        }
    }

    /// Norm `a·ā = c0² + c1² ∈ F_p`.
    pub fn fp2_norm(&self, a: &Fp2) -> Fp {
        self.add(&self.sqr(&a.c0), &self.sqr(&a.c1))
    }

    /// Inverse in `F_p²`: `ā / (c0² + c1²)`. `None` for zero.
    pub fn fp2_inv(&self, a: &Fp2) -> Option<Fp2> {
        let norm = self.fp2_norm(a);
        let ninv = self.inv(&norm)?;
        Some(Fp2 {
            c0: self.mul(&a.c0, &ninv),
            c1: self.neg(&self.mul(&a.c1, &ninv)),
        })
    }

    /// `a^e` in `F_p²` via a width-4 sliding window (the default path).
    ///
    /// Uses 8 precomputed odd powers `a, a³, …, a¹⁵`, cutting the expected
    /// multiplication count from `bits/2` to about `bits/5`. Bit-identical
    /// to [`Self::fp2_pow_binary`] (asserted by the cross-check tests).
    pub fn fp2_pow(&self, a: &Fp2, e: &FpW) -> Fp2 {
        const W: i64 = 4;
        let bits = e.bits() as i64;
        if bits <= W {
            return self.fp2_pow_binary(a, e);
        }
        // Odd powers a^1, a^3, …, a^15.
        let a2 = self.fp2_sqr(a);
        let mut odd = [*a; 1 << (W - 1)];
        for i in 1..odd.len() {
            odd[i] = self.fp2_mul(&odd[i - 1], &a2);
        }
        let mut acc: Option<Fp2> = None;
        let mut i = bits - 1;
        while i >= 0 {
            if !e.bit(i as u32) {
                if let Some(v) = acc {
                    acc = Some(self.fp2_sqr(&v));
                }
                i -= 1;
            } else {
                // Largest window [j, i] of width ≤ W ending on a set bit.
                let mut j = (i - W + 1).max(0);
                while !e.bit(j as u32) {
                    j += 1;
                }
                let mut val = 0usize;
                for k in (j..=i).rev() {
                    val = (val << 1) | e.bit(k as u32) as usize;
                }
                if let Some(mut v) = acc {
                    for _ in 0..(i - j + 1) {
                        v = self.fp2_sqr(&v);
                    }
                    acc = Some(self.fp2_mul(&v, &odd[(val - 1) / 2]));
                } else {
                    acc = Some(odd[(val - 1) / 2]);
                }
                i = j - 1;
            }
        }
        acc.unwrap_or_else(|| self.fp2_one())
    }

    /// `a^e` in `F_p²` by plain square-and-multiply — the pre-optimization
    /// reference path kept for cross-checks and the benchmark baseline.
    pub fn fp2_pow_binary(&self, a: &Fp2, e: &FpW) -> Fp2 {
        let mut acc = self.fp2_one();
        let bits = e.bits();
        for i in (0..bits).rev() {
            acc = self.fp2_sqr(&acc);
            if e.bit(i) {
                acc = self.fp2_mul(&acc, a);
            }
        }
        acc
    }

    /// `a^e` for norm-1 (unitary) elements, width-4 signed wNAF with
    /// conjugation as inversion.
    ///
    /// After the easy final exponentiation `z^{p−1} = z̄/z` every value
    /// satisfies `a·ā = 1`, so `a⁻¹ = ā` is free and signed-digit recoding
    /// applies — the same trick wNAF plays with point negation. Used for the
    /// hard final-exponentiation power `^h`. Bit-identical to
    /// [`Self::fp2_pow_binary`] on unitary inputs.
    ///
    /// Debug builds assert the norm; release builds silently compute a
    /// wrong value for non-unitary inputs, so this is `pub(crate)`.
    pub(crate) fn fp2_pow_unitary(&self, a: &Fp2, e: &FpW) -> Fp2 {
        const W: u32 = 4;
        debug_assert_eq!(self.fp2_norm(a), self.one(), "input must be unitary");
        if e.bits() + W > FpW::BITS {
            return self.fp2_pow(a, e);
        }
        if e.is_zero() {
            return self.fp2_one();
        }
        let a2 = self.fp2_sqr(a);
        let mut odd = [*a; 1 << (W - 1)];
        for i in 1..odd.len() {
            odd[i] = self.fp2_mul(&odd[i - 1], &a2);
        }
        let digits = crate::naf::wnaf_digits(e, W);
        let mut acc: Option<Fp2> = None;
        for &d in digits.iter().rev() {
            if let Some(v) = acc {
                acc = Some(self.fp2_sqr(&v));
            }
            if d != 0 {
                let m = odd[(d.unsigned_abs() as usize - 1) / 2];
                let m = if d > 0 { m } else { self.fp2_conj(&m) };
                acc = Some(match acc {
                    None => m,
                    Some(v) => self.fp2_mul(&v, &m),
                });
            }
        }
        acc.unwrap_or_else(|| self.fp2_one())
    }

    /// Canonical serialization: `c0 ‖ c1` big-endian.
    pub fn fp2_to_bytes(&self, a: &Fp2) -> Vec<u8> {
        let mut out = self.to_bytes(&a.c0);
        out.extend_from_slice(&self.to_bytes(&a.c1));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> FpCtx {
        let mut p = FpW::ZERO;
        p.set_bit(127, true);
        FpCtx::new(&p.wrapping_sub(&FpW::ONE))
    }

    #[test]
    fn i_squared_is_minus_one() {
        let f = ctx();
        let i = f.fp2(f.zero(), f.one());
        let i2 = f.fp2_sqr(&i);
        assert_eq!(i2, f.fp2_neg(&f.fp2_one()));
        // Via mul as well.
        assert_eq!(f.fp2_mul(&i, &i), i2);
    }

    #[test]
    fn mul_sqr_agree() {
        let f = ctx();
        let a = f.fp2(f.from_u64(123), f.from_u64(456));
        assert_eq!(f.fp2_mul(&a, &a), f.fp2_sqr(&a));
    }

    #[test]
    fn field_axioms() {
        let f = ctx();
        let a = f.fp2(f.from_u64(11), f.from_u64(22));
        let b = f.fp2(f.from_u64(33), f.from_u64(44));
        let c = f.fp2(f.from_u64(55), f.from_u64(66));
        assert_eq!(f.fp2_mul(&a, &b), f.fp2_mul(&b, &a));
        assert_eq!(
            f.fp2_mul(&f.fp2_mul(&a, &b), &c),
            f.fp2_mul(&a, &f.fp2_mul(&b, &c))
        );
        assert_eq!(
            f.fp2_mul(&f.fp2_add(&a, &b), &c),
            f.fp2_add(&f.fp2_mul(&a, &c), &f.fp2_mul(&b, &c))
        );
        assert_eq!(f.fp2_mul(&a, &f.fp2_one()), a);
        assert_eq!(f.fp2_add(&a, &f.fp2_neg(&a)), f.fp2_zero());
    }

    #[test]
    fn inverse_roundtrip() {
        let f = ctx();
        let a = f.fp2(f.from_u64(987654321), f.from_u64(123456789));
        let inv = f.fp2_inv(&a).unwrap();
        assert_eq!(f.fp2_mul(&a, &inv), f.fp2_one());
        assert!(f.fp2_inv(&f.fp2_zero()).is_none());
        // Base-field-only element inverts like Fp.
        let b = f.fp2_from_fp(f.from_u64(7));
        let binv = f.fp2_inv(&b).unwrap();
        assert_eq!(binv.c0, f.inv(&f.from_u64(7)).unwrap());
        assert!(f.is_zero(&binv.c1));
    }

    #[test]
    fn conj_is_frobenius() {
        let f = ctx();
        let a = f.fp2(f.from_u64(31337), f.from_u64(271828));
        let frob = f.fp2_pow(&a, f.modulus());
        assert_eq!(frob, f.fp2_conj(&a));
    }

    #[test]
    fn norm_multiplicative() {
        let f = ctx();
        let a = f.fp2(f.from_u64(3), f.from_u64(5));
        let b = f.fp2(f.from_u64(7), f.from_u64(11));
        let nab = f.fp2_norm(&f.fp2_mul(&a, &b));
        assert_eq!(nab, f.mul(&f.fp2_norm(&a), &f.fp2_norm(&b)));
    }

    #[test]
    fn windowed_pow_matches_binary() {
        let f = ctx();
        let a = f.fp2(f.from_u64(31337), f.from_u64(271828));
        let mut exps = vec![
            FpW::ZERO,
            FpW::ONE,
            FpW::from_u64(2),
            FpW::from_u64(15),
            FpW::from_u64(16),
            FpW::from_u64(0xdead_beef_cafe_f00d),
        ];
        exps.push(f.modulus().wrapping_sub(&FpW::ONE));
        exps.push(*f.modulus());
        exps.push(f.modulus().wrapping_add(&FpW::ONE));
        for e in &exps {
            assert_eq!(f.fp2_pow(&a, e), f.fp2_pow_binary(&a, e));
        }
    }

    #[test]
    fn unitary_pow_matches_binary() {
        let f = ctx();
        // Make a unitary element the same way the pairing does: z^{p−1}.
        let z = f.fp2(f.from_u64(987654321), f.from_u64(1234567));
        let u = f.fp2_mul(&f.fp2_conj(&z), &f.fp2_inv(&z).unwrap());
        assert_eq!(f.fp2_norm(&u), f.one());
        let mut exps = vec![FpW::ZERO, FpW::ONE, FpW::from_u64(2), FpW::from_u64(12345)];
        exps.push(f.modulus().wrapping_add(&FpW::ONE));
        for e in &exps {
            assert_eq!(f.fp2_pow_unitary(&u, e), f.fp2_pow_binary(&u, e));
        }
    }

    #[test]
    fn pow_edge_cases() {
        let f = ctx();
        let a = f.fp2(f.from_u64(5), f.from_u64(9));
        assert_eq!(f.fp2_pow(&a, &FpW::ZERO), f.fp2_one());
        assert_eq!(f.fp2_pow(&a, &FpW::ONE), a);
        assert_eq!(f.fp2_pow(&a, &FpW::from_u64(2)), f.fp2_sqr(&a));
        // Lagrange: a^(p²−1) = 1 for a ≠ 0. p²−1 = (p−1)(p+1); compute in
        // two steps to stay within the width.
        let pm1 = f.modulus().wrapping_sub(&FpW::ONE);
        let pp1 = f.modulus().wrapping_add(&FpW::ONE);
        let step = f.fp2_pow(&a, &pm1);
        assert_eq!(f.fp2_pow(&step, &pp1), f.fp2_one());
    }
}
