//! Width-w non-adjacent form (wNAF) recoding of scalars.
//!
//! Shared by variable-base scalar multiplication ([`crate::curve`]) and
//! unitary `F_p²` exponentiation ([`crate::fp2`]): both have cheap inverses
//! (point negation / conjugation), which is exactly when a signed-digit
//! representation pays off — it cuts the expected non-zero digit density
//! from 1/2 to 1/(w+1).

use crate::FpW;

/// Recodes `k` into width-`w` NAF digits, least-significant first.
///
/// Each digit is odd and in `(−2^{w−1}, 2^{w−1})`, or zero; the value is
/// `k = Σ dᵢ·2^i`. Callers must ensure `k.bits() + w ≤ FpW::BITS` so the
/// intermediate `k − dᵢ` cannot wrap (the public entry points fall back to
/// the binary ladder near the width limit).
pub(crate) fn wnaf_digits(k: &FpW, w: u32) -> Vec<i8> {
    debug_assert!((2..8).contains(&w), "wNAF width out of supported range");
    debug_assert!(k.bits() + w <= FpW::BITS, "scalar too wide for wNAF");
    let mut k = *k;
    let mut digits = Vec::with_capacity(k.bits() as usize + 1);
    let mask = (1u64 << w) - 1;
    let half = 1i64 << (w - 1);
    let full = 1i64 << w;
    while !k.is_zero() {
        let d = if k.is_odd() {
            let low = (k.as_u64() & mask) as i64;
            let d = if low >= half { low - full } else { low };
            if d >= 0 {
                k = k.wrapping_sub(&FpW::from_u64(d as u64));
            } else {
                k = k.wrapping_add(&FpW::from_u64((-d) as u64));
            }
            d as i8
        } else {
            0
        };
        digits.push(d);
        k = k.wrapping_shr(1);
    }
    digits
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reconstructs the scalar from its digits (checked small enough to fit
    /// in i128 for the test values used).
    fn reconstruct(digits: &[i8]) -> i128 {
        digits
            .iter()
            .enumerate()
            .map(|(i, &d)| (d as i128) << i)
            .sum()
    }

    #[test]
    fn wnaf_roundtrips_and_is_sparse() {
        for w in 2..8 {
            for k in [0u64, 1, 2, 3, 15, 16, 255, 0xdead_beef, u32::MAX as u64] {
                let digits = wnaf_digits(&FpW::from_u64(k), w);
                assert_eq!(reconstruct(&digits), k as i128, "k={k} w={w}");
                let half = 1i8 << (w - 1);
                for pair in digits.windows(w as usize) {
                    // At most one non-zero digit per w-window.
                    assert!(pair.iter().filter(|d| **d != 0).count() <= 1);
                }
                for &d in &digits {
                    assert!(d == 0 || (d % 2 != 0 && -half < d && d < half));
                }
            }
        }
    }
}
