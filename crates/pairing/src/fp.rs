//! Prime-field arithmetic `F_p` in the Montgomery domain.
//!
//! Field elements ([`Fp`]) are plain values; every operation goes through an
//! explicit [`FpCtx`] carrying the Montgomery context, so there is no hidden
//! global state and two parameter sets can coexist in one process.

use crate::{FpW, FP_LIMBS};
use mws_bigint::{random_below, Mont, Uint};
use rand::RngCore;

/// A field element, stored in Montgomery form.
///
/// Elements are only meaningful relative to the [`FpCtx`] that produced
/// them; mixing contexts is a logic error (debug assertions catch the cases
/// where the value exceeds the modulus).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fp(pub(crate) FpW);

impl core::fmt::Debug for Fp {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Fp(0x{})", self.0.to_hex())
    }
}

/// Arithmetic context for `F_p`.
#[derive(Clone, Debug)]
pub struct FpCtx {
    mont: Mont<FP_LIMBS>,
    p: FpW,
    /// `(p + 1) / 4` — the square-root exponent (valid because `p ≡ 3 mod 4`).
    sqrt_exp: FpW,
    /// Cached constant 2 (Montgomery form), hoisted out of inner loops.
    two: Fp,
    /// Cached constant 3 (Montgomery form), hoisted out of inner loops.
    three: Fp,
}

impl FpCtx {
    /// Creates a context for an odd prime `p ≡ 3 (mod 4)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is even or `p % 4 != 3` (parameter generation upholds
    /// this; the panic guards against corrupted parameters).
    pub fn new(p: &FpW) -> Self {
        assert!(p.is_odd(), "field modulus must be odd");
        assert_eq!(p.as_u64() & 3, 3, "type-A pairing needs p ≡ 3 (mod 4)");
        let mont = Mont::new(p).expect("odd modulus");
        let sqrt_exp = p.wrapping_add(&Uint::ONE).wrapping_shr(2);
        let mut ctx = Self {
            mont,
            p: *p,
            sqrt_exp,
            two: Fp(FpW::ZERO),
            three: Fp(FpW::ZERO),
        };
        ctx.two = ctx.from_u64(2);
        ctx.three = ctx.from_u64(3);
        ctx
    }

    /// The constant 2, cached at construction (hot in the Miller loops'
    /// tangent slope `(3x² + 1) / 2y`).
    pub fn two(&self) -> Fp {
        self.two
    }

    /// The constant 3, cached at construction (hot in the Miller loops'
    /// tangent slope and affine doubling).
    pub fn three(&self) -> Fp {
        self.three
    }

    /// The modulus.
    pub fn modulus(&self) -> &FpW {
        &self.p
    }

    /// The additive identity.
    pub fn zero(&self) -> Fp {
        Fp(FpW::ZERO)
    }

    /// The multiplicative identity.
    pub fn one(&self) -> Fp {
        Fp(self.mont.one_mont())
    }

    /// Imports an integer (reduced mod `p`) into the field.
    pub fn from_uint(&self, v: &FpW) -> Fp {
        Fp(self.mont.to_mont(&v.rem(&self.p)))
    }

    /// Imports a small integer.
    pub fn from_u64(&self, v: u64) -> Fp {
        self.from_uint(&FpW::from_u64(v))
    }

    /// Exports a field element as a canonical integer `< p`.
    pub fn to_uint(&self, a: &Fp) -> FpW {
        self.mont.from_mont(&a.0)
    }

    /// Canonical big-endian bytes (fixed `8·FP_LIMBS` length).
    pub fn to_bytes(&self, a: &Fp) -> Vec<u8> {
        self.to_uint(a).to_be_bytes()
    }

    /// Parses canonical bytes; values ≥ p are reduced.
    pub fn from_bytes(&self, bytes: &[u8]) -> Option<Fp> {
        FpW::from_be_bytes(bytes).ok().map(|v| self.from_uint(&v))
    }

    /// Is the element zero?
    pub fn is_zero(&self, a: &Fp) -> bool {
        a.0.is_zero()
    }

    /// `a + b`.
    pub fn add(&self, a: &Fp, b: &Fp) -> Fp {
        Fp(a.0.add_mod(&b.0, &self.p))
    }

    /// `a − b`.
    pub fn sub(&self, a: &Fp, b: &Fp) -> Fp {
        Fp(a.0.sub_mod(&b.0, &self.p))
    }

    /// `−a`.
    pub fn neg(&self, a: &Fp) -> Fp {
        if a.0.is_zero() {
            *a
        } else {
            Fp(self.p.wrapping_sub(&a.0))
        }
    }

    /// `a · b`.
    pub fn mul(&self, a: &Fp, b: &Fp) -> Fp {
        Fp(self.mont.mont_mul(&a.0, &b.0))
    }

    /// `a²`.
    pub fn sqr(&self, a: &Fp) -> Fp {
        Fp(self.mont.mont_sqr(&a.0))
    }

    /// `2a`.
    pub fn dbl(&self, a: &Fp) -> Fp {
        self.add(a, a)
    }

    /// `a^e` for a plain integer exponent.
    pub fn pow(&self, a: &Fp, e: &FpW) -> Fp {
        Fp(self.mont.pow_mont(&a.0, e))
    }

    /// Multiplicative inverse. Returns `None` for zero.
    ///
    /// Uses the extended Euclidean algorithm on the canonical representative
    /// (measurably faster than Fermat at 512 bits).
    pub fn inv(&self, a: &Fp) -> Option<Fp> {
        if a.0.is_zero() {
            return None;
        }
        let plain = self.to_uint(a);
        let inv = plain.inv_mod(&self.p).ok()?;
        Some(self.from_uint(&inv))
    }

    /// Square root via `a^((p+1)/4)` (valid for `p ≡ 3 mod 4`).
    /// Returns `None` when `a` is a non-residue.
    pub fn sqrt(&self, a: &Fp) -> Option<Fp> {
        let r = self.pow(a, &self.sqrt_exp);
        if self.sqr(&r) == *a {
            Some(r)
        } else {
            None
        }
    }

    /// Legendre symbol: is `a` a (possibly zero) square?
    pub fn is_square(&self, a: &Fp) -> bool {
        self.is_zero(a) || self.sqrt(a).is_some()
    }

    /// Canonical parity of an element (LSB of the integer form) — used for
    /// compressed point encoding.
    pub fn parity(&self, a: &Fp) -> bool {
        self.to_uint(a).is_odd()
    }

    /// Uniformly random field element.
    pub fn random<R: RngCore + ?Sized>(&self, rng: &mut R) -> Fp {
        let v = random_below(rng, &self.p);
        self.from_uint(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> FpCtx {
        // p = 2^255 − 19 is ≡ 1 mod 4; use a 3-mod-4 prime instead:
        // p = 2^127 − 1 (Mersenne, prime, ≡ 3 mod 4).
        let mut p = FpW::ZERO;
        p.set_bit(127, true);
        FpCtx::new(&p.wrapping_sub(&FpW::ONE))
    }

    #[test]
    fn field_axioms_spot_checks() {
        let f = ctx();
        let a = f.from_u64(1234567);
        let b = f.from_u64(7654321);
        let c = f.from_u64(31);
        // Commutativity / associativity / distributivity.
        assert_eq!(f.add(&a, &b), f.add(&b, &a));
        assert_eq!(f.mul(&a, &b), f.mul(&b, &a));
        assert_eq!(
            f.mul(&f.add(&a, &b), &c),
            f.add(&f.mul(&a, &c), &f.mul(&b, &c))
        );
        // Identities.
        assert_eq!(f.add(&a, &f.zero()), a);
        assert_eq!(f.mul(&a, &f.one()), a);
        assert_eq!(f.mul(&a, &f.zero()), f.zero());
        // Inverses.
        assert_eq!(f.add(&a, &f.neg(&a)), f.zero());
        assert_eq!(f.mul(&a, &f.inv(&a).unwrap()), f.one());
    }

    #[test]
    fn cached_constants_match_from_u64() {
        let f = ctx();
        assert_eq!(f.two(), f.from_u64(2));
        assert_eq!(f.three(), f.from_u64(3));
        assert_eq!(f.two(), f.add(&f.one(), &f.one()));
        assert_eq!(f.three(), f.add(&f.two(), &f.one()));
    }

    #[test]
    fn neg_zero_is_zero() {
        let f = ctx();
        assert_eq!(f.neg(&f.zero()), f.zero());
        assert!(f.inv(&f.zero()).is_none());
    }

    #[test]
    fn sqrt_roundtrip() {
        let f = ctx();
        for v in [4u64, 9, 16, 1234567890] {
            let a = f.from_u64(v);
            let s = f.sqr(&a);
            let r = f.sqrt(&s).expect("square has a root");
            assert!(r == a || r == f.neg(&a));
        }
    }

    #[test]
    fn sqrt_rejects_nonresidue() {
        let f = ctx();
        // Exactly one of (a, -a) can fail to be... actually find a known
        // non-residue: try small values until one fails.
        let mut found = false;
        for v in 2u64..50 {
            let a = f.from_u64(v);
            if f.sqrt(&a).is_none() {
                found = true;
                assert!(!f.is_square(&a));
                break;
            }
        }
        assert!(found, "some small non-residue exists");
    }

    #[test]
    fn bytes_roundtrip() {
        let f = ctx();
        let a = f.from_u64(0xdead_beef);
        let bytes = f.to_bytes(&a);
        assert_eq!(bytes.len(), 64);
        assert_eq!(f.from_bytes(&bytes).unwrap(), a);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let f = ctx();
        let a = f.from_u64(3);
        let mut acc = f.one();
        for _ in 0..13 {
            acc = f.mul(&acc, &a);
        }
        assert_eq!(f.pow(&a, &FpW::from_u64(13)), acc);
    }

    #[test]
    #[should_panic(expected = "p ≡ 3 (mod 4)")]
    fn rejects_1_mod_4_prime() {
        // 13 ≡ 1 mod 4.
        let _ = FpCtx::new(&FpW::from_u64(13));
    }
}
