//! Hash-to-point — the `MapToPoint` step of Boneh–Franklin IBE.
//!
//! The protocol derives the per-message public point from the attribute
//! string: `I = MapToPoint(SHA1(A ‖ Nonce))` (paper §V.D writes the hash
//! explicitly; the curve mapping was supplied by PBC). This implementation
//! uses try-and-increment: expand `msg ‖ counter` to a candidate
//! x-coordinate, solve `y² = x³ + x`, and clear the cofactor so the result
//! lands in the order-`q` subgroup.
//!
//! Determinism matters: every party hashing the same attribute string must
//! get the same point, so the mapping has no randomness beyond the input.

use crate::curve::Point;
use crate::params::PairingCtx;
use crate::FpW;
use mws_crypto::{kdf, Sha256};

/// Deterministically maps an arbitrary byte string to a point of the
/// order-`q` subgroup (never the point at infinity).
///
/// The candidate x value is a full field-width KDF expansion reduced mod `p`;
/// with `p` at the type-A sizes the reduction bias is ≤ 2^(−(512−pbits)) and
/// irrelevant below 512-bit `p` (documented trade-off — a production
/// implementation at exactly 512-bit `p` would expand wider).
pub fn hash_to_point(ctx: &PairingCtx, msg: &[u8]) -> Point {
    let f = ctx.field();
    let mut counter = 0u32;
    loop {
        // Domain-separated expansion of msg ‖ counter to field width.
        let mut input = Vec::with_capacity(msg.len() + 4);
        input.extend_from_slice(msg);
        input.extend_from_slice(&counter.to_be_bytes());
        let okm = kdf::<Sha256>(&input, "mws-map-to-point", 8 * crate::FP_LIMBS);
        let xi = FpW::from_be_bytes(&okm).expect("exact width");
        let x = f.from_uint(&xi);
        let rhs = f.add(&f.mul(&f.sqr(&x), &x), &x);
        if let Some(y) = f.sqrt(&rhs) {
            // Canonical sign: take the even-parity root so the map is a
            // function of the input alone.
            let y = if f.parity(&y) { f.neg(&y) } else { y };
            let candidate = Point::Affine { x, y };
            // Cofactor multiplication (wNAF) puts the result in the order-q
            // subgroup by construction — no explicit membership check needed
            // (p + 1 = q·h, so h·R has order dividing q).
            let cleared = f.point_mul(&candidate, ctx.cofactor());
            if !cleared.is_infinity() {
                return cleared;
            }
        }
        counter = counter.checked_add(1).expect("map-to-point exhausted");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SecurityLevel;

    fn ctx() -> PairingCtx {
        PairingCtx::named(SecurityLevel::Toy)
    }

    #[test]
    fn deterministic() {
        let c = ctx();
        let a = hash_to_point(&c, b"ELECTRIC-APT-SV-CA|17");
        let b = hash_to_point(&c, b"ELECTRIC-APT-SV-CA|17");
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_inputs_distinct_points() {
        let c = ctx();
        let a = hash_to_point(&c, b"attr-1");
        let b = hash_to_point(&c, b"attr-2");
        assert_ne!(a, b);
    }

    #[test]
    fn output_in_subgroup() {
        let c = ctx();
        for msg in [&b"x"[..], b"", b"WATER-APT-SV-CA|nonce"] {
            let p = hash_to_point(&c, msg);
            assert!(c.field().is_on_curve(&p));
            assert!(!p.is_infinity());
            assert!(c.mul(&p, c.group_order()).is_infinity(), "order divides q");
        }
    }

    #[test]
    fn empty_input_works() {
        let c = ctx();
        let p = hash_to_point(&c, b"");
        assert!(!p.is_infinity());
    }
}
