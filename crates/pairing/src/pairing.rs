//! The modified Tate pairing `ê : G₁ × G₁ → μ_q ⊂ F_p²*`.
//!
//! `ê(P, Q) = f_{q,P}(φ(Q))^{(p²−1)/q}` where `φ(x, y) = (−x, i·y)` is the
//! distortion map. Because the embedding degree is 2 and `φ(Q)` has its
//! x-coordinate in the base field, every vertical-line evaluation lands in
//! `F_p*` and is annihilated by the final exponentiation
//! (`(p²−1)/q = (p−1)·h` and `|F_p*| = p−1`), so the Miller loop uses the
//! standard BKLS denominator elimination.
//!
//! The default [`TatePairing::pairing`] runs the inversion-free projective
//! Miller loop; the affine loop (one field inversion per step) is kept as
//! [`TatePairing::pairing_affine`], the auditable reference and D5 ablation
//! partner — both produce bit-identical values (experiment E3 measures the
//! gap). For a fixed first argument, [`crate::prepared::PreparedPoint`]
//! caches the affine loop's line coefficients so repeat pairings skip all
//! point arithmetic and inversions.

use crate::curve::Point;
use crate::fp::{Fp, FpCtx};
use crate::fp2::Fp2;
use crate::FpW;

/// Pairing engine: the field context plus the subgroup order `q` and
/// cofactor `h` (`p + 1 = q·h`).
#[derive(Clone, Debug)]
pub struct TatePairing {
    /// Subgroup order (prime).
    pub q: FpW,
    /// Cofactor `h = (p+1)/q`.
    pub h: FpW,
}

impl TatePairing {
    /// Evaluates the modified Tate pairing of two points of `E(F_p)[q]`.
    ///
    /// Returns 1 (the identity of `μ_q`) when either input is the point at
    /// infinity. Runs the inversion-free projective Miller loop (the default
    /// since the D5 revision; [`Self::pairing_affine`] is the reference).
    pub fn pairing(&self, f: &FpCtx, p: &Point, q_pt: &Point) -> Fp2 {
        self.pairing_projective(f, p, q_pt)
    }

    /// Evaluates the pairing with the affine Miller loop — one field
    /// inversion per step. The pre-optimization reference path (D5 ablation),
    /// bit-identical to [`Self::pairing`].
    pub fn pairing_affine(&self, f: &FpCtx, p: &Point, q_pt: &Point) -> Fp2 {
        let (xp, yp) = match p {
            Point::Infinity => return f.fp2_one(),
            Point::Affine { x, y } => (*x, *y),
        };
        let (xq, yq) = match q_pt {
            Point::Infinity => return f.fp2_one(),
            Point::Affine { x, y } => (*x, *y),
        };
        // Distortion image φ(Q) = (−xq, i·yq); only the components are
        // needed by the line evaluations.
        let mxq = f.neg(&xq);
        let val = self.miller_loop(f, &xp, &yp, &mxq, &yq);
        self.final_exponentiation(f, &val)
    }

    /// Miller loop computing `f_{q,P}(φ(Q))` with denominator elimination.
    ///
    /// Line through `(x1, y1)` with slope `λ`, evaluated at
    /// `φ(Q) = (mxq, i·yq)`:
    /// `l = i·yq − y1 − λ(mxq − x1) = [λ(x1 − mxq) − y1] + yq·i`.
    fn miller_loop(&self, f: &FpCtx, xp: &Fp, yp: &Fp, mxq: &Fp, yq: &Fp) -> Fp2 {
        let line = |lambda: &Fp, x1: &Fp, y1: &Fp| -> Fp2 {
            let c0 = f.sub(&f.mul(lambda, &f.sub(x1, mxq)), y1);
            f.fp2(c0, *yq)
        };

        let mut acc = f.fp2_one();
        // T = (xt, yt); None encodes the point at infinity.
        let mut t: Option<(Fp, Fp)> = Some((*xp, *yp));
        let bits = self.q.bits();
        for i in (0..bits - 1).rev() {
            acc = f.fp2_sqr(&acc);
            if let Some((xt, yt)) = t {
                if f.is_zero(&yt) {
                    // Vertical tangent: line ∈ F_p*, eliminated. T ← O.
                    // (Unreachable for odd-order P; kept for robustness.)
                    t = None;
                } else {
                    // Tangent: λ = (3x² + 1) / 2y  (curve coefficient a = 1).
                    let num = f.add(&f.mul(&f.three(), &f.sqr(&xt)), &f.one());
                    let lambda = f.mul(&num, &f.inv(&f.dbl(&yt)).expect("y ≠ 0"));
                    acc = f.fp2_mul(&acc, &line(&lambda, &xt, &yt));
                    // T ← 2T (affine chord-tangent).
                    let x3 = f.sub(&f.sub(&f.sqr(&lambda), &xt), &xt);
                    let y3 = f.sub(&f.mul(&lambda, &f.sub(&xt, &x3)), &yt);
                    t = Some((x3, y3));
                }
            }
            if self.q.bit(i) {
                if let Some((xt, yt)) = t {
                    if xt == *xp {
                        if yt == *yp {
                            // T == P: the "chord" is the tangent at P.
                            let num = f.add(&f.mul(&f.three(), &f.sqr(&xt)), &f.one());
                            let lambda = f.mul(&num, &f.inv(&f.dbl(&yt)).expect("y ≠ 0"));
                            acc = f.fp2_mul(&acc, &line(&lambda, &xt, &yt));
                            let x3 = f.sub(&f.sub(&f.sqr(&lambda), &xt), &xt);
                            let y3 = f.sub(&f.mul(&lambda, &f.sub(&xt, &x3)), &yt);
                            t = Some((x3, y3));
                        } else {
                            // T == −P: vertical chord, eliminated. T ← O.
                            // (This is the expected final addition step.)
                            t = None;
                        }
                    } else {
                        let lambda =
                            f.mul(&f.sub(yp, &yt), &f.inv(&f.sub(xp, &xt)).expect("xp ≠ xt"));
                        acc = f.fp2_mul(&acc, &line(&lambda, &xt, &yt));
                        let x3 = f.sub(&f.sub(&f.sqr(&lambda), &xt), xp);
                        let y3 = f.sub(&f.mul(&lambda, &f.sub(&xt, &x3)), &yt);
                        t = Some((x3, y3));
                    }
                } else {
                    // T == O: adding P restarts from P. (Unreachable for
                    // exact-order-q inputs; kept for robustness.)
                    t = Some((*xp, *yp));
                }
            }
        }
        acc
    }

    /// Evaluates the pairing with a projective (inversion-free) Miller loop —
    /// what [`Self::pairing`] delegates to.
    ///
    /// `T` is tracked in Jacobian coordinates; line values are scaled by the
    /// nonzero `F_p` factors `2Y·Z³` (tangent) / `(x_P − x_T)·Z³` (chord),
    /// which the final exponentiation annihilates, so no per-step inversion
    /// is needed. Produces bit-identical results to the affine loop.
    pub fn pairing_projective(&self, f: &FpCtx, p: &Point, q_pt: &Point) -> Fp2 {
        let (xp, yp) = match p {
            Point::Infinity => return f.fp2_one(),
            Point::Affine { x, y } => (*x, *y),
        };
        let (xq, yq) = match q_pt {
            Point::Infinity => return f.fp2_one(),
            Point::Affine { x, y } => (*x, *y),
        };
        let mxq = f.neg(&xq);
        let val = self.miller_loop_projective(f, &xp, &yp, &mxq, &yq);
        self.final_exponentiation(f, &val)
    }

    /// Projective Miller loop; see [`Self::pairing_projective`].
    fn miller_loop_projective(&self, f: &FpCtx, xp: &Fp, yp: &Fp, mxq: &Fp, yq: &Fp) -> Fp2 {
        use crate::curve::Jacobian;
        let mut acc = f.fp2_one();
        let mut t = Jacobian {
            x: *xp,
            y: *yp,
            z: f.one(),
        };
        let bits = self.q.bits();
        for i in (0..bits - 1).rev() {
            acc = f.fp2_sqr(&acc);
            if !f.jac_is_infinity(&t) {
                if f.is_zero(&t.y) {
                    // Vertical tangent (unreachable for odd-order P).
                    t = f.jac_double(&t);
                } else {
                    // Tangent line scaled by 2Y·Z³ ∈ F_p*:
                    //   l̃ = [−2Y² − (3X² + Z⁴)(mxq·Z² − X)] + (2Y·Z³·yq)·i
                    let zz = f.sqr(&t.z);
                    let z4 = f.sqr(&zz);
                    let xx3 = f.add(&f.dbl(&f.sqr(&t.x)), &f.sqr(&t.x)); // 3X²
                    let m = f.add(&xx3, &z4); // 3X² + Z⁴
                    let c0 = f.sub(
                        &f.neg(&f.dbl(&f.sqr(&t.y))),
                        &f.mul(&m, &f.sub(&f.mul(mxq, &zz), &t.x)),
                    );
                    let c1 = f.mul(&f.dbl(&f.mul(&t.y, &f.mul(&zz, &t.z))), yq);
                    acc = f.fp2_mul(&acc, &f.fp2(c0, c1));
                    t = f.jac_double(&t);
                }
            }
            if self.q.bit(i) {
                if f.jac_is_infinity(&t) {
                    // T == O: adding P restarts from P (unreachable for
                    // exact-order inputs).
                    t = Jacobian {
                        x: *xp,
                        y: *yp,
                        z: f.one(),
                    };
                } else {
                    let zz = f.sqr(&t.z);
                    let z3 = f.mul(&zz, &t.z);
                    // x_T == x_P ⟺ X == xp·Z².
                    if t.x == f.mul(xp, &zz) {
                        if t.y == f.mul(yp, &z3) {
                            // T == P: tangent case (first iteration of a q
                            // with two leading 1 bits). Reuse the tangent
                            // line formula.
                            let z4 = f.sqr(&zz);
                            let xx3 = f.add(&f.dbl(&f.sqr(&t.x)), &f.sqr(&t.x));
                            let m = f.add(&xx3, &z4);
                            let c0 = f.sub(
                                &f.neg(&f.dbl(&f.sqr(&t.y))),
                                &f.mul(&m, &f.sub(&f.mul(mxq, &zz), &t.x)),
                            );
                            let c1 = f.mul(&f.dbl(&f.mul(&t.y, &z3)), yq);
                            acc = f.fp2_mul(&acc, &f.fp2(c0, c1));
                            t = f.jac_double(&t);
                        } else {
                            // T == −P: vertical chord, eliminated; T ← O.
                            t = Jacobian {
                                x: f.one(),
                                y: f.one(),
                                z: f.zero(),
                            };
                        }
                    } else {
                        // Chord through T and P scaled by (x_P − x_T)·Z³:
                        //   l̃ = [(xp·Z³ − X·Z)(−yp) − (yp·Z³ − Y)(mxq − xp)]
                        //        + ((xp·Z³ − X·Z)·yq)·i
                        let a = f.sub(&f.mul(xp, &z3), &f.mul(&t.x, &t.z)); // (xp−x1)Z³/... = xp·Z³ − X·Z
                        let b = f.sub(&f.mul(yp, &z3), &t.y); // (yp−y1)·Z³
                        let c0 = f.sub(&f.mul(&a, &f.neg(yp)), &f.mul(&b, &f.sub(mxq, xp)));
                        let c1 = f.mul(&a, yq);
                        acc = f.fp2_mul(&acc, &f.fp2(c0, c1));
                        let p_jac = Jacobian {
                            x: *xp,
                            y: *yp,
                            z: f.one(),
                        };
                        t = f.jac_add(&t, &p_jac);
                    }
                }
            }
        }
        acc
    }

    /// Final exponentiation `z^{(p²−1)/q} = (z^{p−1})^h` with
    /// `z^{p−1} = z̄ · z^{−1}` (Frobenius is conjugation in `F_p²`).
    ///
    /// The easy part leaves a norm-1 value (`N(z)^{p−1} = 1` by Fermat), so
    /// the hard `^h` power runs the conjugate-inversion wNAF ladder.
    pub(crate) fn final_exponentiation(&self, f: &FpCtx, z: &Fp2) -> Fp2 {
        let zinv = f
            .fp2_inv(z)
            .expect("Miller value is nonzero for valid inputs");
        let easy = f.fp2_mul(&f.fp2_conj(z), &zinv);
        f.fp2_pow_unitary(&easy, &self.h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{PairingCtx, SecurityLevel};
    use mws_crypto::HmacDrbg;

    fn ctx() -> PairingCtx {
        PairingCtx::named(SecurityLevel::Toy)
    }

    #[test]
    fn pairing_of_infinity_is_one() {
        let c = ctx();
        let g = c.generator();
        let one = c.field().fp2_one();
        assert_eq!(c.pairing(&Point::Infinity, &g), one);
        assert_eq!(c.pairing(&g, &Point::Infinity), one);
    }

    #[test]
    fn pairing_nondegenerate() {
        let c = ctx();
        let g = c.generator();
        let e = c.pairing(&g, &g);
        assert_ne!(e, c.field().fp2_one());
        // The value has order dividing q.
        assert_eq!(c.field().fp2_pow(&e, c.group_order()), c.field().fp2_one());
    }

    #[test]
    fn pairing_symmetric() {
        let c = ctx();
        let mut rng = HmacDrbg::from_u64(1);
        let g = c.generator();
        let a = c.random_scalar(&mut rng);
        let b = c.random_scalar(&mut rng);
        let pa = c.mul(&g, &a);
        let pb = c.mul(&g, &b);
        assert_eq!(c.pairing(&pa, &pb), c.pairing(&pb, &pa));
    }

    #[test]
    fn pairing_bilinear_left() {
        let c = ctx();
        let mut rng = HmacDrbg::from_u64(2);
        let g = c.generator();
        let a = c.random_scalar(&mut rng);
        // e(aP, P) == e(P, P)^a
        let lhs = c.pairing(&c.mul(&g, &a), &g);
        let rhs = c.field().fp2_pow(&c.pairing(&g, &g), &a);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn pairing_bilinear_right() {
        let c = ctx();
        let mut rng = HmacDrbg::from_u64(3);
        let g = c.generator();
        let b = c.random_scalar(&mut rng);
        let lhs = c.pairing(&g, &c.mul(&g, &b));
        let rhs = c.field().fp2_pow(&c.pairing(&g, &g), &b);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn pairing_bf_identity() {
        // The identity the whole protocol rests on: ê(rP, sI) == ê(sP, rI).
        let c = ctx();
        let mut rng = HmacDrbg::from_u64(4);
        let g = c.generator();
        let r = c.random_scalar(&mut rng);
        let s = c.random_scalar(&mut rng);
        let i_pt = c.mul(
            &c.hash_to_point(b"ELECTRIC-APT-SV-CA|nonce42"),
            &c.random_scalar(&mut rng),
        );
        let lhs = c.pairing(&c.mul(&g, &r), &c.mul(&i_pt, &s));
        let rhs = c.pairing(&c.mul(&g, &s), &c.mul(&i_pt, &r));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn projective_matches_affine() {
        let c = ctx();
        let mut rng = HmacDrbg::from_u64(6);
        let g = c.generator();
        for _ in 0..5 {
            let a = c.random_scalar(&mut rng);
            let b = c.random_scalar(&mut rng);
            let pa = c.mul(&g, &a);
            let pb = c.mul(&g, &b);
            // Default (projective) vs the affine reference, bit-identical.
            assert_eq!(c.pairing(&pa, &pb), c.pairing_affine(&pa, &pb));
            assert_eq!(c.pairing(&pa, &pb), c.pairing_projective(&pa, &pb));
        }
        // Including identity inputs and hashed points.
        assert_eq!(
            c.pairing_projective(&Point::Infinity, &g),
            c.field().fp2_one()
        );
        assert_eq!(c.pairing_affine(&Point::Infinity, &g), c.field().fp2_one());
        let h = c.hash_to_point(b"some attribute");
        assert_eq!(c.pairing(&h, &g), c.pairing_affine(&h, &g));
        assert_eq!(c.pairing(&g, &h), c.pairing_affine(&g, &h));
    }

    #[test]
    fn pairing_additive_in_first_argument() {
        let c = ctx();
        let mut rng = HmacDrbg::from_u64(5);
        let g = c.generator();
        let a = c.random_scalar(&mut rng);
        let b = c.random_scalar(&mut rng);
        let pa = c.mul(&g, &a);
        let pb = c.mul(&g, &b);
        let sum = c.add(&pa, &pb);
        // e(aP + bP, Q) == e(aP, Q) · e(bP, Q)
        let q = c.mul(&g, &c.random_scalar(&mut rng));
        let lhs = c.pairing(&sum, &q);
        let rhs = c.field().fp2_mul(&c.pairing(&pa, &q), &c.pairing(&pb, &q));
        assert_eq!(lhs, rhs);
    }
}
