//! Pairing-friendly supersingular elliptic curve — the substrate the paper's
//! prototype got from Ben Lynn's PBC library ("type A" curves).
//!
//! The curve is `E : y² = x³ + x` over a prime field `F_p` with
//! `p ≡ 3 (mod 4)` and `p + 1 = q·h` for a prime group order `q`. `E` is
//! supersingular with `#E(F_p) = p + 1`, embedding degree 2, and admits the
//! distortion map `φ(x, y) = (−x, i·y)` into `E(F_p²)`. The *modified Tate
//! pairing* `ê(P, Q) = f_{q,P}(φ(Q))^{(p²−1)/q}` is then a symmetric
//! non-degenerate bilinear map `G₁ × G₁ → μ_q ⊂ F_p²*` — exactly the gadget
//! Boneh–Franklin IBE needs (`ê(rP, sI) = ê(sP, rI)`).
//!
//! *(Historical note: Boneh–Franklin's paper text uses the sibling curve
//! `y² = x³ + 1`, `p ≡ 2 (mod 3)`; PBC's type A — what the prototype linked —
//! is the curve implemented here. The protocol is agnostic to the choice.)*
//!
//! Layout:
//!
//! * [`fp`] — prime-field arithmetic (Montgomery domain over [`FpW`]).
//! * [`fp2`] — the quadratic extension `F_p[i]/(i²+1)`.
//! * [`curve`] — affine/Jacobian point arithmetic on `E(F_p)`.
//! * [`pairing`] — Miller's algorithm and the final exponentiation.
//! * [`prepared`] — cached Miller tapes for fixed first arguments.
//! * [`maptopoint`] — hash-to-point (the `MapToPoint` of BF-IBE).
//! * [`params`] — parameter generation and deterministic named parameter sets.
//!
//! # Example
//!
//! ```
//! use mws_pairing::{PairingCtx, SecurityLevel};
//! use mws_crypto::HmacDrbg;
//!
//! let ctx = PairingCtx::named(SecurityLevel::Toy);
//! let mut rng = HmacDrbg::from_u64(7);
//! let a = ctx.random_scalar(&mut rng);
//! let b = ctx.random_scalar(&mut rng);
//! let g = ctx.generator();
//! // Bilinearity: e(aP, bP) == e(bP, aP) == e(P, P)^(ab)
//! let lhs = ctx.pairing(&ctx.mul(&g, &a), &ctx.mul(&g, &b));
//! let rhs = ctx.pairing(&ctx.mul(&g, &b), &ctx.mul(&g, &a));
//! assert_eq!(lhs, rhs);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod curve;
pub mod fp;
pub mod fp2;
pub mod maptopoint;
mod naf;
pub mod pairing;
pub mod params;
pub mod prepared;

pub use curve::{CombTable, Point};
pub use fp::{Fp, FpCtx};
pub use fp2::Fp2;
pub use params::{PairingCtx, PairingParams, SecurityLevel};
pub use prepared::PreparedPoint;

use mws_bigint::Uint;

/// Limb width of the base field (8 × 64 = up to 512-bit primes).
pub const FP_LIMBS: usize = 8;

/// The integer type backing field elements and scalars.
pub type FpW = Uint<FP_LIMBS>;

/// Errors from the pairing layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairingError {
    /// A point failed curve-membership or subgroup checks.
    InvalidPoint,
    /// Serialized data was malformed.
    Decode,
    /// Parameter generation failed (sizes out of range).
    BadParameters,
}

impl core::fmt::Display for PairingError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PairingError::InvalidPoint => write!(f, "point not on curve / wrong subgroup"),
            PairingError::Decode => write!(f, "malformed encoding"),
            PairingError::BadParameters => write!(f, "unsupported pairing parameters"),
        }
    }
}

impl std::error::Error for PairingError {}
