//! Prepared pairings: one-time Miller-loop precomputation for a fixed first
//! argument.
//!
//! Every pairing in the MWS protocol has one long-lived argument — `P_pub`
//! on encrypt (after swapping via symmetry), `d_ID` on decrypt, the
//! generator in signature verification. The Miller loop's point arithmetic
//! (and, in the affine formulation, its per-step inversions) depends only on
//! that first argument: the second point enters through line *evaluations*
//! alone. [`PreparedPoint`] therefore runs the affine loop once, caching per
//! step the two coefficients that summarize each line; replaying the tape
//! against a concrete `Q` costs one `F_p` multiplication plus one addition
//! per line and one `F_p²` squaring per doubling — no point operations, no
//! inversions.
//!
//! A line through `(x₁, y₁)` with slope `λ`, evaluated at the distortion
//! image `φ(Q) = (−x_Q, i·y_Q)`, is
//!
//! ```text
//! l = [λ(x₁ + x_Q) − y₁] + y_Q·i = [(λ·x₁ − y₁) + λ·x_Q] + y_Q·i
//! ```
//!
//! so caching `a = λ·x₁ − y₁` and `b = λ` suffices: `c₀ = a + b·x_Q`, and
//! `c₁ = y_Q` is constant across the whole evaluation. Because `F_p`
//! elements carry a canonical reduced representation, the regrouping is
//! bit-identical to the affine loop's `λ(x₁ − (−x_Q)) − y₁`, and the
//! replayed pairing equals [`TatePairing::pairing`] bit for bit.

use crate::curve::Point;
use crate::fp::{Fp, FpCtx};
use crate::fp2::Fp2;
use crate::pairing::TatePairing;

/// One step of the cached Miller tape.
#[derive(Clone, Copy, Debug)]
enum MillerOp {
    /// `acc ← acc²` (a doubling step of the loop).
    Square,
    /// `acc ← acc · [(a + b·x_Q) + y_Q·i]` — an evaluated line with cached
    /// `a = λ·x_T − y_T` and `b = λ`.
    Line {
        /// Cached `λ·x_T − y_T`.
        a: Fp,
        /// Cached slope `λ`.
        b: Fp,
    },
}

/// A point with its Miller loop pre-executed, for repeated pairings with a
/// fixed first argument.
///
/// Build once via [`TatePairing::prepare`] (or
/// [`crate::PairingCtx::prepare`]), evaluate many times via
/// [`TatePairing::pairing_prepared`]. The tape length is `~2·bits(q)` small
/// entries; preparing costs one full affine Miller loop.
#[derive(Clone, Debug)]
pub struct PreparedPoint {
    point: Point,
    ops: Vec<MillerOp>,
}

impl PreparedPoint {
    /// The underlying point.
    pub fn point(&self) -> &Point {
        &self.point
    }
}

impl TatePairing {
    /// Runs the Miller loop for `p` once, caching the per-step line
    /// coefficients.
    ///
    /// Mirrors the affine loop of [`Self::pairing_affine`] exactly (same
    /// branch structure, same operation order) so that replaying the tape is
    /// bit-identical to computing the pairing from scratch.
    pub fn prepare(&self, f: &FpCtx, p: &Point) -> PreparedPoint {
        let (xp, yp) = match p {
            Point::Infinity => {
                return PreparedPoint {
                    point: *p,
                    ops: Vec::new(),
                }
            }
            Point::Affine { x, y } => (*x, *y),
        };
        let bits = self.q.bits();
        let mut ops = Vec::with_capacity(2 * bits as usize);
        let line = |lambda: &Fp, x1: &Fp, y1: &Fp| MillerOp::Line {
            a: f.sub(&f.mul(lambda, x1), y1),
            b: *lambda,
        };
        // T = (xt, yt); None encodes the point at infinity.
        let mut t: Option<(Fp, Fp)> = Some((xp, yp));
        for i in (0..bits - 1).rev() {
            ops.push(MillerOp::Square);
            if let Some((xt, yt)) = t {
                if f.is_zero(&yt) {
                    // Vertical tangent: eliminated line, T ← O.
                    t = None;
                } else {
                    // Tangent: λ = (3x² + 1) / 2y.
                    let num = f.add(&f.mul(&f.three(), &f.sqr(&xt)), &f.one());
                    let lambda = f.mul(&num, &f.inv(&f.dbl(&yt)).expect("y ≠ 0"));
                    ops.push(line(&lambda, &xt, &yt));
                    let x3 = f.sub(&f.sub(&f.sqr(&lambda), &xt), &xt);
                    let y3 = f.sub(&f.mul(&lambda, &f.sub(&xt, &x3)), &yt);
                    t = Some((x3, y3));
                }
            }
            if self.q.bit(i) {
                if let Some((xt, yt)) = t {
                    if xt == xp {
                        if yt == yp {
                            // T == P: the "chord" is the tangent at P.
                            let num = f.add(&f.mul(&f.three(), &f.sqr(&xt)), &f.one());
                            let lambda = f.mul(&num, &f.inv(&f.dbl(&yt)).expect("y ≠ 0"));
                            ops.push(line(&lambda, &xt, &yt));
                            let x3 = f.sub(&f.sub(&f.sqr(&lambda), &xt), &xt);
                            let y3 = f.sub(&f.mul(&lambda, &f.sub(&xt, &x3)), &yt);
                            t = Some((x3, y3));
                        } else {
                            // T == −P: vertical chord, eliminated; T ← O.
                            t = None;
                        }
                    } else {
                        let lambda =
                            f.mul(&f.sub(&yp, &yt), &f.inv(&f.sub(&xp, &xt)).expect("xp ≠ xt"));
                        ops.push(line(&lambda, &xt, &yt));
                        let x3 = f.sub(&f.sub(&f.sqr(&lambda), &xt), &xp);
                        let y3 = f.sub(&f.mul(&lambda, &f.sub(&xt, &x3)), &yt);
                        t = Some((x3, y3));
                    }
                } else {
                    // T == O: adding P restarts from P.
                    t = Some((xp, yp));
                }
            }
        }
        PreparedPoint { point: *p, ops }
    }

    /// Evaluates `ê(P, Q)` for a prepared `P` — bit-identical to
    /// [`Self::pairing`]`(f, P.point(), Q)` at a fraction of the cost.
    pub fn pairing_prepared(&self, f: &FpCtx, p: &PreparedPoint, q_pt: &Point) -> Fp2 {
        if p.point.is_infinity() {
            return f.fp2_one();
        }
        let (xq, yq) = match q_pt {
            Point::Infinity => return f.fp2_one(),
            Point::Affine { x, y } => (*x, *y),
        };
        let mut acc = f.fp2_one();
        for op in &p.ops {
            match op {
                MillerOp::Square => acc = f.fp2_sqr(&acc),
                MillerOp::Line { a, b } => {
                    let c0 = f.add(a, &f.mul(b, &xq));
                    acc = f.fp2_mul(&acc, &f.fp2(c0, yq));
                }
            }
        }
        self.final_exponentiation(f, &acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{PairingCtx, SecurityLevel};
    use mws_crypto::HmacDrbg;

    /// Prepared evaluation must agree bit-for-bit with the unprepared
    /// pairing for random, hashed, and identity inputs.
    fn cross_check(level: SecurityLevel) {
        let c = PairingCtx::named(level);
        let mut rng = HmacDrbg::from_u64(0x505245);
        let g = c.generator();
        let prepared_g = c.prepare(&g);
        // Fixed = generator, varying second argument.
        for _ in 0..3 {
            let k = c.random_scalar(&mut rng);
            let q_pt = c.mul(&g, &k);
            assert_eq!(c.pairing_with(&prepared_g, &q_pt), c.pairing(&g, &q_pt));
            assert_eq!(
                c.pairing_with(&prepared_g, &q_pt),
                c.pairing_affine(&g, &q_pt)
            );
        }
        // Fixed = a hashed point (exercises arbitrary subgroup elements).
        let h = c.hash_to_point(b"prepared/cross-check");
        let prepared_h = c.prepare(&h);
        assert_eq!(c.pairing_with(&prepared_h, &g), c.pairing(&h, &g));
        // Symmetry swap: e(Q, P_fixed) computed as e(P_fixed, Q).
        assert_eq!(c.pairing_with(&prepared_h, &g), c.pairing(&g, &h));
        // Identity inputs.
        assert_eq!(
            c.pairing_with(&prepared_g, &Point::Infinity),
            c.field().fp2_one()
        );
        let prepared_inf = c.prepare(&Point::Infinity);
        assert_eq!(c.pairing_with(&prepared_inf, &g), c.field().fp2_one());
    }

    #[test]
    fn prepared_matches_unprepared_toy() {
        cross_check(SecurityLevel::Toy);
    }

    #[test]
    fn prepared_matches_unprepared_light() {
        cross_check(SecurityLevel::Light);
    }

    #[test]
    fn cached_generator_tape_is_shared() {
        let c = PairingCtx::named(SecurityLevel::Toy);
        let g = c.generator();
        let e1 = c.pairing_with(c.prepared_generator(), &g);
        assert_eq!(e1, c.pairing(&g, &g));
        // Second call hits the cache and still agrees.
        let e2 = c.pairing_with(c.prepared_generator(), &g);
        assert_eq!(e1, e2);
    }
}
