//! Pairing parameter sets (PBC "type A" analogue) and the user-facing
//! [`PairingCtx`].

use crate::curve::{CombTable, Point};
use crate::fp::FpCtx;
use crate::fp2::Fp2;
use crate::pairing::TatePairing;
use crate::prepared::PreparedPoint;
use crate::{FpW, PairingError};
use mws_bigint::{gen_prime, is_prime, random_below, random_nonzero_below, MillerRabinRounds};
use mws_crypto::HmacDrbg;
use rand::RngCore;
use std::sync::{Arc, OnceLock};

/// Raw curve parameters: `p + 1 = q·h`, `E : y² = x³ + x` over `F_p`,
/// generator of the order-`q` subgroup.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PairingParams {
    /// Field prime, `≡ 3 (mod 4)`.
    pub p: FpW,
    /// Prime subgroup order.
    pub q: FpW,
    /// Cofactor `(p+1)/q`.
    pub h: FpW,
    /// Compressed encoding of the subgroup generator.
    pub generator: Vec<u8>,
}

/// Named parameter sizes.
///
/// All sets are deterministic (derived from a fixed seed via HMAC-DRBG) so
/// every test and benchmark runs on identical curves.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SecurityLevel {
    /// 80-bit `q`, 160-bit `p` — unit tests; *no* real security.
    Toy,
    /// 128-bit `q`, 256-bit `p` — integration tests.
    Light,
    /// 160-bit `q`, 512-bit `p` — the classic PBC type-A demo size;
    /// benchmarks. (Production deployments would want ≥1024-bit `p`,
    /// beyond this build's fixed 512-bit field width.)
    Standard,
}

impl SecurityLevel {
    /// `(q bits, p bits, seed)` for deterministic generation.
    fn shape(self) -> (u32, u32, u64) {
        match self {
            SecurityLevel::Toy => (80, 160, 0x544f59),
            SecurityLevel::Light => (128, 256, 0x4c49474854),
            SecurityLevel::Standard => (160, 512, 0x535444),
        }
    }
}

/// A ready-to-use pairing context: field, curve, subgroup and pairing engine.
///
/// Carries lazily built, `Arc`-shared generator precomputations (a
/// fixed-base comb table and a prepared Miller tape), so cloned contexts —
/// including every clone handed out by [`PairingCtx::named`] — reuse one
/// copy per process.
#[derive(Clone, Debug)]
pub struct PairingCtx {
    fp: FpCtx,
    tate: TatePairing,
    generator: Point,
    params: PairingParams,
    gen_comb: Arc<OnceLock<CombTable>>,
    gen_prepared: Arc<OnceLock<PreparedPoint>>,
}

impl PairingCtx {
    /// Builds a context from raw parameters, validating their consistency.
    pub fn from_params(params: &PairingParams) -> Result<Self, PairingError> {
        // p ≡ 3 (mod 4), q·h = p + 1.
        if params.p.is_even() || params.p.as_u64() & 3 != 3 {
            return Err(PairingError::BadParameters);
        }
        let (qh, overflow) = {
            let (lo, hi) = params.q.widening_mul(&params.h);
            (lo, !hi.is_zero())
        };
        if overflow || qh != params.p.wrapping_add(&FpW::ONE) {
            return Err(PairingError::BadParameters);
        }
        let fp = FpCtx::new(&params.p);
        let generator = fp.point_from_bytes(&params.generator)?;
        if generator.is_infinity() || !fp.is_on_curve(&generator) {
            return Err(PairingError::InvalidPoint);
        }
        // Generator must have exact order q (wNAF `point_mul`; the group
        // E(F_p) ≅ Z_{p+1} is cyclic — gcd(p+1, p−1) = 2 and there is a
        // single 2-torsion point — so `q·G = O` characterizes the unique
        // order-q subgroup exactly).
        if !fp.point_mul(&generator, &params.q).is_infinity() {
            return Err(PairingError::InvalidPoint);
        }
        Ok(Self {
            fp,
            tate: TatePairing {
                q: params.q,
                h: params.h,
            },
            generator,
            params: params.clone(),
            gen_comb: Arc::new(OnceLock::new()),
            gen_prepared: Arc::new(OnceLock::new()),
        })
    }

    /// Generates fresh parameters: a `qbits`-bit prime subgroup inside a
    /// `pbits`-bit field with `p = q·h − 1`, `12 | h`.
    pub fn generate<R: RngCore + ?Sized>(
        rng: &mut R,
        qbits: u32,
        pbits: u32,
    ) -> Result<Self, PairingError> {
        if qbits < 16 || pbits <= qbits + 8 || pbits > FpW::BITS {
            return Err(PairingError::BadParameters);
        }
        let rounds = MillerRabinRounds(32);
        let q: FpW = gen_prime(rng, qbits, rounds);
        // h ranges so that q·h − 1 has exactly pbits bits; h ≡ 0 (mod 12)
        // forces p ≡ 3 (mod 4) (and keeps the PBC convention 12 | h).
        let twelve = FpW::from_u64(12);
        let mut low = FpW::ZERO;
        low.set_bit(pbits - 1, true);
        let (h_lo, _) = low.div_rem(&q);
        let h_span = h_lo; // [h_lo, 2·h_lo) spans one binade
        let p = loop {
            let r = random_below(rng, &h_span);
            let h_raw = h_lo.wrapping_add(&r);
            // Round down to a multiple of 12.
            let h = h_raw.wrapping_sub(&h_raw.rem(&twelve));
            if h.is_zero() {
                continue;
            }
            let (qh, hi) = q.widening_mul(&h);
            if !hi.is_zero() {
                continue;
            }
            let p = qh.wrapping_sub(&FpW::ONE);
            if p.bits() != pbits {
                continue;
            }
            debug_assert_eq!(p.as_u64() & 3, 3);
            if is_prime(&p, rounds, rng) {
                break p;
            }
        };
        let (h, _) = p.wrapping_add(&FpW::ONE).div_rem(&q);
        let fp = FpCtx::new(&p);
        // Generator: cofactor-clear random points until nonzero. Because
        // p + 1 = q·h, multiplying by h lands in the order-q subgroup *by
        // construction* — the cofactor-based membership argument that lets
        // hash-to-point and generation skip an explicit order check.
        let generator = loop {
            let r = fp.random_curve_point(rng);
            let g = fp.point_mul(&r, &h);
            if !g.is_infinity() {
                debug_assert!(fp.point_mul(&g, &q).is_infinity());
                break g;
            }
        };
        let params = PairingParams {
            p,
            q,
            h,
            generator: fp.point_to_bytes(&generator),
        };
        Ok(Self {
            fp,
            tate: TatePairing { q, h },
            generator,
            params,
            gen_comb: Arc::new(OnceLock::new()),
            gen_prepared: Arc::new(OnceLock::new()),
        })
    }

    /// Returns the deterministic named parameter set (cached per process).
    pub fn named(level: SecurityLevel) -> Self {
        static TOY: OnceLock<PairingCtx> = OnceLock::new();
        static LIGHT: OnceLock<PairingCtx> = OnceLock::new();
        static STANDARD: OnceLock<PairingCtx> = OnceLock::new();
        let cell = match level {
            SecurityLevel::Toy => &TOY,
            SecurityLevel::Light => &LIGHT,
            SecurityLevel::Standard => &STANDARD,
        };
        cell.get_or_init(|| {
            let (qbits, pbits, seed) = level.shape();
            let mut rng = HmacDrbg::new(&seed.to_be_bytes(), b"mws-pairing-params");
            Self::generate(&mut rng, qbits, pbits).expect("sizes are valid")
        })
        .clone()
    }

    /// The raw parameters (for persistence / wire transfer).
    pub fn params(&self) -> &PairingParams {
        &self.params
    }

    /// The field context.
    pub fn field(&self) -> &FpCtx {
        &self.fp
    }

    /// The subgroup generator `P`.
    pub fn generator(&self) -> Point {
        self.generator
    }

    /// The prime subgroup order `q`.
    pub fn group_order(&self) -> &FpW {
        &self.tate.q
    }

    /// The cofactor `h`.
    pub fn cofactor(&self) -> &FpW {
        &self.tate.h
    }

    /// Uniformly random nonzero scalar in `[1, q)`.
    pub fn random_scalar<R: RngCore + ?Sized>(&self, rng: &mut R) -> FpW {
        random_nonzero_below(rng, &self.tate.q)
    }

    /// Scalar multiplication on the curve (width-4 wNAF).
    pub fn mul(&self, p: &Point, k: &FpW) -> Point {
        self.fp.point_mul(p, k)
    }

    /// Fixed-base multiplication `k·P` of the generator through the cached
    /// comb table (built on first use, shared across clones).
    pub fn mul_generator(&self, k: &FpW) -> Point {
        let table = self
            .gen_comb
            .get_or_init(|| self.fp.comb_table(&self.generator, self.tate.q.bits()));
        self.fp.comb_mul(table, k)
    }

    /// The generator with its Miller tape precomputed (built on first use,
    /// shared across clones) — for pairings whose fixed argument is `P`.
    pub fn prepared_generator(&self) -> &PreparedPoint {
        self.gen_prepared
            .get_or_init(|| self.tate.prepare(&self.fp, &self.generator))
    }

    /// Prepares an arbitrary long-lived pairing argument (e.g. `P_pub`,
    /// `d_ID`); see [`PreparedPoint`].
    pub fn prepare(&self, p: &Point) -> PreparedPoint {
        self.tate.prepare(&self.fp, p)
    }

    /// Pairing with a prepared first argument — bit-identical to
    /// [`Self::pairing`] on the same points.
    pub fn pairing_with(&self, p: &PreparedPoint, q: &Point) -> Fp2 {
        self.tate.pairing_prepared(&self.fp, p, q)
    }

    /// Eagerly builds the generator caches (comb table + prepared tape).
    /// Long-lived services call this at construction so the first request
    /// doesn't pay the one-time cost.
    pub fn warm_caches(&self) {
        let _ = self
            .gen_comb
            .get_or_init(|| self.fp.comb_table(&self.generator, self.tate.q.bits()));
        let _ = self.prepared_generator();
    }

    /// Membership test for the order-`q` subgroup (on-curve and `q·P = O`,
    /// via the wNAF ladder; infinity is a member).
    ///
    /// `E(F_p)` is cyclic of order `p + 1 = q·h`, so the annihilation check
    /// is exact. Points obtained by cofactor multiplication (hash-to-point,
    /// generator construction) are members by construction and don't need
    /// this.
    pub fn in_subgroup(&self, p: &Point) -> bool {
        match p {
            Point::Infinity => true,
            _ => self.fp.is_on_curve(p) && self.fp.point_mul(p, &self.tate.q).is_infinity(),
        }
    }

    /// Point addition.
    pub fn add(&self, a: &Point, b: &Point) -> Point {
        self.fp.point_add(a, b)
    }

    /// The modified Tate pairing.
    pub fn pairing(&self, p: &Point, q: &Point) -> Fp2 {
        self.tate.pairing(&self.fp, p, q)
    }

    /// The modified Tate pairing via the projective Miller loop — what
    /// [`Self::pairing`] now runs; kept as an explicit name for ablations.
    pub fn pairing_projective(&self, p: &Point, q: &Point) -> Fp2 {
        self.tate.pairing_projective(&self.fp, p, q)
    }

    /// The modified Tate pairing via the affine Miller loop (one inversion
    /// per step) — the auditable reference and pre-optimization baseline,
    /// bit-identical to [`Self::pairing`].
    pub fn pairing_affine(&self, p: &Point, q: &Point) -> Fp2 {
        self.tate.pairing_affine(&self.fp, p, q)
    }

    /// Hash-to-point (BF `MapToPoint`): see [`crate::maptopoint`].
    pub fn hash_to_point(&self, msg: &[u8]) -> Point {
        crate::maptopoint::hash_to_point(self, msg)
    }

    /// Canonical bytes of a pairing value (for KDF input).
    pub fn gt_to_bytes(&self, v: &Fp2) -> Vec<u8> {
        self.fp.fp2_to_bytes(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_params_self_consistent() {
        let c = PairingCtx::named(SecurityLevel::Toy);
        let p = c.params();
        assert_eq!(p.q.bits(), 80);
        assert_eq!(p.p.bits(), 160);
        assert_eq!(p.p.as_u64() & 3, 3, "p ≡ 3 (mod 4)");
        assert!(p.h.rem(&FpW::from_u64(12)).is_zero(), "12 | h");
        // q·h == p + 1
        let (qh, hi) = p.q.widening_mul(&p.h);
        assert!(hi.is_zero());
        assert_eq!(qh, p.p.wrapping_add(&FpW::ONE));
        // Generator has order q.
        assert!(c.mul(&c.generator(), c.group_order()).is_infinity());
        assert!(!c.generator().is_infinity());
    }

    #[test]
    fn named_params_are_deterministic() {
        let a = PairingCtx::named(SecurityLevel::Toy);
        let b = PairingCtx::named(SecurityLevel::Toy);
        assert_eq!(a.params(), b.params());
    }

    #[test]
    fn from_params_roundtrip() {
        let c = PairingCtx::named(SecurityLevel::Toy);
        let rebuilt = PairingCtx::from_params(c.params()).unwrap();
        assert_eq!(rebuilt.generator(), c.generator());
        assert_eq!(rebuilt.group_order(), c.group_order());
    }

    #[test]
    fn from_params_rejects_corruption() {
        let c = PairingCtx::named(SecurityLevel::Toy);
        let good = c.params().clone();

        let mut bad = good.clone();
        bad.q = bad.q.wrapping_add(&FpW::ONE);
        assert!(PairingCtx::from_params(&bad).is_err());

        let mut bad = good.clone();
        bad.p = bad.p.wrapping_add(&FpW::from_u64(4)); // keeps 3 mod 4, breaks q·h
        assert!(PairingCtx::from_params(&bad).is_err());

        let mut bad = good.clone();
        bad.generator = vec![0x00]; // infinity
        assert!(PairingCtx::from_params(&bad).is_err());

        let mut bad = good;
        bad.generator[5] ^= 0xff;
        assert!(PairingCtx::from_params(&bad).is_err());
    }

    #[test]
    fn generate_rejects_bad_shapes() {
        let mut rng = HmacDrbg::from_u64(1);
        assert!(PairingCtx::generate(&mut rng, 8, 160).is_err());
        assert!(PairingCtx::generate(&mut rng, 80, 80).is_err());
        assert!(PairingCtx::generate(&mut rng, 80, 1024).is_err());
    }

    #[test]
    fn fresh_generation_works() {
        let mut rng = HmacDrbg::from_u64(77);
        let c = PairingCtx::generate(&mut rng, 32, 96).unwrap();
        assert_eq!(c.params().q.bits(), 32);
        assert_eq!(c.params().p.bits(), 96);
        // Pairing sanity on the fresh curve.
        let g = c.generator();
        let e = c.pairing(&g, &g);
        assert_ne!(e, c.field().fp2_one());
        assert_eq!(c.field().fp2_pow(&e, c.group_order()), c.field().fp2_one());
    }

    /// Comb, wNAF, and the binary ladder must agree bit-for-bit on the
    /// generator, including the edge scalars `0`, `1`, `q−1`, `q`.
    fn scalar_mul_cross_check(level: SecurityLevel) {
        let c = PairingCtx::named(level);
        let g = c.generator();
        let f = c.field();
        let q = *c.group_order();
        let mut rng = HmacDrbg::from_u64(0x434f4d42);
        let mut scalars = vec![
            FpW::ZERO,
            FpW::ONE,
            q.wrapping_sub(&FpW::ONE),
            q, // annihilates the generator
            q.wrapping_add(&FpW::ONE),
        ];
        for _ in 0..4 {
            scalars.push(c.random_scalar(&mut rng));
        }
        for k in &scalars {
            let reference = f.point_mul_binary(&g, k);
            assert_eq!(c.mul(&g, k), reference, "wNAF vs binary");
            assert_eq!(c.mul_generator(k), reference, "comb vs binary");
        }
        assert_eq!(c.mul_generator(&q), Point::Infinity);
        // Hashed points through the wNAF path.
        let h = c.hash_to_point(b"scalar-mul/cross-check");
        let k = c.random_scalar(&mut rng);
        assert_eq!(c.mul(&h, &k), f.point_mul_binary(&h, &k));
    }

    #[test]
    fn scalar_mul_cross_check_toy() {
        scalar_mul_cross_check(SecurityLevel::Toy);
    }

    #[test]
    fn scalar_mul_cross_check_light() {
        scalar_mul_cross_check(SecurityLevel::Light);
    }

    #[test]
    fn subgroup_membership() {
        let c = PairingCtx::named(SecurityLevel::Toy);
        let g = c.generator();
        assert!(c.in_subgroup(&g));
        assert!(c.in_subgroup(&Point::Infinity));
        let mut rng = HmacDrbg::from_u64(0x535542);
        assert!(c.in_subgroup(&c.mul(&g, &c.random_scalar(&mut rng))));
        // Hashed points are cofactor-cleared — members by construction.
        assert!(c.in_subgroup(&c.hash_to_point(b"attr|x")));
        // A random full-group point is (overwhelmingly) not in the
        // subgroup; find one that isn't.
        let mut found = false;
        for _ in 0..16 {
            let p = c.field().random_curve_point(&mut rng);
            if !c.in_subgroup(&p) {
                found = true;
                break;
            }
        }
        assert!(found, "random points fall outside the q-subgroup");
    }

    #[test]
    fn warm_caches_is_idempotent() {
        let c = PairingCtx::named(SecurityLevel::Toy);
        c.warm_caches();
        c.warm_caches();
        let g = c.generator();
        assert_eq!(c.mul_generator(&FpW::ONE), g);
    }

    #[test]
    fn random_scalars_in_range() {
        let c = PairingCtx::named(SecurityLevel::Toy);
        let mut rng = HmacDrbg::from_u64(9);
        for _ in 0..20 {
            let s = c.random_scalar(&mut rng);
            assert!(!s.is_zero());
            assert!(s < *c.group_order());
        }
    }
}
