//! Point arithmetic on the supersingular curve `E : y² = x³ + x` over `F_p`.
//!
//! Public points are affine (an explicit point at infinity variant); scalar
//! multiplication runs in Jacobian coordinates internally so a `k·P` costs a
//! single field inversion at the end.

use crate::fp::{Fp, FpCtx};
use crate::{FpW, PairingError};
use rand::RngCore;

/// A point on `E(F_p)` in affine form.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Point {
    /// The point at infinity (group identity).
    Infinity,
    /// A finite point.
    Affine {
        /// x-coordinate.
        x: Fp,
        /// y-coordinate.
        y: Fp,
    },
}

impl Point {
    /// Is this the identity?
    pub fn is_infinity(&self) -> bool {
        matches!(self, Point::Infinity)
    }
}

/// Internal Jacobian representation: `(X, Y, Z)` with `x = X/Z²`, `y = Y/Z³`;
/// `Z = 0` encodes infinity.
#[derive(Clone, Copy)]
pub(crate) struct Jacobian {
    pub(crate) x: Fp,
    pub(crate) y: Fp,
    pub(crate) z: Fp,
}

/// Precomputed fixed-base comb table (width 4) for one point — built once
/// via [`FpCtx::comb_table`], then every `k·P` through [`FpCtx::comb_mul`]
/// costs about a quarter of a generic double-and-add.
#[derive(Clone, Debug)]
pub struct CombTable {
    /// Bits per comb column: `d = ⌈bits/4⌉`; scalars up to `4·d` bits fit.
    d: u32,
    /// `table[j−1] = Σ_{i : bit i of j} 2^{i·d}·P` for `j ∈ [1, 16)`, affine.
    table: Vec<Point>,
}

impl CombTable {
    /// Comb width (number of teeth per column).
    pub const WIDTH: u32 = 4;

    /// Widest scalar (in bits) the table covers without falling back.
    pub fn scalar_bits(&self) -> u32 {
        Self::WIDTH * self.d
    }
}

impl FpCtx {
    /// Curve membership: `y² == x³ + x` (infinity is on the curve).
    pub fn is_on_curve(&self, p: &Point) -> bool {
        match p {
            Point::Infinity => true,
            Point::Affine { x, y } => {
                let lhs = self.sqr(y);
                let rhs = self.add(&self.mul(&self.sqr(x), x), x);
                lhs == rhs
            }
        }
    }

    /// Point negation.
    pub fn point_neg(&self, p: &Point) -> Point {
        match p {
            Point::Infinity => Point::Infinity,
            Point::Affine { x, y } => Point::Affine {
                x: *x,
                y: self.neg(y),
            },
        }
    }

    /// Affine point addition (used by the Miller loop, which needs slopes
    /// anyway; costs one inversion).
    pub fn point_add(&self, a: &Point, b: &Point) -> Point {
        match (a, b) {
            (Point::Infinity, _) => *b,
            (_, Point::Infinity) => *a,
            (Point::Affine { x: x1, y: y1 }, Point::Affine { x: x2, y: y2 }) => {
                if x1 == x2 {
                    if y1 == y2 {
                        return self.point_double(a);
                    }
                    return Point::Infinity; // a == −b
                }
                let lambda = self.mul(
                    &self.sub(y2, y1),
                    &self.inv(&self.sub(x2, x1)).expect("x1 != x2"),
                );
                self.chord_result(x1, y1, x2, &lambda)
            }
        }
    }

    /// Affine doubling.
    pub fn point_double(&self, p: &Point) -> Point {
        match p {
            Point::Infinity => Point::Infinity,
            Point::Affine { x, y } => {
                if self.is_zero(y) {
                    return Point::Infinity; // vertical tangent
                }
                // λ = (3x² + 1) / 2y   (curve a-coefficient is 1)
                let num = self.add(&self.mul(&self.three(), &self.sqr(x)), &self.one());
                let lambda = self.mul(&num, &self.inv(&self.dbl(y)).expect("y != 0"));
                self.chord_result(x, y, x, &lambda)
            }
        }
    }

    /// Completes a chord/tangent construction given the slope.
    fn chord_result(&self, x1: &Fp, y1: &Fp, x2: &Fp, lambda: &Fp) -> Point {
        let x3 = self.sub(&self.sub(&self.sqr(lambda), x1), x2);
        let y3 = self.sub(&self.mul(lambda, &self.sub(x1, &x3)), y1);
        Point::Affine { x: x3, y: y3 }
    }

    /// Scalar multiplication `k·P`, width-4 wNAF over Jacobian coordinates.
    ///
    /// The default variable-base path: signed digits cut the expected
    /// addition count from `bits/2` to `bits/5` at the price of 7 extra
    /// point operations building the odd-multiples table. Bit-identical to
    /// [`Self::point_mul_binary`] (asserted by the cross-check tests).
    pub fn point_mul(&self, p: &Point, k: &FpW) -> Point {
        const W: u32 = 4;
        let (x, y) = match p {
            Point::Infinity => return Point::Infinity,
            Point::Affine { x, y } => (*x, *y),
        };
        if k.is_zero() {
            return Point::Infinity;
        }
        if k.bits() + W > FpW::BITS {
            // wNAF recoding could wrap at the very top of the scalar range;
            // such scalars never occur on the hot paths (all < q).
            return self.point_mul_binary(p, k);
        }
        let base = Jacobian {
            x,
            y,
            z: self.one(),
        };
        // Odd multiples P, 3P, …, 15P.
        let twice = self.jac_double(&base);
        let mut table = [base; 1 << (W - 2)];
        for i in 1..table.len() {
            table[i] = self.jac_add(&table[i - 1], &twice);
        }
        let digits = crate::naf::wnaf_digits(k, W);
        let mut acc: Option<Jacobian> = None;
        for &d in digits.iter().rev() {
            if let Some(a) = acc {
                acc = Some(self.jac_double(&a));
            }
            if d != 0 {
                let m = table[(d.unsigned_abs() as usize - 1) / 2];
                let m = if d > 0 { m } else { self.jac_neg(&m) };
                acc = Some(match acc {
                    None => m,
                    Some(a) => self.jac_add(&a, &m),
                });
            }
        }
        match acc {
            None => Point::Infinity,
            Some(a) => self.jac_to_affine(&a),
        }
    }

    /// Scalar multiplication `k·P` by plain MSB-first double-and-add — the
    /// pre-optimization reference path kept for cross-checks and the
    /// benchmark baseline.
    pub fn point_mul_binary(&self, p: &Point, k: &FpW) -> Point {
        let (x, y) = match p {
            Point::Infinity => return Point::Infinity,
            Point::Affine { x, y } => (*x, *y),
        };
        if k.is_zero() {
            return Point::Infinity;
        }
        let base = Jacobian {
            x,
            y,
            z: self.one(),
        };
        let mut acc: Option<Jacobian> = None;
        for i in (0..k.bits()).rev() {
            if let Some(a) = acc {
                acc = Some(self.jac_double(&a));
            }
            if k.bit(i) {
                acc = Some(match acc {
                    None => base,
                    Some(a) => self.jac_add(&a, &base),
                });
            }
        }
        match acc {
            None => Point::Infinity,
            Some(a) => self.jac_to_affine(&a),
        }
    }

    pub(crate) fn jac_is_infinity(&self, p: &Jacobian) -> bool {
        self.is_zero(&p.z)
    }

    pub(crate) fn jac_neg(&self, p: &Jacobian) -> Jacobian {
        Jacobian {
            x: p.x,
            y: self.neg(&p.y),
            z: p.z,
        }
    }

    pub(crate) fn jac_double(&self, p: &Jacobian) -> Jacobian {
        if self.jac_is_infinity(p) || self.is_zero(&p.y) {
            return Jacobian {
                x: self.one(),
                y: self.one(),
                z: self.zero(),
            };
        }
        // dbl-2007-bl with a = 1.
        let xx = self.sqr(&p.x);
        let yy = self.sqr(&p.y);
        let yyyy = self.sqr(&yy);
        let zz = self.sqr(&p.z);
        // S = 2((X+YY)² − XX − YYYY)
        let s = {
            let t = self.sqr(&self.add(&p.x, &yy));
            self.dbl(&self.sub(&self.sub(&t, &xx), &yyyy))
        };
        // M = 3XX + a·ZZ²  (a = 1)
        let m = self.add(&self.add(&self.dbl(&xx), &xx), &self.sqr(&zz));
        // T = M² − 2S
        let t = self.sub(&self.sqr(&m), &self.dbl(&s));
        let x3 = t;
        // Y3 = M(S − T) − 8·YYYY
        let y3 = {
            let eight_yyyy = self.dbl(&self.dbl(&self.dbl(&yyyy)));
            self.sub(&self.mul(&m, &self.sub(&s, &t)), &eight_yyyy)
        };
        // Z3 = (Y+Z)² − YY − ZZ
        let z3 = {
            let t = self.sqr(&self.add(&p.y, &p.z));
            self.sub(&self.sub(&t, &yy), &zz)
        };
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    pub(crate) fn jac_add(&self, a: &Jacobian, b: &Jacobian) -> Jacobian {
        if self.jac_is_infinity(a) {
            return *b;
        }
        if self.jac_is_infinity(b) {
            return *a;
        }
        // add-2007-bl.
        let z1z1 = self.sqr(&a.z);
        let z2z2 = self.sqr(&b.z);
        let u1 = self.mul(&a.x, &z2z2);
        let u2 = self.mul(&b.x, &z1z1);
        let s1 = self.mul(&self.mul(&a.y, &b.z), &z2z2);
        let s2 = self.mul(&self.mul(&b.y, &a.z), &z1z1);
        let h = self.sub(&u2, &u1);
        if self.is_zero(&h) {
            if s1 == s2 {
                return self.jac_double(a);
            }
            return Jacobian {
                x: self.one(),
                y: self.one(),
                z: self.zero(),
            };
        }
        let i = self.sqr(&self.dbl(&h));
        let j = self.mul(&h, &i);
        let r = self.dbl(&self.sub(&s2, &s1));
        let v = self.mul(&u1, &i);
        let x3 = self.sub(&self.sub(&self.sqr(&r), &j), &self.dbl(&v));
        let y3 = self.sub(
            &self.mul(&r, &self.sub(&v, &x3)),
            &self.dbl(&self.mul(&s1, &j)),
        );
        let z3 = {
            let t = self.sqr(&self.add(&a.z, &b.z));
            self.mul(&self.sub(&self.sub(&t, &z1z1), &z2z2), &h)
        };
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    pub(crate) fn jac_to_affine(&self, p: &Jacobian) -> Point {
        if self.jac_is_infinity(p) {
            return Point::Infinity;
        }
        let zinv = self.inv(&p.z).expect("nonzero z");
        let zinv2 = self.sqr(&zinv);
        let zinv3 = self.mul(&zinv2, &zinv);
        Point::Affine {
            x: self.mul(&p.x, &zinv2),
            y: self.mul(&p.y, &zinv3),
        }
    }

    /// Builds a width-4 fixed-base comb table for `p`, sized for scalars of
    /// up to `bits` bits.
    ///
    /// One-time cost: `3·⌈bits/4⌉` Jacobian doublings plus 15 inversions to
    /// normalize the table. Amortized over the generator's lifetime (setup,
    /// every encryption's `r·P`, every FO re-encryption check) this is noise.
    pub fn comb_table(&self, p: &Point, bits: u32) -> CombTable {
        const W: u32 = 4;
        let d = bits.max(1).div_ceil(W);
        // Strides B[i] = 2^{i·d}·P.
        let mut strides: Vec<Jacobian> = Vec::with_capacity(W as usize);
        match p {
            Point::Infinity => {
                // Degenerate but total: every table entry is the identity.
                return CombTable {
                    d,
                    table: vec![Point::Infinity; (1 << W) - 1],
                };
            }
            Point::Affine { x, y } => strides.push(Jacobian {
                x: *x,
                y: *y,
                z: self.one(),
            }),
        }
        for i in 1..W as usize {
            let mut t = strides[i - 1];
            for _ in 0..d {
                t = self.jac_double(&t);
            }
            strides.push(t);
        }
        // table[j−1] = Σ_{i : bit i of j set} B[i], normalized to affine.
        let mut table = Vec::with_capacity((1 << W) - 1);
        for j in 1u32..1 << W {
            let mut acc: Option<Jacobian> = None;
            for (i, b) in strides.iter().enumerate() {
                if j & (1 << i) != 0 {
                    acc = Some(match acc {
                        None => *b,
                        Some(a) => self.jac_add(&a, b),
                    });
                }
            }
            table.push(self.jac_to_affine(&acc.expect("j ≥ 1 selects a stride")));
        }
        CombTable { d, table }
    }

    /// Fixed-base multiplication `k·P` through a precomputed [`CombTable`].
    ///
    /// Costs `⌈bits/4⌉` doublings plus at most that many additions — roughly
    /// a quarter of the work of the generic ladder. Bit-identical to
    /// [`Self::point_mul_binary`] on the same inputs.
    pub fn comb_mul(&self, t: &CombTable, k: &FpW) -> Point {
        if k.is_zero() {
            return Point::Infinity;
        }
        if k.bits() > CombTable::WIDTH * t.d {
            // Scalar wider than the table (never the case for reduced
            // scalars): fall back to the generic path on P = table[0].
            return self.point_mul(&t.table[0], k);
        }
        let mut acc: Option<Jacobian> = None;
        for col in (0..t.d).rev() {
            if let Some(a) = acc {
                acc = Some(self.jac_double(&a));
            }
            let mut j = 0usize;
            for i in 0..CombTable::WIDTH {
                if k.bit(i * t.d + col) {
                    j |= 1 << i;
                }
            }
            if j != 0 {
                if let Point::Affine { x, y } = &t.table[j - 1] {
                    let m = Jacobian {
                        x: *x,
                        y: *y,
                        z: self.one(),
                    };
                    acc = Some(match acc {
                        None => m,
                        Some(a) => self.jac_add(&a, &m),
                    });
                }
                // An infinity entry (only possible for small-order P)
                // contributes the identity: nothing to add.
            }
        }
        match acc {
            None => Point::Infinity,
            Some(a) => self.jac_to_affine(&a),
        }
    }

    /// A uniformly random point of the full group `E(F_p)` (order `p+1`).
    pub fn random_curve_point<R: RngCore + ?Sized>(&self, rng: &mut R) -> Point {
        loop {
            let x = self.random(rng);
            let rhs = self.add(&self.mul(&self.sqr(&x), &x), &x);
            if let Some(y) = self.sqrt(&rhs) {
                // Randomize the sign so both roots are reachable.
                let y = if rng.next_u32() & 1 == 1 {
                    self.neg(&y)
                } else {
                    y
                };
                return Point::Affine { x, y };
            }
        }
    }

    /// Compressed encoding: `0x00` for infinity, else `0x02 | parity(y)`
    /// followed by the big-endian x-coordinate.
    pub fn point_to_bytes(&self, p: &Point) -> Vec<u8> {
        match p {
            Point::Infinity => vec![0x00],
            Point::Affine { x, y } => {
                let mut out = Vec::with_capacity(1 + 8 * crate::FP_LIMBS);
                out.push(0x02 | self.parity(y) as u8);
                out.extend_from_slice(&self.to_bytes(x));
                out
            }
        }
    }

    /// Decodes a compressed point, verifying curve membership.
    pub fn point_from_bytes(&self, bytes: &[u8]) -> Result<Point, PairingError> {
        match bytes.split_first() {
            Some((0x00, [])) => Ok(Point::Infinity),
            Some((&tag @ (0x02 | 0x03), rest)) => {
                if rest.len() != 8 * crate::FP_LIMBS {
                    return Err(PairingError::Decode);
                }
                let xi = FpW::from_be_bytes(rest).map_err(|_| PairingError::Decode)?;
                if xi >= *self.modulus() {
                    return Err(PairingError::Decode);
                }
                let x = self.from_uint(&xi);
                let rhs = self.add(&self.mul(&self.sqr(&x), &x), &x);
                let y = self.sqrt(&rhs).ok_or(PairingError::InvalidPoint)?;
                let y = if self.parity(&y) == (tag & 1 == 1) {
                    y
                } else {
                    self.neg(&y)
                };
                Ok(Point::Affine { x, y })
            }
            _ => Err(PairingError::Decode),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mws_crypto::HmacDrbg;

    /// A small 3-mod-4 prime context for fast curve tests.
    fn ctx() -> FpCtx {
        let mut p = FpW::ZERO;
        p.set_bit(127, true);
        FpCtx::new(&p.wrapping_sub(&FpW::ONE)) // 2^127 − 1
    }

    fn rng() -> HmacDrbg {
        HmacDrbg::from_u64(2024)
    }

    #[test]
    fn random_points_are_on_curve() {
        let f = ctx();
        let mut rng = rng();
        for _ in 0..8 {
            let p = f.random_curve_point(&mut rng);
            assert!(f.is_on_curve(&p));
        }
    }

    #[test]
    fn group_identities() {
        let f = ctx();
        let mut rng = rng();
        let p = f.random_curve_point(&mut rng);
        assert_eq!(f.point_add(&p, &Point::Infinity), p);
        assert_eq!(f.point_add(&Point::Infinity, &p), p);
        assert_eq!(f.point_add(&p, &f.point_neg(&p)), Point::Infinity);
        assert!(f.is_on_curve(&f.point_neg(&p)));
    }

    #[test]
    fn addition_commutes_and_associates() {
        let f = ctx();
        let mut rng = rng();
        let a = f.random_curve_point(&mut rng);
        let b = f.random_curve_point(&mut rng);
        let c = f.random_curve_point(&mut rng);
        assert_eq!(f.point_add(&a, &b), f.point_add(&b, &a));
        assert_eq!(
            f.point_add(&f.point_add(&a, &b), &c),
            f.point_add(&a, &f.point_add(&b, &c))
        );
    }

    #[test]
    fn double_equals_add_self() {
        let f = ctx();
        let mut rng = rng();
        let p = f.random_curve_point(&mut rng);
        assert_eq!(f.point_double(&p), f.point_add(&p, &p));
        assert!(f.is_on_curve(&f.point_double(&p)));
    }

    #[test]
    fn scalar_mul_matches_repeated_addition() {
        let f = ctx();
        let mut rng = rng();
        let p = f.random_curve_point(&mut rng);
        let mut acc = Point::Infinity;
        for k in 0u64..20 {
            assert_eq!(f.point_mul(&p, &FpW::from_u64(k)), acc, "k = {k}");
            acc = f.point_add(&acc, &p);
        }
    }

    #[test]
    fn scalar_mul_distributes() {
        let f = ctx();
        let mut rng = rng();
        let p = f.random_curve_point(&mut rng);
        let a = FpW::from_u64(123456789);
        let b = FpW::from_u64(987654321);
        // (a+b)P = aP + bP
        let lhs = f.point_mul(&p, &a.wrapping_add(&b));
        let rhs = f.point_add(&f.point_mul(&p, &a), &f.point_mul(&p, &b));
        assert_eq!(lhs, rhs);
        // (ab)P = a(bP)
        let lhs = f.point_mul(&p, &a.wrapping_mul(&b));
        let rhs = f.point_mul(&f.point_mul(&p, &b), &a);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn group_order_annihilates() {
        // #E(F_p) = p + 1 for this supersingular family.
        let f = ctx();
        let mut rng = rng();
        let p = f.random_curve_point(&mut rng);
        let order = f.modulus().wrapping_add(&FpW::ONE);
        assert_eq!(f.point_mul(&p, &order), Point::Infinity);
    }

    #[test]
    fn mul_by_zero_and_infinity() {
        let f = ctx();
        let mut rng = rng();
        let p = f.random_curve_point(&mut rng);
        assert_eq!(f.point_mul(&p, &FpW::ZERO), Point::Infinity);
        assert_eq!(
            f.point_mul(&Point::Infinity, &FpW::from_u64(7)),
            Point::Infinity
        );
    }

    #[test]
    fn wnaf_matches_binary_ladder() {
        let f = ctx();
        let mut rng = rng();
        let p = f.random_curve_point(&mut rng);
        // Small scalars, a few wide ones, and the near-top-of-width guard.
        let mut scalars = vec![FpW::ZERO, FpW::ONE, FpW::from_u64(2)];
        for k in [3u64, 15, 16, 17, 0xffff_ffff, 0xdead_beef_cafe] {
            scalars.push(FpW::from_u64(k));
        }
        let order = f.modulus().wrapping_add(&FpW::ONE);
        scalars.push(order.wrapping_sub(&FpW::ONE));
        scalars.push(order);
        let mut max = FpW::ZERO;
        for i in 0..FpW::BITS {
            max.set_bit(i, true);
        }
        scalars.push(max); // exercises the binary fallback
        for k in &scalars {
            assert_eq!(f.point_mul(&p, k), f.point_mul_binary(&p, k));
        }
        assert_eq!(
            f.point_mul(&Point::Infinity, &FpW::from_u64(7)),
            Point::Infinity
        );
    }

    #[test]
    fn comb_matches_binary_ladder() {
        let f = ctx();
        let mut rng = rng();
        let p = f.random_curve_point(&mut rng);
        let order = f.modulus().wrapping_add(&FpW::ONE);
        let table = f.comb_table(&p, order.bits());
        assert!(table.scalar_bits() >= order.bits());
        let mut scalars = vec![FpW::ZERO, FpW::ONE, FpW::from_u64(2)];
        for k in [3u64, 255, 256, 0xdead_beef] {
            scalars.push(FpW::from_u64(k));
        }
        scalars.push(order.wrapping_sub(&FpW::ONE));
        scalars.push(order); // annihilates: comb must return infinity
        for k in &scalars {
            assert_eq!(f.comb_mul(&table, k), f.point_mul_binary(&p, k), "k");
        }
        // Wider-than-table scalar takes the fallback and still agrees.
        let wide = order
            .wrapping_mul(&FpW::from_u64(3))
            .wrapping_add(&FpW::ONE);
        assert_eq!(f.comb_mul(&table, &wide), f.point_mul_binary(&p, &wide));
        // Degenerate base point.
        let inf_table = f.comb_table(&Point::Infinity, 64);
        assert_eq!(
            f.comb_mul(&inf_table, &FpW::from_u64(1234)),
            Point::Infinity
        );
    }

    #[test]
    fn two_torsion_point() {
        // (0, 0) is on the curve and is its own negation: 2·(0,0) = O.
        let f = ctx();
        let p = Point::Affine {
            x: f.zero(),
            y: f.zero(),
        };
        assert!(f.is_on_curve(&p));
        assert_eq!(f.point_double(&p), Point::Infinity);
        assert_eq!(f.point_add(&p, &p), Point::Infinity);
    }

    #[test]
    fn serialization_roundtrip() {
        let f = ctx();
        let mut rng = rng();
        for _ in 0..6 {
            let p = f.random_curve_point(&mut rng);
            let bytes = f.point_to_bytes(&p);
            assert_eq!(f.point_from_bytes(&bytes).unwrap(), p);
        }
        let inf = f.point_to_bytes(&Point::Infinity);
        assert_eq!(f.point_from_bytes(&inf).unwrap(), Point::Infinity);
    }

    #[test]
    fn serialization_rejects_garbage() {
        let f = ctx();
        assert!(f.point_from_bytes(&[]).is_err());
        assert!(f.point_from_bytes(&[0x05, 1, 2]).is_err());
        assert!(f.point_from_bytes(&[0x02, 1, 2, 3]).is_err()); // wrong length
                                                                // x with no curve point: find one by trial.
        let mut rng = rng();
        loop {
            let x = f.random(&mut rng);
            let rhs = f.add(&f.mul(&f.sqr(&x), &x), &x);
            if f.sqrt(&rhs).is_none() {
                let mut bytes = vec![0x02];
                bytes.extend_from_slice(&f.to_bytes(&x));
                assert_eq!(
                    f.point_from_bytes(&bytes).unwrap_err(),
                    PairingError::InvalidPoint
                );
                break;
            }
        }
    }
}
