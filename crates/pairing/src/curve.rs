//! Point arithmetic on the supersingular curve `E : y² = x³ + x` over `F_p`.
//!
//! Public points are affine (an explicit point at infinity variant); scalar
//! multiplication runs in Jacobian coordinates internally so a `k·P` costs a
//! single field inversion at the end.

use crate::fp::{Fp, FpCtx};
use crate::{FpW, PairingError};
use rand::RngCore;

/// A point on `E(F_p)` in affine form.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Point {
    /// The point at infinity (group identity).
    Infinity,
    /// A finite point.
    Affine {
        /// x-coordinate.
        x: Fp,
        /// y-coordinate.
        y: Fp,
    },
}

impl Point {
    /// Is this the identity?
    pub fn is_infinity(&self) -> bool {
        matches!(self, Point::Infinity)
    }
}

/// Internal Jacobian representation: `(X, Y, Z)` with `x = X/Z²`, `y = Y/Z³`;
/// `Z = 0` encodes infinity.
#[derive(Clone, Copy)]
pub(crate) struct Jacobian {
    pub(crate) x: Fp,
    pub(crate) y: Fp,
    pub(crate) z: Fp,
}

impl FpCtx {
    /// Curve membership: `y² == x³ + x` (infinity is on the curve).
    pub fn is_on_curve(&self, p: &Point) -> bool {
        match p {
            Point::Infinity => true,
            Point::Affine { x, y } => {
                let lhs = self.sqr(y);
                let rhs = self.add(&self.mul(&self.sqr(x), x), x);
                lhs == rhs
            }
        }
    }

    /// Point negation.
    pub fn point_neg(&self, p: &Point) -> Point {
        match p {
            Point::Infinity => Point::Infinity,
            Point::Affine { x, y } => Point::Affine {
                x: *x,
                y: self.neg(y),
            },
        }
    }

    /// Affine point addition (used by the Miller loop, which needs slopes
    /// anyway; costs one inversion).
    pub fn point_add(&self, a: &Point, b: &Point) -> Point {
        match (a, b) {
            (Point::Infinity, _) => *b,
            (_, Point::Infinity) => *a,
            (Point::Affine { x: x1, y: y1 }, Point::Affine { x: x2, y: y2 }) => {
                if x1 == x2 {
                    if y1 == y2 {
                        return self.point_double(a);
                    }
                    return Point::Infinity; // a == −b
                }
                let lambda = self.mul(
                    &self.sub(y2, y1),
                    &self.inv(&self.sub(x2, x1)).expect("x1 != x2"),
                );
                self.chord_result(x1, y1, x2, &lambda)
            }
        }
    }

    /// Affine doubling.
    pub fn point_double(&self, p: &Point) -> Point {
        match p {
            Point::Infinity => Point::Infinity,
            Point::Affine { x, y } => {
                if self.is_zero(y) {
                    return Point::Infinity; // vertical tangent
                }
                // λ = (3x² + 1) / 2y   (curve a-coefficient is 1)
                let num = self.add(&self.mul(&self.from_u64(3), &self.sqr(x)), &self.one());
                let lambda = self.mul(&num, &self.inv(&self.dbl(y)).expect("y != 0"));
                self.chord_result(x, y, x, &lambda)
            }
        }
    }

    /// Completes a chord/tangent construction given the slope.
    fn chord_result(&self, x1: &Fp, y1: &Fp, x2: &Fp, lambda: &Fp) -> Point {
        let x3 = self.sub(&self.sub(&self.sqr(lambda), x1), x2);
        let y3 = self.sub(&self.mul(lambda, &self.sub(x1, &x3)), y1);
        Point::Affine { x: x3, y: y3 }
    }

    /// Scalar multiplication `k·P` (Jacobian double-and-add).
    pub fn point_mul(&self, p: &Point, k: &FpW) -> Point {
        let (x, y) = match p {
            Point::Infinity => return Point::Infinity,
            Point::Affine { x, y } => (*x, *y),
        };
        if k.is_zero() {
            return Point::Infinity;
        }
        let base = Jacobian {
            x,
            y,
            z: self.one(),
        };
        let mut acc: Option<Jacobian> = None;
        for i in (0..k.bits()).rev() {
            if let Some(a) = acc {
                acc = Some(self.jac_double(&a));
            }
            if k.bit(i) {
                acc = Some(match acc {
                    None => base,
                    Some(a) => self.jac_add(&a, &base),
                });
            }
        }
        match acc {
            None => Point::Infinity,
            Some(a) => self.jac_to_affine(&a),
        }
    }

    pub(crate) fn jac_is_infinity(&self, p: &Jacobian) -> bool {
        self.is_zero(&p.z)
    }

    pub(crate) fn jac_double(&self, p: &Jacobian) -> Jacobian {
        if self.jac_is_infinity(p) || self.is_zero(&p.y) {
            return Jacobian {
                x: self.one(),
                y: self.one(),
                z: self.zero(),
            };
        }
        // dbl-2007-bl with a = 1.
        let xx = self.sqr(&p.x);
        let yy = self.sqr(&p.y);
        let yyyy = self.sqr(&yy);
        let zz = self.sqr(&p.z);
        // S = 2((X+YY)² − XX − YYYY)
        let s = {
            let t = self.sqr(&self.add(&p.x, &yy));
            self.dbl(&self.sub(&self.sub(&t, &xx), &yyyy))
        };
        // M = 3XX + a·ZZ²  (a = 1)
        let m = self.add(&self.add(&self.dbl(&xx), &xx), &self.sqr(&zz));
        // T = M² − 2S
        let t = self.sub(&self.sqr(&m), &self.dbl(&s));
        let x3 = t;
        // Y3 = M(S − T) − 8·YYYY
        let y3 = {
            let eight_yyyy = self.dbl(&self.dbl(&self.dbl(&yyyy)));
            self.sub(&self.mul(&m, &self.sub(&s, &t)), &eight_yyyy)
        };
        // Z3 = (Y+Z)² − YY − ZZ
        let z3 = {
            let t = self.sqr(&self.add(&p.y, &p.z));
            self.sub(&self.sub(&t, &yy), &zz)
        };
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    pub(crate) fn jac_add(&self, a: &Jacobian, b: &Jacobian) -> Jacobian {
        if self.jac_is_infinity(a) {
            return *b;
        }
        if self.jac_is_infinity(b) {
            return *a;
        }
        // add-2007-bl.
        let z1z1 = self.sqr(&a.z);
        let z2z2 = self.sqr(&b.z);
        let u1 = self.mul(&a.x, &z2z2);
        let u2 = self.mul(&b.x, &z1z1);
        let s1 = self.mul(&self.mul(&a.y, &b.z), &z2z2);
        let s2 = self.mul(&self.mul(&b.y, &a.z), &z1z1);
        let h = self.sub(&u2, &u1);
        if self.is_zero(&h) {
            if s1 == s2 {
                return self.jac_double(a);
            }
            return Jacobian {
                x: self.one(),
                y: self.one(),
                z: self.zero(),
            };
        }
        let i = self.sqr(&self.dbl(&h));
        let j = self.mul(&h, &i);
        let r = self.dbl(&self.sub(&s2, &s1));
        let v = self.mul(&u1, &i);
        let x3 = self.sub(&self.sub(&self.sqr(&r), &j), &self.dbl(&v));
        let y3 = self.sub(
            &self.mul(&r, &self.sub(&v, &x3)),
            &self.dbl(&self.mul(&s1, &j)),
        );
        let z3 = {
            let t = self.sqr(&self.add(&a.z, &b.z));
            self.mul(&self.sub(&self.sub(&t, &z1z1), &z2z2), &h)
        };
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    pub(crate) fn jac_to_affine(&self, p: &Jacobian) -> Point {
        if self.jac_is_infinity(p) {
            return Point::Infinity;
        }
        let zinv = self.inv(&p.z).expect("nonzero z");
        let zinv2 = self.sqr(&zinv);
        let zinv3 = self.mul(&zinv2, &zinv);
        Point::Affine {
            x: self.mul(&p.x, &zinv2),
            y: self.mul(&p.y, &zinv3),
        }
    }

    /// A uniformly random point of the full group `E(F_p)` (order `p+1`).
    pub fn random_curve_point<R: RngCore + ?Sized>(&self, rng: &mut R) -> Point {
        loop {
            let x = self.random(rng);
            let rhs = self.add(&self.mul(&self.sqr(&x), &x), &x);
            if let Some(y) = self.sqrt(&rhs) {
                // Randomize the sign so both roots are reachable.
                let y = if rng.next_u32() & 1 == 1 {
                    self.neg(&y)
                } else {
                    y
                };
                return Point::Affine { x, y };
            }
        }
    }

    /// Compressed encoding: `0x00` for infinity, else `0x02 | parity(y)`
    /// followed by the big-endian x-coordinate.
    pub fn point_to_bytes(&self, p: &Point) -> Vec<u8> {
        match p {
            Point::Infinity => vec![0x00],
            Point::Affine { x, y } => {
                let mut out = Vec::with_capacity(1 + 8 * crate::FP_LIMBS);
                out.push(0x02 | self.parity(y) as u8);
                out.extend_from_slice(&self.to_bytes(x));
                out
            }
        }
    }

    /// Decodes a compressed point, verifying curve membership.
    pub fn point_from_bytes(&self, bytes: &[u8]) -> Result<Point, PairingError> {
        match bytes.split_first() {
            Some((0x00, [])) => Ok(Point::Infinity),
            Some((&tag @ (0x02 | 0x03), rest)) => {
                if rest.len() != 8 * crate::FP_LIMBS {
                    return Err(PairingError::Decode);
                }
                let xi = FpW::from_be_bytes(rest).map_err(|_| PairingError::Decode)?;
                if xi >= *self.modulus() {
                    return Err(PairingError::Decode);
                }
                let x = self.from_uint(&xi);
                let rhs = self.add(&self.mul(&self.sqr(&x), &x), &x);
                let y = self.sqrt(&rhs).ok_or(PairingError::InvalidPoint)?;
                let y = if self.parity(&y) == (tag & 1 == 1) {
                    y
                } else {
                    self.neg(&y)
                };
                Ok(Point::Affine { x, y })
            }
            _ => Err(PairingError::Decode),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mws_crypto::HmacDrbg;

    /// A small 3-mod-4 prime context for fast curve tests.
    fn ctx() -> FpCtx {
        let mut p = FpW::ZERO;
        p.set_bit(127, true);
        FpCtx::new(&p.wrapping_sub(&FpW::ONE)) // 2^127 − 1
    }

    fn rng() -> HmacDrbg {
        HmacDrbg::from_u64(2024)
    }

    #[test]
    fn random_points_are_on_curve() {
        let f = ctx();
        let mut rng = rng();
        for _ in 0..8 {
            let p = f.random_curve_point(&mut rng);
            assert!(f.is_on_curve(&p));
        }
    }

    #[test]
    fn group_identities() {
        let f = ctx();
        let mut rng = rng();
        let p = f.random_curve_point(&mut rng);
        assert_eq!(f.point_add(&p, &Point::Infinity), p);
        assert_eq!(f.point_add(&Point::Infinity, &p), p);
        assert_eq!(f.point_add(&p, &f.point_neg(&p)), Point::Infinity);
        assert!(f.is_on_curve(&f.point_neg(&p)));
    }

    #[test]
    fn addition_commutes_and_associates() {
        let f = ctx();
        let mut rng = rng();
        let a = f.random_curve_point(&mut rng);
        let b = f.random_curve_point(&mut rng);
        let c = f.random_curve_point(&mut rng);
        assert_eq!(f.point_add(&a, &b), f.point_add(&b, &a));
        assert_eq!(
            f.point_add(&f.point_add(&a, &b), &c),
            f.point_add(&a, &f.point_add(&b, &c))
        );
    }

    #[test]
    fn double_equals_add_self() {
        let f = ctx();
        let mut rng = rng();
        let p = f.random_curve_point(&mut rng);
        assert_eq!(f.point_double(&p), f.point_add(&p, &p));
        assert!(f.is_on_curve(&f.point_double(&p)));
    }

    #[test]
    fn scalar_mul_matches_repeated_addition() {
        let f = ctx();
        let mut rng = rng();
        let p = f.random_curve_point(&mut rng);
        let mut acc = Point::Infinity;
        for k in 0u64..20 {
            assert_eq!(f.point_mul(&p, &FpW::from_u64(k)), acc, "k = {k}");
            acc = f.point_add(&acc, &p);
        }
    }

    #[test]
    fn scalar_mul_distributes() {
        let f = ctx();
        let mut rng = rng();
        let p = f.random_curve_point(&mut rng);
        let a = FpW::from_u64(123456789);
        let b = FpW::from_u64(987654321);
        // (a+b)P = aP + bP
        let lhs = f.point_mul(&p, &a.wrapping_add(&b));
        let rhs = f.point_add(&f.point_mul(&p, &a), &f.point_mul(&p, &b));
        assert_eq!(lhs, rhs);
        // (ab)P = a(bP)
        let lhs = f.point_mul(&p, &a.wrapping_mul(&b));
        let rhs = f.point_mul(&f.point_mul(&p, &b), &a);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn group_order_annihilates() {
        // #E(F_p) = p + 1 for this supersingular family.
        let f = ctx();
        let mut rng = rng();
        let p = f.random_curve_point(&mut rng);
        let order = f.modulus().wrapping_add(&FpW::ONE);
        assert_eq!(f.point_mul(&p, &order), Point::Infinity);
    }

    #[test]
    fn mul_by_zero_and_infinity() {
        let f = ctx();
        let mut rng = rng();
        let p = f.random_curve_point(&mut rng);
        assert_eq!(f.point_mul(&p, &FpW::ZERO), Point::Infinity);
        assert_eq!(
            f.point_mul(&Point::Infinity, &FpW::from_u64(7)),
            Point::Infinity
        );
    }

    #[test]
    fn two_torsion_point() {
        // (0, 0) is on the curve and is its own negation: 2·(0,0) = O.
        let f = ctx();
        let p = Point::Affine {
            x: f.zero(),
            y: f.zero(),
        };
        assert!(f.is_on_curve(&p));
        assert_eq!(f.point_double(&p), Point::Infinity);
        assert_eq!(f.point_add(&p, &p), Point::Infinity);
    }

    #[test]
    fn serialization_roundtrip() {
        let f = ctx();
        let mut rng = rng();
        for _ in 0..6 {
            let p = f.random_curve_point(&mut rng);
            let bytes = f.point_to_bytes(&p);
            assert_eq!(f.point_from_bytes(&bytes).unwrap(), p);
        }
        let inf = f.point_to_bytes(&Point::Infinity);
        assert_eq!(f.point_from_bytes(&inf).unwrap(), Point::Infinity);
    }

    #[test]
    fn serialization_rejects_garbage() {
        let f = ctx();
        assert!(f.point_from_bytes(&[]).is_err());
        assert!(f.point_from_bytes(&[0x05, 1, 2]).is_err());
        assert!(f.point_from_bytes(&[0x02, 1, 2, 3]).is_err()); // wrong length
                                                                // x with no curve point: find one by trial.
        let mut rng = rng();
        loop {
            let x = f.random(&mut rng);
            let rhs = f.add(&f.mul(&f.sqr(&x), &x), &x);
            if f.sqrt(&rhs).is_none() {
                let mut bytes = vec![0x02];
                bytes.extend_from_slice(&f.to_bytes(&x));
                assert_eq!(
                    f.point_from_bytes(&bytes).unwrap_err(),
                    PairingError::InvalidPoint
                );
                break;
            }
        }
    }
}
