//! Property-based tests for field, curve and pairing algebra.

use mws_pairing::{FpW, PairingCtx, Point, SecurityLevel};
use proptest::prelude::*;

fn ctx() -> PairingCtx {
    PairingCtx::named(SecurityLevel::Toy)
}

proptest! {
    // The pairing is expensive; keep case counts moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fp_mul_inverse(v in 2u64..u64::MAX) {
        let c = ctx();
        let f = c.field();
        let a = f.from_u64(v);
        let inv = f.inv(&a).unwrap();
        prop_assert_eq!(f.mul(&a, &inv), f.one());
    }

    #[test]
    fn fp_sqrt_of_square(v in 1u64..u64::MAX) {
        let c = ctx();
        let f = c.field();
        let a = f.from_u64(v);
        let r = f.sqrt(&f.sqr(&a)).unwrap();
        prop_assert!(r == a || r == f.neg(&a));
    }

    #[test]
    fn curve_scalar_distributivity(a in 1u64..1_000_000, b in 1u64..1_000_000) {
        let c = ctx();
        let g = c.generator();
        let ka = FpW::from_u64(a);
        let kb = FpW::from_u64(b);
        let lhs = c.mul(&g, &ka.wrapping_add(&kb));
        let rhs = c.add(&c.mul(&g, &ka), &c.mul(&g, &kb));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn curve_point_roundtrip_serialization(k in 1u64..u64::MAX) {
        let c = ctx();
        let f = c.field();
        let p = c.mul(&c.generator(), &FpW::from_u64(k));
        let bytes = f.point_to_bytes(&p);
        prop_assert_eq!(f.point_from_bytes(&bytes).unwrap(), p);
    }

    #[test]
    fn scalar_mul_mod_group_order(k in any::<u64>()) {
        // k·P == (k mod q)·P
        let c = ctx();
        let g = c.generator();
        let k = FpW::from_u64(k);
        let reduced = k.rem(c.group_order());
        prop_assert_eq!(c.mul(&g, &k), c.mul(&g, &reduced));
    }

    #[test]
    fn pairing_bilinearity(a in 1u64..1_000_000_007, b in 1u64..1_000_000_007) {
        let c = ctx();
        let f = c.field();
        let g = c.generator();
        let ka = FpW::from_u64(a);
        let kb = FpW::from_u64(b);
        // e(aP, bP) == e(P, P)^(ab)
        let lhs = c.pairing(&c.mul(&g, &ka), &c.mul(&g, &kb));
        let base = c.pairing(&g, &g);
        let ab = ka.wrapping_mul(&kb).rem(c.group_order());
        prop_assert_eq!(lhs, f.fp2_pow(&base, &ab));
    }

    #[test]
    fn pairing_values_in_mu_q(k in 1u64..u64::MAX) {
        let c = ctx();
        let f = c.field();
        let p = c.mul(&c.generator(), &FpW::from_u64(k));
        let e = c.pairing(&p, &c.generator());
        prop_assert_eq!(f.fp2_pow(&e, c.group_order()), f.fp2_one());
    }

    #[test]
    fn projective_equals_affine_pairing(a in 1u64..u64::MAX, b in 1u64..u64::MAX) {
        let c = ctx();
        let g = c.generator();
        let pa = c.mul(&g, &FpW::from_u64(a));
        let pb = c.mul(&g, &FpW::from_u64(b));
        prop_assert_eq!(c.pairing(&pa, &pb), c.pairing_projective(&pa, &pb));
    }

    #[test]
    fn hash_to_point_subgroup(msg in prop::collection::vec(any::<u8>(), 0..64)) {
        let c = ctx();
        let p = c.hash_to_point(&msg);
        prop_assert!(c.field().is_on_curve(&p));
        prop_assert!(!p.is_infinity());
        prop_assert!(matches!(c.mul(&p, c.group_order()), Point::Infinity));
    }
}
