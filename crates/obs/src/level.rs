//! Severity levels and the process-global level gate.
//!
//! The gate is a single `AtomicU8` (0 = logging off); [`enabled`] is a
//! relaxed load plus a compare, which is what keeps a disabled event
//! affordable on the deposit hot path.

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};

/// Event severity, from most severe (`Error`) to least (`Trace`).
///
/// The discriminants are the wire/gate encoding: a level is enabled
/// when its discriminant is ≤ the global maximum.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Level {
    /// A request failed in a way an operator should look at.
    Error = 1,
    /// Degraded but self-healing: retries, breaker trips, torn WAL tails.
    Warn = 2,
    /// Lifecycle milestones: listening, shutdown, recovery summary.
    Info = 3,
    /// Per-request outcomes.
    Debug = 4,
    /// Per-hop internals; only for chasing a specific trace id.
    Trace = 5,
}

impl Level {
    /// The canonical lowercase name (`"error"` .. `"trace"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error from parsing a level name; carries nothing, the input was
/// simply not one of `error|warn|info|debug|trace|off`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLevelError;

impl fmt::Display for ParseLevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("expected one of: off, error, warn, info, debug, trace")
    }
}

impl std::error::Error for ParseLevelError {}

impl FromStr for Level {
    type Err = ParseLevelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            _ => Err(ParseLevelError),
        }
    }
}

/// The global gate; 0 means logging is off entirely.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);

/// Whether events at `level` currently pass the global gate.
///
/// This is the whole cost of a disabled event: one relaxed load.
#[inline]
pub fn enabled(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Sets the global gate; `None` turns logging off.
pub fn set_max_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map_or(0, |l| l as u8), Ordering::Relaxed);
}

/// The current global gate, `None` when logging is off.
pub fn max_level() -> Option<Level> {
    match MAX_LEVEL.load(Ordering::Relaxed) {
        1 => Some(Level::Error),
        2 => Some(Level::Warn),
        3 => Some(Level::Info),
        4 => Some(Level::Debug),
        5 => Some(Level::Trace),
        _ => None,
    }
}

/// Serializes tests that mutate process-global logging state (the gate
/// and the sink list), so parallel test threads cannot race each other.
#[cfg(test)]
pub(crate) fn gate_guard() -> std::sync::MutexGuard<'static, ()> {
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_names_round_trip() {
        for level in [
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
            Level::Trace,
        ] {
            assert_eq!(level.as_str().parse::<Level>(), Ok(level));
        }
        assert_eq!("WARNING".parse::<Level>(), Ok(Level::Warn));
        assert_eq!(" Info ".parse::<Level>(), Ok(Level::Info));
        assert!("verbose".parse::<Level>().is_err());
        assert!("off".parse::<Level>().is_err());
    }

    #[test]
    fn gate_orders_levels() {
        let _gate = gate_guard();
        let before = max_level();
        set_max_level(Some(Level::Warn));
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        assert!(!enabled(Level::Trace));
        set_max_level(None);
        assert!(!enabled(Level::Error));
        set_max_level(before);
    }
}
