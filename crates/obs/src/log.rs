//! Structured events, the sink fan-out, and the stderr/ring sinks.
//!
//! A [`Record`] is born already stamped with the thread's current
//! [`trace::TraceContext`](crate::trace::TraceContext) and a monotonic
//! elapsed-time offset, then handed to every installed [`Sink`]. Sinks
//! are installed once at startup (daemons: [`init_from_env`]) or per
//! test ([`RingSink`]); dispatch takes a read lock only.

use crate::level::Level;
use crate::trace::TraceContext;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock, RwLock};
use std::time::Instant;

/// A typed field value on a [`Record`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Text (endpoint names, error strings — never identities or payload).
    Str(String),
    /// Unsigned scalar (counts, sizes, ports, latencies).
    U64(u64),
    /// Signed scalar.
    I64(i64),
    /// Floating-point scalar (rates).
    F64(f64),
    /// Flag.
    Bool(bool),
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v.into())
    }
}
impl From<u16> for Value {
    fn from(v: u16) -> Self {
        Value::U64(v.into())
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(v.into())
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // Quote text only when it would break the key=value grammar.
            Value::Str(s) if s.contains([' ', '=', '"']) => write!(f, "{s:?}"),
            Value::Str(s) => f.write_str(s),
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// One structured event, as delivered to every sink.
#[derive(Clone, Debug)]
pub struct Record {
    /// Severity.
    pub level: Level,
    /// The emitting component (crate or subsystem name, static).
    pub target: &'static str,
    /// Human-readable summary; dynamics belong in `fields`.
    pub message: String,
    /// Typed key/value details.
    pub fields: Vec<(&'static str, Value)>,
    /// The trace scope current on the emitting thread, if any.
    pub trace: Option<TraceContext>,
    /// Microseconds since this process first touched the logger.
    pub elapsed_us: u64,
}

fn process_start() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

impl Record {
    /// Builds a record stamped with the current trace scope and clock.
    pub fn new(level: Level, target: &'static str, message: impl Into<String>) -> Self {
        Record {
            level,
            target,
            message: message.into(),
            fields: Vec::new(),
            trace: crate::trace::current(),
            elapsed_us: process_start().elapsed().as_micros().min(u64::MAX as u128) as u64,
        }
    }

    /// Appends one field (builder-style, used by the event macros).
    pub fn with(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    /// Looks up a field by key (first match).
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// Receives every record that passes the level gate.
///
/// Sinks must not block for long and must never re-enter the transport
/// or store layers they observe: dispatch may run while the caller
/// holds locks of its own (e.g. the in-process bus lock).
pub trait Sink: Send + Sync {
    /// Handles one event. Records arrive by reference; clone to retain.
    fn accept(&self, record: &Record);
}

static SINKS: RwLock<Vec<Arc<dyn Sink>>> = RwLock::new(Vec::new());

/// Installs an additional sink (daemon stderr, test ring buffer, ...).
pub fn add_sink(sink: Arc<dyn Sink>) {
    SINKS.write().unwrap_or_else(|e| e.into_inner()).push(sink);
}

/// Removes every installed sink (test isolation).
pub fn clear_sinks() {
    SINKS.write().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Fans a record out to every installed sink.
///
/// Callers normally go through the [`event!`](crate::event!) macros,
/// which check [`enabled`](crate::enabled) first.
pub fn dispatch(record: Record) {
    for sink in SINKS.read().unwrap_or_else(|e| e.into_inner()).iter() {
        sink.accept(&record);
    }
}

/// Renders a record in the stderr line format:
///
/// ```text
/// [   0.123456 WARN  mws_server] retry exhausted attempts=3 trace=4be63a…/09f2c1…
/// ```
pub fn format_record(record: &Record) -> String {
    let secs = record.elapsed_us / 1_000_000;
    let micros = record.elapsed_us % 1_000_000;
    let mut line = format!(
        "[{secs:>4}.{micros:06} {:<5} {}] {}",
        record.level.as_str().to_ascii_uppercase(),
        record.target,
        record.message
    );
    for (key, value) in &record.fields {
        let _ = write!(line, " {key}={value}");
    }
    if let Some(ctx) = record.trace {
        let _ = write!(line, " trace={:016x}/{:016x}", ctx.trace_id, ctx.span_id);
    }
    line
}

/// Writes the line format to stderr, one `write` per record so lines
/// from concurrent threads do not interleave.
pub struct StderrSink;

impl Sink for StderrSink {
    fn accept(&self, record: &Record) {
        let mut line = format_record(record);
        line.push('\n');
        let _ = std::io::stderr().lock().write_all(line.as_bytes());
    }
}

/// A fixed-capacity in-memory ring buffer of records.
///
/// The slot claim is a single lock-free `fetch_add`; each slot then has
/// its own uncontended mutex for the record move. Old records are
/// overwritten once the ring wraps. Intended for tests that assert on
/// emitted events ([`records`](RingSink::records) returns them in
/// arrival order).
pub struct RingSink {
    head: AtomicU64,
    slots: Vec<Mutex<Option<(u64, Record)>>>,
}

impl RingSink {
    /// Creates a ring holding the last `capacity` records (min 1).
    pub fn new(capacity: usize) -> Arc<Self> {
        let capacity = capacity.max(1);
        Arc::new(RingSink {
            head: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        })
    }

    /// The records currently held, oldest first.
    pub fn records(&self) -> Vec<Record> {
        let mut held: Vec<(u64, Record)> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .collect();
        held.sort_by_key(|(seq, _)| *seq);
        held.into_iter().map(|(_, record)| record).collect()
    }

    /// Total records ever accepted (not capped by capacity).
    pub fn accepted(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Drops every held record (the sequence counter keeps running).
    pub fn clear(&self) {
        for slot in &self.slots {
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = None;
        }
    }
}

impl Sink for RingSink {
    fn accept(&self, record: &Record) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let idx = (seq % self.slots.len() as u64) as usize;
        *self.slots[idx].lock().unwrap_or_else(|e| e.into_inner()) = Some((seq, record.clone()));
    }
}

/// Configures logging from the `MWS_LOG` environment variable.
///
/// `MWS_LOG=error|warn|info|debug|trace` sets the gate and installs the
/// stderr sink; unset, empty or `off` leaves logging disabled. An
/// unrecognized value falls back to `info` (and says so), because a
/// typo'd filter silently swallowing everything is worse. Idempotent —
/// daemons, examples and tests may all call it.
pub fn init_from_env() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        let Ok(raw) = std::env::var("MWS_LOG") else {
            return;
        };
        let raw = raw.trim().to_string();
        if raw.is_empty() || raw.eq_ignore_ascii_case("off") {
            return;
        }
        let (level, fallback) = match raw.parse::<Level>() {
            Ok(level) => (level, false),
            Err(_) => (Level::Info, true),
        };
        crate::set_max_level(Some(level));
        add_sink(Arc::new(StderrSink));
        if fallback {
            crate::warn!(target: "mws_obs", "unrecognized MWS_LOG value, using info",
                         value = raw);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::gate_guard;

    fn record(level: Level, msg: &str) -> Record {
        Record {
            level,
            target: "obs_log_test",
            message: msg.to_string(),
            fields: Vec::new(),
            trace: None,
            elapsed_us: 1_234_567,
        }
    }

    #[test]
    fn line_format_is_stable_and_readable() {
        let mut rec = record(Level::Warn, "retry exhausted");
        rec.fields.push(("attempts", Value::U64(3)));
        rec.fields
            .push(("error", Value::Str("connection reset".into())));
        rec.trace = Some(TraceContext {
            trace_id: 0x4be6_3a00_0000_0001,
            span_id: 0x09f2,
        });
        let line = format_record(&rec);
        assert_eq!(
            line,
            "[   1.234567 WARN  obs_log_test] retry exhausted attempts=3 \
             error=\"connection reset\" trace=4be63a0000000001/00000000000009f2"
        );
    }

    #[test]
    fn plain_string_fields_stay_unquoted() {
        let mut rec = record(Level::Info, "listening");
        rec.fields.push(("role", Value::Str("mms".into())));
        assert!(format_record(&rec).ends_with("listening role=mms"));
    }

    #[test]
    fn ring_sink_keeps_the_last_capacity_records_in_order() {
        let ring = RingSink::new(4);
        for i in 0..10u64 {
            ring.accept(&record(Level::Debug, &format!("event-{i}")));
        }
        let messages: Vec<String> = ring.records().into_iter().map(|r| r.message).collect();
        assert_eq!(messages, ["event-6", "event-7", "event-8", "event-9"]);
        assert_eq!(ring.accepted(), 10);
        ring.clear();
        assert!(ring.records().is_empty());
        assert_eq!(ring.accepted(), 10, "clear must not rewind the counter");
    }

    #[test]
    fn dispatch_fans_out_to_every_sink() {
        let _gate = gate_guard();
        let a = RingSink::new(4);
        let b = RingSink::new(4);
        add_sink(a.clone() as Arc<dyn Sink>);
        add_sink(b.clone() as Arc<dyn Sink>);
        dispatch(record(Level::Info, "fan-out-probe"));
        assert!(a.records().iter().any(|r| r.message == "fan-out-probe"));
        assert!(b.records().iter().any(|r| r.message == "fan-out-probe"));
    }

    #[test]
    fn record_new_captures_the_current_trace_scope() {
        let ctx = crate::trace::mint();
        let _guard = crate::trace::enter(ctx);
        let rec = Record::new(Level::Debug, "obs_log_test", "scoped");
        assert_eq!(rec.trace, Some(ctx));
        drop(_guard);
        let rec = Record::new(Level::Debug, "obs_log_test", "unscoped");
        assert_eq!(rec.trace, None);
    }
}
