//! Trace-context minting and thread-local propagation.
//!
//! A [`TraceContext`] is a 64-bit trace id (constant for one end-to-end
//! operation, e.g. a deposit) plus a 64-bit span id (fresh per hop).
//! The SD/RC client mints a context at operation start and [`enter`]s
//! it; the transport layer reads [`current`] to stamp outgoing frames,
//! and servers re-[`enter`] the received context around their handler,
//! so every log event and audit record along the path carries the same
//! trace id — across all four processes of the topology.
//!
//! Ids are *not* security material: they are splitmix64 outputs over a
//! per-process seeded counter, unique enough to grep by, and carry no
//! information about identities or payloads.

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// The per-operation trace id plus per-hop span id.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Constant across every hop of one end-to-end operation.
    pub trace_id: u64,
    /// Fresh for each hop (client call, server handle, relay leg).
    pub span_id: u64,
}

thread_local! {
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// The context entered on this thread, if any.
#[inline]
pub fn current() -> Option<TraceContext> {
    CURRENT.with(Cell::get)
}

/// Restores the previously entered context when dropped.
///
/// Deliberately `!Send`: a guard must drop on the thread that entered.
pub struct SpanGuard {
    prev: Option<TraceContext>,
    _thread_bound: PhantomData<*const ()>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Makes `ctx` the thread's current context until the guard drops;
/// scopes nest (the previous context is restored).
#[must_use = "the context is current only while the guard lives"]
pub fn enter(ctx: TraceContext) -> SpanGuard {
    let prev = CURRENT.with(|c| c.replace(Some(ctx)));
    SpanGuard {
        prev,
        _thread_bound: PhantomData,
    }
}

/// Mints a fresh context (new trace id, new span id) — the start of an
/// end-to-end operation at an SD or RC client.
pub fn mint() -> TraceContext {
    TraceContext {
        trace_id: next_id(),
        span_id: next_id(),
    }
}

/// A new hop within an existing trace: same trace id, fresh span id.
pub fn child_of(ctx: TraceContext) -> TraceContext {
    TraceContext {
        trace_id: ctx.trace_id,
        span_id: next_id(),
    }
}

fn process_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        nanos ^ (u64::from(std::process::id()).rotate_left(32))
    })
}

/// Fibonacci hashing constant; stepping the counter by it keeps
/// consecutive splitmix64 inputs well separated.
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

fn next_id() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(GOLDEN, Ordering::Relaxed);
    let id = splitmix64(process_seed().wrapping_add(n));
    // Zero is reserved as "absent" in wire encodings; remap it.
    if id == 0 {
        1
    } else {
        id
    }
}

/// The splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(GOLDEN);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enter_scopes_nest_and_restore() {
        assert_eq!(current(), None);
        let outer = mint();
        let g1 = enter(outer);
        assert_eq!(current(), Some(outer));
        {
            let inner = child_of(outer);
            let _g2 = enter(inner);
            assert_eq!(current(), Some(inner));
            assert_eq!(inner.trace_id, outer.trace_id, "child keeps the trace id");
            assert_ne!(inner.span_id, outer.span_id, "child gets a fresh span");
        }
        assert_eq!(
            current(),
            Some(outer),
            "inner guard restored the outer scope"
        );
        drop(g1);
        assert_eq!(current(), None);
    }

    #[test]
    fn minted_ids_are_distinct_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let ctx = mint();
            assert_ne!(ctx.trace_id, 0);
            assert_ne!(ctx.span_id, 0);
            assert!(seen.insert(ctx.trace_id), "trace ids must not collide");
            assert!(seen.insert(ctx.span_id), "span ids must not collide");
        }
    }

    #[test]
    fn scopes_are_per_thread() {
        let ctx = mint();
        let _g = enter(ctx);
        let other = std::thread::spawn(current).join().unwrap();
        assert_eq!(other, None, "a new thread starts with no scope");
        assert_eq!(current(), Some(ctx));
    }
}
