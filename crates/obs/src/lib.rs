//! Observability substrate for the MWS reproduction: structured leveled
//! logging, a metrics registry, and trace-context propagation.
//!
//! The MWS brokers deposits between parties that must not see each
//! other's data, so black-box behavior is the only view operators get.
//! This crate is the measurement plane threaded through every layer:
//!
//! * [`log`]-style **events** — leveled (`error..trace`), structured
//!   (typed key/value fields), fanned out to pluggable [`Sink`]s
//!   (stderr line format for daemons, an in-memory [`RingSink`] for
//!   tests). The global level gate is a single relaxed atomic load, so
//!   a disabled event costs a branch and nothing else.
//! * **Metrics** — named [`Counter`]s, [`Gauge`]s and log-linear
//!   latency [`Histogram`]s in a process-global [`Registry`], rendered
//!   as Prometheus-style `name{label="v"} value` text by
//!   [`Registry::exposition`]. Handles are cheap `Arc` clones over
//!   relaxed atomics: preregister once, update on the hot path.
//! * **Traces** — a 64-bit trace id plus per-hop span id
//!   ([`trace::TraceContext`]), carried in a thread-local scope
//!   ([`trace::enter`]) and stamped on every event a hop emits, so one
//!   deposit can be followed client → gatekeeper → MMS → store fsync →
//!   PKG ticket across all four processes.
//!
//! Confidentiality constraint (DESIGN.md §7): metric names, labels and
//! event fields must never carry identities, message plaintext, keys or
//! ciphertext. Cardinality stays bounded and the stats plane reveals
//! only what the paper already concedes to the warehouse operator:
//! traffic shape and timing.
//!
//! This crate depends on `std` alone — no external crates — so it can
//! sit below `mws-wire` without joining any dependency cycle and builds
//! unchanged under the offline stub patch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod level;
mod log;
mod metrics;
pub mod trace;

pub use level::{enabled, max_level, set_max_level, Level, ParseLevelError};
pub use log::{
    add_sink, clear_sinks, dispatch, format_record, init_from_env, Record, RingSink, Sink,
    StderrSink, Value,
};
pub use metrics::{metric_name, registry, Counter, Gauge, Histogram, HistogramSnapshot, Registry};

/// Emits a structured event at an explicit level.
///
/// Field values are evaluated **only** when the level is enabled, so a
/// disabled event costs one relaxed atomic load and a branch.
///
/// ```
/// mws_obs::event!(mws_obs::Level::Info, target: "doc", "listening",
///                 port = 7101u64, role = "mms");
/// ```
#[macro_export]
macro_rules! event {
    ($level:expr, target: $target:expr, $msg:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::enabled($level) {
            $crate::dispatch(
                $crate::Record::new($level, $target, $msg)
                    $(.with(stringify!($key), $val))*
            );
        }
    };
}

/// Emits an [`Level::Error`] event. See [`event!`] for the field syntax.
#[macro_export]
macro_rules! error {
    (target: $target:expr, $($rest:tt)*) => {
        $crate::event!($crate::Level::Error, target: $target, $($rest)*)
    };
}

/// Emits a [`Level::Warn`] event. See [`event!`] for the field syntax.
#[macro_export]
macro_rules! warn {
    (target: $target:expr, $($rest:tt)*) => {
        $crate::event!($crate::Level::Warn, target: $target, $($rest)*)
    };
}

/// Emits an [`Level::Info`] event. See [`event!`] for the field syntax.
#[macro_export]
macro_rules! info {
    (target: $target:expr, $($rest:tt)*) => {
        $crate::event!($crate::Level::Info, target: $target, $($rest)*)
    };
}

/// Emits a [`Level::Debug`] event. See [`event!`] for the field syntax.
#[macro_export]
macro_rules! debug {
    (target: $target:expr, $($rest:tt)*) => {
        $crate::event!($crate::Level::Debug, target: $target, $($rest)*)
    };
}

/// Emits a [`Level::Trace`] event. See [`event!`] for the field syntax.
#[macro_export]
macro_rules! trace {
    (target: $target:expr, $($rest:tt)*) => {
        $crate::event!($crate::Level::Trace, target: $target, $($rest)*)
    };
}

#[cfg(test)]
mod macro_tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn disabled_event_does_not_evaluate_fields() {
        let _gate = crate::level::gate_guard();
        let before = max_level();
        set_max_level(None);
        let mut evaluated = false;
        crate::trace!(target: "obs_test", "never", cost = {
            evaluated = true;
            1u64
        });
        assert!(!evaluated, "disabled event must not evaluate its fields");
        set_max_level(before);
    }

    #[test]
    fn enabled_event_reaches_installed_sink() {
        let _gate = crate::level::gate_guard();
        let ring = RingSink::new(8);
        add_sink(ring.clone() as Arc<dyn Sink>);
        let before = max_level();
        set_max_level(Some(Level::Debug));
        crate::debug!(target: "obs_macro_test", "hello", answer = 42u64, who = "world");
        set_max_level(before);
        let records = ring.records();
        let rec = records
            .iter()
            .find(|r| r.target == "obs_macro_test")
            .expect("event captured");
        assert_eq!(rec.message, "hello");
        assert_eq!(rec.field("answer"), Some(&Value::U64(42)));
        assert_eq!(rec.field("who"), Some(&Value::Str("world".into())));
    }
}
