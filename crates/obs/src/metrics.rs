//! Counters, gauges, log-linear histograms, and the named registry.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-backed:
//! look one up once (registration takes a map lock), keep the clone,
//! and every hot-path update is a relaxed atomic operation. Histograms
//! bucket on a log-linear grid — four sub-buckets per power of two —
//! so a 257-slot table covers the full `u64` range with ≤ ~19% relative
//! quantile error, which is plenty to tell a 200µs fsync from a 2ms one.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero (normally obtained via [`Registry::counter`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depths, open connections).
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh gauge at zero (normally obtained via [`Registry::gauge`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Sub-buckets per power of two; 2 bits of mantissa.
const SUB_BITS: u32 = 2;
const SUBS: usize = 1 << SUB_BITS;
/// Bucket 0 holds the value 0; then 4 sub-buckets for each of 64 octaves.
const BUCKETS: usize = 1 + 64 * SUBS;

/// The bucket a value lands in.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        return 0;
    }
    let octave = (63 - v.leading_zeros()) as usize;
    let sub = if octave >= SUB_BITS as usize {
        ((v >> (octave - SUB_BITS as usize)) & (SUBS as u64 - 1)) as usize
    } else {
        // Octaves 0 and 1 hold fewer than SUBS distinct values; the
        // offset from the octave base is the sub-bucket directly.
        (v - (1u64 << octave)) as usize
    };
    1 + octave * SUBS + sub
}

/// The largest value that maps to `index` (quantiles report this bound).
fn bucket_upper(index: usize) -> u64 {
    if index == 0 {
        return 0;
    }
    let octave = (index - 1) / SUBS;
    let sub = ((index - 1) % SUBS) as u64;
    if octave < SUB_BITS as usize {
        // Octaves 0 and 1 have unused sub-bucket slots; clamp their
        // bound to the octave top so the bound stays monotone in index.
        ((1u64 << octave) + sub).min((1u64 << (octave + 1)) - 1)
    } else {
        let shift = (octave - SUB_BITS as usize) as u32;
        let lower = (SUBS as u64 + sub) << shift;
        lower + ((1u64 << shift) - 1)
    }
}

struct HistogramInner {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A log-linear latency/size histogram over `u64` values.
///
/// Updates are relaxed atomics (one CAS-loop add per cell touched);
/// counts and sums saturate instead of wrapping, so a histogram fed
/// forever degrades to pinned quantiles rather than garbage.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

fn saturating_add(cell: &AtomicU64, n: u64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_add(n);
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

impl Histogram {
    /// A fresh histogram (normally obtained via [`Registry::histogram`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of the same value.
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        saturating_add(&self.0.buckets[bucket_index(value)], n);
        saturating_add(&self.0.count, n);
        saturating_add(&self.0.sum, value.saturating_mul(n));
        self.0.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in microseconds (the convention for every
    /// `*_us` metric in this workspace).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// A point-in-time snapshot with p50/p90/p99/max.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u128 = buckets.iter().map(|&b| b as u128).sum();
        let max = self.0.max.load(Ordering::Relaxed);
        let quantile = |num: u128, den: u128| -> u64 {
            if total == 0 {
                return 0;
            }
            // 1-based rank of the requested quantile, ceiling division.
            let rank = ((total * num).div_ceil(den)).max(1);
            let mut cumulative: u128 = 0;
            for (idx, &in_bucket) in buckets.iter().enumerate() {
                cumulative += in_bucket as u128;
                if cumulative >= rank {
                    // The bucket bound over-reports by up to one
                    // sub-bucket width; never past the observed max.
                    return bucket_upper(idx).min(max);
                }
            }
            max
        };
        HistogramSnapshot {
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
            max,
            p50: quantile(50, 100),
            p90: quantile(90, 100),
            p99: quantile(99, 100),
        }
    }
}

/// The result of [`Histogram::snapshot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded (saturating).
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Median estimate (bucket upper bound, clamped to `max`).
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named collection of metrics with a text exposition.
///
/// Names carry their labels inline, already serialized —
/// `mws_server_requests_total{role="mms"}` — which keeps lookup a
/// single string compare and makes the exposition a straight dump.
/// Use [`metric_name`] to build labeled names. One process-global
/// registry ([`registry`]) backs the stats plane; tests can construct
/// private ones.
#[derive(Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry (tests; daemons use the global [`registry`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, created on first use.
    ///
    /// If `name` is already a different metric kind, a detached handle
    /// is returned rather than panicking in a hot path (the mismatch is
    /// a programming error; debug builds assert).
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(Metric::Counter(c)) = self.read().get(name) {
            return c.clone();
        }
        match self
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            _ => {
                debug_assert!(false, "metric {name} registered with a different kind");
                Counter::new()
            }
        }
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(Metric::Gauge(g)) = self.read().get(name) {
            return g.clone();
        }
        match self
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => {
                debug_assert!(false, "metric {name} registered with a different kind");
                Gauge::new()
            }
        }
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(Metric::Histogram(h)) = self.read().get(name) {
            return h.clone();
        }
        match self
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => {
                debug_assert!(false, "metric {name} registered with a different kind");
                Histogram::new()
            }
        }
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, Metric>> {
        self.metrics.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, BTreeMap<String, Metric>> {
        self.metrics.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Prometheus-style text exposition, sorted by metric name.
    ///
    /// Counters and gauges emit one `name value` line. A histogram
    /// expands to `{quantile="…"}` lines plus `_count`/`_sum`/`_max`:
    ///
    /// ```text
    /// mws_core_deposit_us{quantile="0.5"} 410
    /// mws_core_deposit_us_count 12
    /// ```
    pub fn exposition(&self) -> String {
        let mut out = String::new();
        for (name, metric) in self.read().iter() {
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    for (q, v) in [("0.5", snap.p50), ("0.9", snap.p90), ("0.99", snap.p99)] {
                        let labeled = add_label(name, "quantile", q);
                        let _ = writeln!(out, "{labeled} {v}");
                    }
                    for (suffix, v) in [("count", snap.count), ("sum", snap.sum), ("max", snap.max)]
                    {
                        let _ = writeln!(out, "{} {v}", add_suffix(name, suffix));
                    }
                }
            }
        }
        out
    }
}

/// The process-global registry behind the Stats PDU on every daemon.
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Serializes `base{k1="v1",k2="v2"}`. Labels must be low-cardinality
/// operational dimensions (role, pdu type, outcome) — never identities,
/// plaintext or key material (DESIGN.md §7).
pub fn metric_name(base: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return base.to_string();
    }
    let mut out = String::with_capacity(base.len() + 16 * labels.len());
    out.push_str(base);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
    out
}

/// Appends one more label to an already-serialized metric name.
fn add_label(name: &str, key: &str, value: &str) -> String {
    match name.strip_suffix('}') {
        Some(prefix) => format!("{prefix},{key}=\"{value}\"}}"),
        None => format!("{name}{{{key}=\"{value}\"}}"),
    }
}

/// Appends `_suffix` to the base name, before any label block.
fn add_suffix(name: &str, suffix: &str) -> String {
    match name.find('{') {
        Some(brace) => format!("{}_{suffix}{}", &name[..brace], &name[brace..]),
        None => format!("{name}_{suffix}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = Registry::new();
        let c = reg.counter("requests_total");
        c.inc();
        c.add(4);
        // A second lookup returns a handle over the same cell.
        assert_eq!(reg.counter("requests_total").get(), 5);
        let g = reg.gauge("queue_depth");
        g.set(7);
        g.add(-3);
        assert_eq!(reg.gauge("queue_depth").get(), 4);
    }

    #[test]
    fn kind_mismatch_yields_detached_handle_in_release() {
        let reg = Registry::new();
        reg.counter("shape_shifter").inc();
        // In debug builds this would assert; the release contract is a
        // detached handle that cannot corrupt the registered metric.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            reg.gauge("shape_shifter").set(99);
        }));
        if result.is_ok() {
            assert_eq!(reg.counter("shape_shifter").get(), 1);
        }
    }

    #[test]
    fn bucket_index_and_upper_are_consistent() {
        let samples = [
            0u64,
            1,
            2,
            3,
            4,
            5,
            7,
            8,
            100,
            1_000,
            4_095,
            4_096,
            1 << 20,
            (1 << 40) + 12345,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut last_idx = 0;
        for &v in &samples {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "index in range for {v}");
            assert!(v <= bucket_upper(idx), "upper bound covers {v}");
            if idx > 0 {
                // The previous bucket's upper bound sits strictly below v.
                assert!(bucket_upper(idx - 1) < v, "lower bound excludes {v}");
            }
            assert!(idx >= last_idx, "index monotone in value");
            last_idx = idx;
        }
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_zero_samples_snapshot_is_all_zero() {
        let h = Histogram::new();
        let snap = h.snapshot();
        assert_eq!(
            snap,
            HistogramSnapshot {
                count: 0,
                sum: 0,
                max: 0,
                p50: 0,
                p90: 0,
                p99: 0
            }
        );
    }

    #[test]
    fn histogram_single_sample_reports_it_at_every_quantile() {
        let h = Histogram::new();
        h.record(777);
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum, 777);
        // Quantile estimates are bucket bounds clamped to the observed
        // max, so a single sample is reported exactly.
        assert_eq!(
            (snap.p50, snap.p90, snap.p99, snap.max),
            (777, 777, 777, 777)
        );
    }

    #[test]
    fn histogram_counts_and_sums_saturate_instead_of_wrapping() {
        let h = Histogram::new();
        h.record_n(u64::MAX, 3);
        h.record_n(10, u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count, u64::MAX, "count saturates");
        assert_eq!(snap.sum, u64::MAX, "sum saturates");
        assert_eq!(snap.max, u64::MAX);
        // Quantiles stay well-defined (and monotone) even fully saturated.
        assert!(snap.p50 <= snap.p90 && snap.p90 <= snap.p99 && snap.p99 <= snap.max);
        assert!(
            (10..=11).contains(&snap.p50),
            "the saturating bulk dominates the median (bucket bound): {}",
            snap.p50
        );
    }

    #[test]
    fn histogram_quantiles_are_monotone() {
        // A few deliberately lopsided shapes plus a pseudo-random spread.
        let shapes: Vec<Vec<u64>> = vec![
            vec![5; 100],
            (0..1000).collect(),
            (0..1000).rev().collect(),
            vec![1, u64::MAX],
            (0..500).map(|i| (i * 2_654_435_761) % 100_000).collect(),
        ];
        for values in shapes {
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let snap = h.snapshot();
            assert!(
                snap.p50 <= snap.p90 && snap.p90 <= snap.p99 && snap.p99 <= snap.max,
                "monotone violated: {snap:?} for {} samples",
                values.len()
            );
            let top = *values.iter().max().unwrap();
            assert_eq!(snap.max, top, "max is exact");
        }
    }

    #[test]
    fn histogram_quantile_error_is_bounded() {
        // Log-linear with 4 sub-buckets: relative over-report < 25%.
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        for (q, est) in [(0.5, snap.p50), (0.9, snap.p90), (0.99, snap.p99)] {
            let exact = (q * 10_000f64) as u64;
            assert!(est >= exact, "estimate must not under-report {q}");
            assert!(
                (est as f64) < exact as f64 * 1.25,
                "p{q}: {est} too far above exact {exact}"
            );
        }
    }

    #[test]
    fn exposition_renders_all_three_kinds() {
        let reg = Registry::new();
        reg.counter(&metric_name("req_total", &[("role", "mms")]))
            .add(3);
        reg.gauge("depth").set(-2);
        let h = reg.histogram(&metric_name("lat_us", &[("pdu", "deposit")]));
        h.record(100);
        h.record(200);
        let text = reg.exposition();
        assert!(text.contains("req_total{role=\"mms\"} 3\n"), "{text}");
        assert!(text.contains("depth -2\n"), "{text}");
        assert!(
            text.contains("lat_us{pdu=\"deposit\",quantile=\"0.5\"} "),
            "{text}"
        );
        assert!(text.contains("lat_us_count{pdu=\"deposit\"} 2\n"), "{text}");
        assert!(text.contains("lat_us_sum{pdu=\"deposit\"} 300\n"), "{text}");
        assert!(text.contains("lat_us_max{pdu=\"deposit\"} 200\n"), "{text}");
    }

    #[test]
    fn metric_name_serializes_labels_in_order() {
        assert_eq!(metric_name("x", &[]), "x");
        assert_eq!(
            metric_name("x", &[("a", "1"), ("b", "2")]),
            "x{a=\"1\",b=\"2\"}"
        );
    }
}
