//! Per-endpoint wire metrics.

/// Counters for one endpoint (or one client link).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkMetrics {
    /// Requests delivered to the service.
    pub requests: u64,
    /// Requests/responses dropped by fault injection.
    pub dropped: u64,
    /// Bytes received by the service (framed requests).
    pub bytes_in: u64,
    /// Bytes emitted by the service (framed responses).
    pub bytes_out: u64,
    /// Modeled network time accumulated on the virtual clock (µs).
    pub virtual_us: u64,
    /// Messages delivered twice by fault injection.
    pub duplicates: u64,
    /// Exchanges reset mid-flight by fault injection (request delivered,
    /// reply lost).
    pub resets: u64,
}

impl LinkMetrics {
    /// Total bytes in both directions.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_in + self.bytes_out
    }

    /// The change since `prev`, an earlier snapshot of the same link.
    ///
    /// [`Network::metrics`](crate::Network::metrics) hands out
    /// point-in-time copies; tests that exercise one phase of a scenario
    /// want "what happened since my snapshot" without hand-subtracting
    /// seven fields. Saturating, so a rebound (reset) endpoint yields
    /// zeros rather than wrapping.
    pub fn delta(&self, prev: &LinkMetrics) -> LinkMetrics {
        LinkMetrics {
            requests: self.requests.saturating_sub(prev.requests),
            dropped: self.dropped.saturating_sub(prev.dropped),
            bytes_in: self.bytes_in.saturating_sub(prev.bytes_in),
            bytes_out: self.bytes_out.saturating_sub(prev.bytes_out),
            virtual_us: self.virtual_us.saturating_sub(prev.virtual_us),
            duplicates: self.duplicates.saturating_sub(prev.duplicates),
            resets: self.resets.saturating_sub(prev.resets),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let m = LinkMetrics {
            requests: 2,
            dropped: 1,
            bytes_in: 10,
            bytes_out: 30,
            virtual_us: 5,
            ..Default::default()
        };
        assert_eq!(m.bytes_total(), 40);
        assert_eq!(LinkMetrics::default().bytes_total(), 0);
    }

    #[test]
    fn delta_subtracts_fieldwise_and_saturates() {
        let prev = LinkMetrics {
            requests: 2,
            dropped: 1,
            bytes_in: 10,
            bytes_out: 30,
            virtual_us: 5,
            duplicates: 1,
            resets: 1,
        };
        let now = LinkMetrics {
            requests: 7,
            dropped: 1,
            bytes_in: 110,
            bytes_out: 90,
            virtual_us: 25,
            duplicates: 3,
            resets: 1,
        };
        let d = now.delta(&prev);
        assert_eq!(d.requests, 5);
        assert_eq!(d.dropped, 0);
        assert_eq!(d.bytes_in, 100);
        assert_eq!(d.bytes_out, 60);
        assert_eq!(d.virtual_us, 20);
        assert_eq!(d.duplicates, 2);
        assert_eq!(d.resets, 0);
        // A restarted endpoint (counters rewound) must not wrap.
        assert_eq!(prev.delta(&now), LinkMetrics::default());
        // Self-delta is zero.
        assert_eq!(now.delta(&now), LinkMetrics::default());
    }
}
