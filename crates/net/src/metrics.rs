//! Per-endpoint wire metrics.

/// Counters for one endpoint (or one client link).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkMetrics {
    /// Requests delivered to the service.
    pub requests: u64,
    /// Requests/responses dropped by fault injection.
    pub dropped: u64,
    /// Bytes received by the service (framed requests).
    pub bytes_in: u64,
    /// Bytes emitted by the service (framed responses).
    pub bytes_out: u64,
    /// Modeled network time accumulated on the virtual clock (µs).
    pub virtual_us: u64,
    /// Messages delivered twice by fault injection.
    pub duplicates: u64,
    /// Exchanges reset mid-flight by fault injection (request delivered,
    /// reply lost).
    pub resets: u64,
}

impl LinkMetrics {
    /// Total bytes in both directions.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_in + self.bytes_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let m = LinkMetrics {
            requests: 2,
            dropped: 1,
            bytes_in: 10,
            bytes_out: 30,
            virtual_us: 5,
            ..Default::default()
        };
        assert_eq!(m.bytes_total(), 40);
        assert_eq!(LinkMetrics::default().bytes_total(), 0);
    }
}
