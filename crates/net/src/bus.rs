//! The in-process request/response bus.

use crate::fault::{FaultAction, FaultConfig, FaultState};
use crate::metrics::LinkMetrics;
use crate::transport::{BusTransport, Transport};
use crate::NetError;
use mws_obs::metric_name;
use mws_wire::{
    decode_envelope, decode_envelope_traced, encode_envelope, encode_envelope_traced, Pdu,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A request handler bound to an endpoint name.
///
/// Handlers receive decoded PDUs and return the reply PDU; transport
/// concerns (framing, faults, metrics) live in the bus.
pub trait Service: Send {
    /// Handles one request.
    fn handle(&mut self, request: Pdu) -> Pdu;
}

impl<F: FnMut(Pdu) -> Pdu + Send> Service for F {
    fn handle(&mut self, request: Pdu) -> Pdu {
        self(request)
    }
}

/// Handles into the shared `mws-obs` registry, preregistered at bind
/// time so per-dispatch updates are lock-free counter bumps. These
/// mirror [`LinkMetrics`] (which stays the cheap `Copy` snapshot for
/// tests) into the stats plane every daemon exposes.
struct EndpointStats {
    requests: mws_obs::Counter,
    dropped: mws_obs::Counter,
    bytes_in: mws_obs::Counter,
    bytes_out: mws_obs::Counter,
    duplicates: mws_obs::Counter,
    resets: mws_obs::Counter,
}

impl EndpointStats {
    fn preregister(endpoint: &str) -> Self {
        let reg = mws_obs::registry();
        let counter = |base: &str| reg.counter(&metric_name(base, &[("endpoint", endpoint)]));
        EndpointStats {
            requests: counter("mws_bus_requests_total"),
            dropped: counter("mws_bus_dropped_total"),
            bytes_in: counter("mws_bus_bytes_in_total"),
            bytes_out: counter("mws_bus_bytes_out_total"),
            duplicates: counter("mws_bus_duplicates_total"),
            resets: counter("mws_bus_resets_total"),
        }
    }
}

struct Endpoint {
    service: Box<dyn Service>,
    faults: FaultState,
    metrics: LinkMetrics,
    stats: EndpointStats,
    latency: crate::LatencyModel,
}

#[derive(Default)]
struct NetworkState {
    endpoints: HashMap<String, Endpoint>,
}

/// A named-endpoint network. Cheap to clone (shared state).
#[derive(Clone, Default)]
pub struct Network {
    state: Arc<Mutex<NetworkState>>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds a service under `name` with default (fault-free) links.
    pub fn bind<S: Service + 'static>(&self, name: &str, service: S) {
        self.bind_with(name, service, FaultConfig::default());
    }

    /// Binds a service with an explicit fault/latency configuration.
    pub fn bind_with<S: Service + 'static>(&self, name: &str, service: S, cfg: FaultConfig) {
        let mut state = self.state.lock();
        state.endpoints.insert(
            name.to_string(),
            Endpoint {
                service: Box::new(service),
                faults: FaultState::new(&cfg),
                metrics: LinkMetrics::default(),
                stats: EndpointStats::preregister(name),
                latency: cfg.latency,
            },
        );
    }

    /// Removes an endpoint (server shutdown).
    pub fn unbind(&self, name: &str) -> bool {
        self.state.lock().endpoints.remove(name).is_some()
    }

    /// A client handle for the named endpoint.
    pub fn client(&self, name: &str) -> Client {
        Client::from_transport(BusTransport::new(self.clone(), name).into_dyn())
    }

    /// Snapshot of an endpoint's metrics.
    pub fn metrics(&self, name: &str) -> Option<LinkMetrics> {
        self.state.lock().endpoints.get(name).map(|e| e.metrics)
    }

    /// Dispatches one framed request; internal to [`BusTransport`].
    pub(crate) fn dispatch(&self, target: &str, frame: &[u8]) -> Result<Vec<u8>, NetError> {
        let mut state = self.state.lock();
        let ep = state
            .endpoints
            .get_mut(target)
            .ok_or_else(|| NetError::UnknownEndpoint(target.to_string()))?;

        // Request leg.
        ep.metrics.virtual_us += ep.latency.cost_us(frame.len());
        let mut duplicated = false;
        match ep.faults.next_action() {
            FaultAction::Drop => {
                ep.metrics.dropped += 1;
                ep.stats.dropped.inc();
                return Err(NetError::Dropped);
            }
            FaultAction::Reset => {
                // The service processes the request, then the link dies
                // before the reply — the caller cannot tell whether the
                // request took effect.
                ep.metrics.resets += 1;
                ep.metrics.bytes_in += frame.len() as u64;
                ep.metrics.requests += 1;
                ep.stats.resets.inc();
                ep.stats.bytes_in.add(frame.len() as u64);
                ep.stats.requests.inc();
                let (request, _, trace) = decode_envelope_traced(frame)?;
                {
                    let _span = trace.map(mws_obs::trace::enter);
                    let _ = ep.service.handle(request);
                }
                return Err(NetError::Io(
                    "connection reset by fault injection mid-exchange".into(),
                ));
            }
            FaultAction::Duplicate => duplicated = true,
            FaultAction::Deliver => {}
        }
        ep.metrics.bytes_in += frame.len() as u64;
        ep.metrics.requests += 1;
        ep.stats.bytes_in.add(frame.len() as u64);
        ep.stats.requests.inc();
        let (request, _, trace) = decode_envelope_traced(frame)?;
        // The handler (and anything it logs or relays) runs inside the
        // caller's trace scope, so the trace id survives the hop.
        let reply = {
            let _span = trace.map(mws_obs::trace::enter);
            mws_obs::debug!(target: "mws_net", "bus dispatch",
                            endpoint = target, pdu = request.type_name());
            ep.service.handle(request)
        };
        if duplicated {
            // A late retransmission: the service handles the same frame a
            // second time; only the first reply travels back.
            ep.metrics.duplicates += 1;
            ep.metrics.bytes_in += frame.len() as u64;
            ep.metrics.requests += 1;
            ep.stats.duplicates.inc();
            ep.stats.bytes_in.add(frame.len() as u64);
            ep.stats.requests.inc();
            let (request, _, trace) = decode_envelope_traced(frame)?;
            let _span = trace.map(mws_obs::trace::enter);
            let _ = ep.service.handle(request);
        }
        // The reply travels back in the same trace scope it arrived in.
        let reply_frame = match trace {
            Some(ctx) => encode_envelope_traced(&reply, ctx),
            None => encode_envelope(&reply),
        };

        // Response leg.
        ep.metrics.virtual_us += ep.latency.cost_us(reply_frame.len());
        match ep.faults.next_action() {
            FaultAction::Drop => {
                ep.metrics.dropped += 1;
                ep.stats.dropped.inc();
                return Err(NetError::Dropped);
            }
            FaultAction::Reset => {
                ep.metrics.resets += 1;
                ep.stats.resets.inc();
                return Err(NetError::Io(
                    "connection reset by fault injection mid-exchange".into(),
                ));
            }
            // A duplicated reply is invisible to request/response callers.
            FaultAction::Duplicate | FaultAction::Deliver => {}
        }
        ep.metrics.bytes_out += reply_frame.len() as u64;
        ep.stats.bytes_out.add(reply_frame.len() as u64);
        Ok(reply_frame)
    }
}

/// A client handle for one endpoint, over any [`Transport`].
///
/// Constructed via [`Network::client`] (in-process bus) or
/// [`Client::from_transport`] (e.g. a TCP transport from `mws-server`).
/// Clones share the underlying transport.
#[derive(Clone)]
pub struct Client {
    transport: Arc<dyn Transport>,
}

impl Client {
    /// Wraps an arbitrary transport in the stock client.
    pub fn from_transport(transport: Arc<dyn Transport>) -> Self {
        Self { transport }
    }

    /// Sends a request and waits for the reply.
    ///
    /// When the calling thread has a trace scope entered, the frame
    /// carries that trace id with a fresh span id for this hop — this
    /// is the single choke point where trace context leaves a client.
    pub fn call(&self, request: &Pdu) -> Result<Pdu, NetError> {
        let frame = match mws_obs::trace::current() {
            Some(ctx) => encode_envelope_traced(request, mws_obs::trace::child_of(ctx)),
            None => encode_envelope(request),
        };
        let reply_frame = self.transport.round_trip(&frame)?;
        let (reply, _) = decode_envelope(&reply_frame)?;
        Ok(reply)
    }

    /// Like [`Self::call`] but retries transient failures (fault-injected
    /// drops, socket timeouts and I/O errors), up to `attempts` times — the
    /// retransmission loop a real deployment runs. Permanent failures
    /// (unknown endpoint, codec) surface immediately.
    pub fn call_with_retry(&self, request: &Pdu, attempts: u32) -> Result<Pdu, NetError> {
        let mut last = NetError::Dropped;
        for _ in 0..attempts {
            match self.call(request) {
                Ok(reply) => return Ok(reply),
                Err(e @ (NetError::Dropped | NetError::Timeout | NetError::Io(_))) => last = e,
                Err(other) => return Err(other),
            }
        }
        Err(last)
    }

    /// Peer identity: endpoint name on the bus, socket address over TCP.
    pub fn target(&self) -> String {
        self.transport.peer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LatencyModel;

    fn echo() -> impl Service {
        |req: Pdu| match req {
            Pdu::DepositAck { message_id } => Pdu::DepositAck {
                message_id: message_id + 1,
            },
            other => other,
        }
    }

    #[test]
    fn request_response_roundtrip() {
        let net = Network::new();
        net.bind("mws", echo());
        let client = net.client("mws");
        let reply = client.call(&Pdu::DepositAck { message_id: 1 }).unwrap();
        assert_eq!(reply, Pdu::DepositAck { message_id: 2 });
    }

    #[test]
    fn unknown_endpoint() {
        let net = Network::new();
        let client = net.client("ghost");
        assert!(matches!(
            client.call(&Pdu::ParamsRequest),
            Err(NetError::UnknownEndpoint(_))
        ));
    }

    #[test]
    fn unbind_disconnects() {
        let net = Network::new();
        net.bind("mws", echo());
        assert!(net.unbind("mws"));
        assert!(!net.unbind("mws"));
        assert!(net.client("mws").call(&Pdu::ParamsRequest).is_err());
    }

    #[test]
    fn metrics_account_bytes_and_requests() {
        let net = Network::new();
        net.bind("mws", echo());
        let client = net.client("mws");
        let req = Pdu::DepositAck { message_id: 7 };
        client.call(&req).unwrap();
        client.call(&req).unwrap();
        let m = net.metrics("mws").unwrap();
        assert_eq!(m.requests, 2);
        let frame_len = mws_wire::encode_envelope(&req).len() as u64;
        assert_eq!(m.bytes_in, 2 * frame_len);
        assert_eq!(m.bytes_out, 2 * frame_len); // echo: same size back
    }

    #[test]
    fn virtual_latency_accumulates() {
        let net = Network::new();
        net.bind_with(
            "slow",
            echo(),
            FaultConfig {
                latency: LatencyModel {
                    base_us: 100,
                    per_byte_ns: 0,
                },
                ..Default::default()
            },
        );
        net.client("slow").call(&Pdu::ParamsRequest).unwrap();
        let m = net.metrics("slow").unwrap();
        assert_eq!(m.virtual_us, 200, "request + response legs");
    }

    #[test]
    fn drops_surface_and_retry_recovers() {
        let net = Network::new();
        net.bind_with(
            "lossy",
            echo(),
            FaultConfig {
                drop_rate: 0.5,
                seed: 3,
                ..Default::default()
            },
        );
        let client = net.client("lossy");
        // With 50% loss per leg, 20 attempts succeed with overwhelming odds.
        let reply = client
            .call_with_retry(&Pdu::DepositAck { message_id: 0 }, 20)
            .unwrap();
        assert_eq!(reply, Pdu::DepositAck { message_id: 1 });
        assert!(net.metrics("lossy").unwrap().dropped > 0);
    }

    #[test]
    fn total_loss_exhausts_retries() {
        let net = Network::new();
        net.bind_with(
            "dead",
            echo(),
            FaultConfig {
                drop_rate: 1.0,
                ..Default::default()
            },
        );
        let client = net.client("dead");
        assert_eq!(
            client.call_with_retry(&Pdu::ParamsRequest, 3).unwrap_err(),
            NetError::Dropped
        );
        assert_eq!(net.metrics("dead").unwrap().dropped, 3);
        assert_eq!(net.metrics("dead").unwrap().requests, 0);
    }

    #[test]
    fn dispatch_propagates_trace_and_mirrors_the_registry() {
        let net = Network::new();
        let seen: Arc<Mutex<Option<mws_obs::trace::TraceContext>>> = Arc::new(Mutex::new(None));
        let seen_in_handler = seen.clone();
        net.bind("traced-probe", move |req: Pdu| {
            *seen_in_handler.lock() = mws_obs::trace::current();
            req
        });
        let client = net.client("traced-probe");

        // Without a scope: the handler runs untraced.
        client.call(&Pdu::ParamsRequest).unwrap();
        assert_eq!(*seen.lock(), None);

        // With a scope: the handler sees the same trace id on a fresh
        // hop span, and the caller's own scope is restored afterwards.
        let ctx = mws_obs::trace::mint();
        let guard = mws_obs::trace::enter(ctx);
        client.call(&Pdu::ParamsRequest).unwrap();
        let inside = seen.lock().expect("handler ran inside a scope");
        assert_eq!(inside.trace_id, ctx.trace_id, "trace id crosses the hop");
        assert_ne!(inside.span_id, ctx.span_id, "each hop gets its own span");
        assert_eq!(mws_obs::trace::current(), Some(ctx));
        drop(guard);

        // The shared registry mirrored both dispatches.
        let requests = mws_obs::registry().counter(&mws_obs::metric_name(
            "mws_bus_requests_total",
            &[("endpoint", "traced-probe")],
        ));
        assert_eq!(requests.get(), 2);
    }

    #[test]
    fn stateful_service_keeps_state() {
        let net = Network::new();
        let mut count = 0u64;
        net.bind("counter", move |_req: Pdu| {
            count += 1;
            Pdu::DepositAck { message_id: count }
        });
        let c = net.client("counter");
        assert_eq!(
            c.call(&Pdu::ParamsRequest).unwrap(),
            Pdu::DepositAck { message_id: 1 }
        );
        assert_eq!(
            c.call(&Pdu::ParamsRequest).unwrap(),
            Pdu::DepositAck { message_id: 2 }
        );
    }
}
