//! Threaded endpoints — the "four servers" deployment shape.
//!
//! [`ThreadedEndpoint`] runs a [`Service`] on its own OS thread behind
//! crossbeam channels and exposes a [`Service`] facade, so a thread-backed
//! server can be bound onto a [`crate::Network`] exactly like an in-process
//! one. This mirrors the prototype's process-per-component layout while
//! keeping tests deterministic.

use crate::bus::Service;
use crate::NetError;
use crossbeam::channel::{unbounded, Receiver, Sender};
use mws_wire::Pdu;
use std::thread::JoinHandle;

enum Envelope {
    Request(Pdu, Sender<Pdu>),
    Shutdown,
}

/// A service running on its own thread.
pub struct ThreadedEndpoint {
    tx: Sender<Envelope>,
    handle: Option<JoinHandle<()>>,
}

impl ThreadedEndpoint {
    /// Spawns `service` onto a worker thread.
    pub fn spawn<S: Service + 'static>(mut service: S) -> Self {
        let (tx, rx): (Sender<Envelope>, Receiver<Envelope>) = unbounded();
        let handle = std::thread::spawn(move || {
            while let Ok(env) = rx.recv() {
                match env {
                    Envelope::Request(req, reply_tx) => {
                        let reply = service.handle(req);
                        // The caller may have given up; ignore send failure.
                        let _ = reply_tx.send(reply);
                    }
                    Envelope::Shutdown => break,
                }
            }
        });
        Self {
            tx,
            handle: Some(handle),
        }
    }

    /// Sends one request and blocks for the reply.
    pub fn call(&self, request: Pdu) -> Result<Pdu, NetError> {
        let (reply_tx, reply_rx) = unbounded();
        self.tx
            .send(Envelope::Request(request, reply_tx))
            .map_err(|_| NetError::Disconnected)?;
        reply_rx.recv().map_err(|_| NetError::Disconnected)
    }

    /// A cloneable [`Service`] facade that forwards into the thread, so the
    /// endpoint can be bound onto a [`crate::Network`].
    pub fn as_service(&self) -> impl Service + 'static {
        let tx = self.tx.clone();
        move |req: Pdu| {
            let (reply_tx, reply_rx) = unbounded();
            if tx.send(Envelope::Request(req, reply_tx)).is_err() {
                return Pdu::Error {
                    code: 503,
                    detail: "endpoint thread gone".into(),
                };
            }
            reply_rx.recv().unwrap_or(Pdu::Error {
                code: 503,
                detail: "endpoint thread gone".into(),
            })
        }
    }
}

impl Drop for ThreadedEndpoint {
    fn drop(&mut self) {
        let _ = self.tx.send(Envelope::Shutdown);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Network;

    #[test]
    fn threaded_call() {
        let ep = ThreadedEndpoint::spawn(|req: Pdu| match req {
            Pdu::DepositAck { message_id } => Pdu::DepositAck {
                message_id: message_id * 2,
            },
            other => other,
        });
        let reply = ep.call(Pdu::DepositAck { message_id: 21 }).unwrap();
        assert_eq!(reply, Pdu::DepositAck { message_id: 42 });
    }

    #[test]
    fn threaded_endpoint_on_network() {
        let ep = ThreadedEndpoint::spawn(|_req: Pdu| Pdu::DepositAck { message_id: 7 });
        let net = Network::new();
        net.bind("pkg", ep.as_service());
        let reply = net.client("pkg").call(&Pdu::ParamsRequest).unwrap();
        assert_eq!(reply, Pdu::DepositAck { message_id: 7 });
        drop(ep);
    }

    #[test]
    fn concurrent_callers() {
        let ep = std::sync::Arc::new(ThreadedEndpoint::spawn(|req: Pdu| req));
        let mut joins = Vec::new();
        for i in 0..8u64 {
            let ep = ep.clone();
            joins.push(std::thread::spawn(move || {
                for j in 0..50 {
                    let id = i * 1000 + j;
                    let reply = ep.call(Pdu::DepositAck { message_id: id }).unwrap();
                    assert_eq!(reply, Pdu::DepositAck { message_id: id });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    }

    #[test]
    fn shutdown_surfaces_as_error() {
        let ep = ThreadedEndpoint::spawn(|req: Pdu| req);
        let svc = ep.as_service();
        let net = Network::new();
        net.bind("x", svc);
        drop(ep); // thread gone
        let reply = net.client("x").call(&Pdu::ParamsRequest).unwrap();
        assert!(matches!(reply, Pdu::Error { code: 503, .. }));
    }
}
