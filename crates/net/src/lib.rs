//! Deterministic in-process transport for the MWS deployment.
//!
//! The paper's prototype ran "four servers … all ports and IP addresses
//! hardcoded" on one machine (§VI.C). This crate reproduces that topology
//! without sockets: named endpoints on a [`Network`] exchange framed
//! `mws-wire` PDUs. Every byte crosses the real codec, so wire sizes in the
//! benchmarks are the true protocol cost.
//!
//! Determinism is the point — experiments must be reproducible:
//!
//! * **Fault injection** ([`fault`]) drops requests/responses from a seeded
//!   DRBG stream, so "2% loss" is the *same* 2% on every run.
//! * **Latency** is modeled, not slept: a virtual clock accumulates
//!   per-message `base + per_byte` delays ([`metrics::LinkMetrics`]), so
//!   benches separate compute cost from modeled network cost.
//!
//! For the multi-process flavor of the original deployment, [`endpoint`]
//! runs a service on its own thread behind crossbeam channels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod endpoint;
pub mod fault;
pub mod metrics;
pub mod transport;

pub use bus::{Client, Network, Service};
pub use endpoint::ThreadedEndpoint;
pub use fault::{FaultConfig, LatencyModel};
pub use metrics::LinkMetrics;
pub use transport::{BusTransport, FaultyTransport, Transport};

/// Transport-layer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No endpoint bound under that name.
    UnknownEndpoint(String),
    /// The (simulated) network dropped the message.
    Dropped,
    /// Frame failed to decode.
    Codec(mws_wire::WireError),
    /// The endpoint's worker thread is gone.
    Disconnected,
    /// A socket operation exceeded its deadline.
    Timeout,
    /// A socket operation failed (connect refused, reset, ...).
    Io(String),
    /// The client's circuit breaker is open: recent consecutive transport
    /// failures exceeded the threshold, so the call fails fast without
    /// touching the network until the cooldown elapses.
    CircuitOpen,
}

impl core::fmt::Display for NetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NetError::UnknownEndpoint(name) => write!(f, "unknown endpoint '{name}'"),
            NetError::Dropped => write!(f, "message dropped by fault injection"),
            NetError::Codec(e) => write!(f, "codec failure: {e}"),
            NetError::Disconnected => write!(f, "endpoint thread disconnected"),
            NetError::Timeout => write!(f, "network operation timed out"),
            NetError::Io(detail) => write!(f, "socket error: {detail}"),
            NetError::CircuitOpen => write!(f, "circuit breaker open; failing fast"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<mws_wire::WireError> for NetError {
    fn from(e: mws_wire::WireError) -> Self {
        NetError::Codec(e)
    }
}
