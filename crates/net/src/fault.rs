//! Deterministic fault injection and latency modeling.

use mws_crypto::HmacDrbg;

/// Latency model: `base + per_byte · len`, accounted on a virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Fixed per-message cost in microseconds.
    pub base_us: u64,
    /// Per-byte cost in nanoseconds.
    pub per_byte_ns: u64,
}

impl LatencyModel {
    /// A zero-cost link.
    pub const ZERO: Self = Self {
        base_us: 0,
        per_byte_ns: 0,
    };

    /// A WAN-ish profile (20 ms RTT halves, ~10 Mbit/s).
    pub const WAN: Self = Self {
        base_us: 10_000,
        per_byte_ns: 800,
    };

    /// Modeled microseconds for a message of `len` bytes.
    pub fn cost_us(&self, len: usize) -> u64 {
        self.base_us + (self.per_byte_ns * len as u64) / 1000
    }
}

/// Per-link fault configuration.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Probability (0.0–1.0) of dropping any message.
    pub drop_rate: f64,
    /// Latency model for the virtual clock.
    pub latency: LatencyModel,
    /// DRBG seed — same seed, same drops.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            drop_rate: 0.0,
            latency: LatencyModel::ZERO,
            seed: 0,
        }
    }
}

/// Stateful deterministic drop decider.
pub(crate) struct FaultState {
    drop_rate: f64,
    drbg: HmacDrbg,
}

impl FaultState {
    pub(crate) fn new(cfg: &FaultConfig) -> Self {
        Self {
            drop_rate: cfg.drop_rate,
            drbg: HmacDrbg::new(&cfg.seed.to_be_bytes(), b"mws-net-fault"),
        }
    }

    /// Returns true when the next message should be dropped.
    pub(crate) fn should_drop(&mut self) -> bool {
        if self.drop_rate <= 0.0 {
            return false;
        }
        let mut b = [0u8; 8];
        self.drbg.generate(&mut b);
        let x = u64::from_be_bytes(b) as f64 / u64::MAX as f64;
        x < self.drop_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_drops() {
        let mut f = FaultState::new(&FaultConfig::default());
        assert!((0..1000).all(|_| !f.should_drop()));
    }

    #[test]
    fn full_rate_always_drops() {
        let mut f = FaultState::new(&FaultConfig {
            drop_rate: 1.0,
            ..Default::default()
        });
        assert!((0..100).all(|_| f.should_drop()));
    }

    #[test]
    fn partial_rate_is_deterministic_and_plausible() {
        let cfg = FaultConfig {
            drop_rate: 0.25,
            seed: 7,
            ..Default::default()
        };
        let run = |mut f: FaultState| (0..10_000).map(|_| f.should_drop()).collect::<Vec<_>>();
        let a = run(FaultState::new(&cfg));
        let b = run(FaultState::new(&cfg));
        assert_eq!(a, b, "same seed, same drops");
        let drops = a.iter().filter(|&&d| d).count();
        assert!((2000..3000).contains(&drops), "~25% of 10k, got {drops}");
        // Different seed differs.
        let c = run(FaultState::new(&FaultConfig { seed: 8, ..cfg }));
        assert_ne!(a, c);
    }

    #[test]
    fn latency_model_costs() {
        assert_eq!(LatencyModel::ZERO.cost_us(1000), 0);
        let m = LatencyModel {
            base_us: 100,
            per_byte_ns: 1000,
        };
        assert_eq!(m.cost_us(0), 100);
        assert_eq!(m.cost_us(500), 600);
    }
}
