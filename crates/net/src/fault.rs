//! Deterministic fault injection and latency modeling.

use mws_crypto::HmacDrbg;

/// Latency model: `base + per_byte · len`, accounted on a virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Fixed per-message cost in microseconds.
    pub base_us: u64,
    /// Per-byte cost in nanoseconds.
    pub per_byte_ns: u64,
}

impl LatencyModel {
    /// A zero-cost link.
    pub const ZERO: Self = Self {
        base_us: 0,
        per_byte_ns: 0,
    };

    /// A WAN-ish profile (20 ms RTT halves, ~10 Mbit/s).
    pub const WAN: Self = Self {
        base_us: 10_000,
        per_byte_ns: 800,
    };

    /// Modeled microseconds for a message of `len` bytes.
    pub fn cost_us(&self, len: usize) -> u64 {
        self.base_us + (self.per_byte_ns * len as u64) / 1000
    }
}

/// Per-link fault configuration.
///
/// One configuration drives every medium: the in-process bus samples it per
/// dispatch leg, and [`FaultyTransport`](crate::FaultyTransport) samples it
/// per round trip over any [`Transport`](crate::Transport) — including real
/// TCP sockets. Same seed, same fault schedule, on either medium.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Probability (0.0–1.0) of dropping any message.
    pub drop_rate: f64,
    /// Probability (0.0–1.0) of delivering a message twice (the peer
    /// processes the frame twice; the sender sees one reply).
    pub duplicate_rate: f64,
    /// Probability (0.0–1.0) of resetting the connection mid-exchange:
    /// the frame reaches the peer but the reply is lost, so the sender
    /// cannot tell whether the request took effect.
    pub reset_rate: f64,
    /// Latency model for the virtual clock.
    pub latency: LatencyModel,
    /// DRBG seed — same seed, same drops.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            reset_rate: 0.0,
            latency: LatencyModel::ZERO,
            seed: 0,
        }
    }
}

/// What the (simulated) network does to the next message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultAction {
    /// Deliver normally.
    Deliver,
    /// Lose the message before the peer sees it.
    Drop,
    /// Deliver the message twice.
    Duplicate,
    /// Deliver the message, then kill the connection before the reply.
    Reset,
}

/// Stateful deterministic fault decider.
pub(crate) struct FaultState {
    drop_rate: f64,
    duplicate_rate: f64,
    reset_rate: f64,
    drbg: HmacDrbg,
}

impl FaultState {
    pub(crate) fn new(cfg: &FaultConfig) -> Self {
        Self {
            drop_rate: cfg.drop_rate,
            duplicate_rate: cfg.duplicate_rate,
            reset_rate: cfg.reset_rate,
            drbg: HmacDrbg::new(&cfg.seed.to_be_bytes(), b"mws-net-fault"),
        }
    }

    /// Samples the fate of the next message. One DRBG draw per decision;
    /// a fault-free configuration draws nothing, so adding fault kinds
    /// never perturbs the schedule of configurations that don't use them.
    pub(crate) fn next_action(&mut self) -> FaultAction {
        let total = self.drop_rate + self.duplicate_rate + self.reset_rate;
        if total <= 0.0 {
            return FaultAction::Deliver;
        }
        let mut b = [0u8; 8];
        self.drbg.generate(&mut b);
        let x = u64::from_be_bytes(b) as f64 / u64::MAX as f64;
        if x < self.drop_rate {
            FaultAction::Drop
        } else if x < self.drop_rate + self.duplicate_rate {
            FaultAction::Duplicate
        } else if x < total {
            FaultAction::Reset
        } else {
            FaultAction::Deliver
        }
    }

    /// Returns true when the next message should be dropped (drop-only view
    /// of [`Self::next_action`], kept for call sites that cannot express
    /// richer faults).
    #[cfg(test)]
    pub(crate) fn should_drop(&mut self) -> bool {
        self.next_action() == FaultAction::Drop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_drops() {
        let mut f = FaultState::new(&FaultConfig::default());
        assert!((0..1000).all(|_| !f.should_drop()));
    }

    #[test]
    fn full_rate_always_drops() {
        let mut f = FaultState::new(&FaultConfig {
            drop_rate: 1.0,
            ..Default::default()
        });
        assert!((0..100).all(|_| f.should_drop()));
    }

    #[test]
    fn partial_rate_is_deterministic_and_plausible() {
        let cfg = FaultConfig {
            drop_rate: 0.25,
            seed: 7,
            ..Default::default()
        };
        let run = |mut f: FaultState| (0..10_000).map(|_| f.should_drop()).collect::<Vec<_>>();
        let a = run(FaultState::new(&cfg));
        let b = run(FaultState::new(&cfg));
        assert_eq!(a, b, "same seed, same drops");
        let drops = a.iter().filter(|&&d| d).count();
        assert!((2000..3000).contains(&drops), "~25% of 10k, got {drops}");
        // Different seed differs.
        let c = run(FaultState::new(&FaultConfig { seed: 8, ..cfg }));
        assert_ne!(a, c);
    }

    #[test]
    fn action_mix_is_deterministic_and_partitioned() {
        let cfg = FaultConfig {
            drop_rate: 0.2,
            duplicate_rate: 0.1,
            reset_rate: 0.1,
            seed: 11,
            ..Default::default()
        };
        let run = |mut f: FaultState| (0..10_000).map(|_| f.next_action()).collect::<Vec<_>>();
        let a = run(FaultState::new(&cfg));
        assert_eq!(a, run(FaultState::new(&cfg)), "same seed, same schedule");
        let count = |kind| a.iter().filter(|&&x| x == kind).count();
        let (drops, dups, resets) = (
            count(FaultAction::Drop),
            count(FaultAction::Duplicate),
            count(FaultAction::Reset),
        );
        assert!((1700..2300).contains(&drops), "~20% drops, got {drops}");
        assert!((700..1300).contains(&dups), "~10% duplicates, got {dups}");
        assert!((700..1300).contains(&resets), "~10% resets, got {resets}");
    }

    #[test]
    fn drop_only_schedule_unchanged_by_new_fault_kinds() {
        // The drop stream for a drop-only config must be byte-identical to
        // what the pre-generalization decider produced: one 8-byte draw per
        // decision, compared against drop_rate alone.
        let cfg = FaultConfig {
            drop_rate: 0.25,
            seed: 7,
            ..Default::default()
        };
        let mut f = FaultState::new(&cfg);
        let mut drbg = mws_crypto::HmacDrbg::new(&7u64.to_be_bytes(), b"mws-net-fault");
        for _ in 0..1000 {
            let mut b = [0u8; 8];
            drbg.generate(&mut b);
            let expect = (u64::from_be_bytes(b) as f64 / u64::MAX as f64) < 0.25;
            assert_eq!(f.should_drop(), expect);
        }
    }

    #[test]
    fn latency_model_costs() {
        assert_eq!(LatencyModel::ZERO.cost_us(1000), 0);
        let m = LatencyModel {
            base_us: 100,
            per_byte_ns: 1000,
        };
        assert_eq!(m.cost_us(0), 100);
        assert_eq!(m.cost_us(500), 600);
    }
}
