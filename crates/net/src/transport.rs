//! Transport abstraction decoupling clients from the medium.
//!
//! [`Client`](crate::Client) speaks PDUs; a [`Transport`] moves the encoded
//! envelope frames. Two implementations exist today:
//!
//! * [`BusTransport`] — the deterministic in-process [`Network`] bus (the
//!   default; what [`Network::client`] hands out).
//! * `mws_server::TcpClient` — real sockets, one MWS daemon per process,
//!   reproducing the paper's four-server deployment (§VI.C).
//!
//! `mws-core` services and clients only ever hold a `Client`, so the same
//! protocol logic runs unchanged over either medium.

use crate::{NetError, Network};
use std::sync::Arc;

/// Moves one encoded envelope frame to a peer and returns the reply frame.
///
/// Implementations must be shareable across threads: a `Client` is `Clone`
/// and clones share the transport.
pub trait Transport: Send + Sync {
    /// Performs one request/response exchange of raw envelope frames.
    fn round_trip(&self, frame: &[u8]) -> Result<Vec<u8>, NetError>;

    /// Human-readable peer identity (endpoint name or socket address),
    /// for diagnostics.
    fn peer(&self) -> String;
}

/// [`Transport`] over the in-process [`Network`] bus.
pub struct BusTransport {
    network: Network,
    target: String,
}

impl BusTransport {
    /// A transport addressing `target` on `network`.
    pub fn new(network: Network, target: &str) -> Self {
        Self {
            network,
            target: target.to_string(),
        }
    }

    /// Boxed into the `Arc<dyn Transport>` a [`Client`](crate::Client) holds.
    pub fn into_dyn(self) -> Arc<dyn Transport> {
        Arc::new(self)
    }
}

impl Transport for BusTransport {
    fn round_trip(&self, frame: &[u8]) -> Result<Vec<u8>, NetError> {
        self.network.dispatch(&self.target, frame)
    }

    fn peer(&self) -> String {
        self.target.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Client;
    use mws_wire::{encode_envelope, Pdu};

    #[test]
    fn bus_transport_round_trips_frames() {
        let net = Network::new();
        net.bind("echo", |req: Pdu| req);
        let t = BusTransport::new(net, "echo");
        let frame = encode_envelope(&Pdu::ParamsRequest);
        assert_eq!(t.round_trip(&frame).unwrap(), frame);
        assert_eq!(t.peer(), "echo");
    }

    #[test]
    fn client_over_custom_transport() {
        // A hand-rolled Transport (not the bus) behind the stock Client:
        // proves the client is medium-agnostic.
        struct Reverse;
        impl Transport for Reverse {
            fn round_trip(&self, frame: &[u8]) -> Result<Vec<u8>, NetError> {
                let (pdu, _) = mws_wire::decode_envelope(frame)?;
                let reply = match pdu {
                    Pdu::DepositAck { message_id } => Pdu::DepositAck {
                        message_id: message_id.reverse_bits(),
                    },
                    other => other,
                };
                Ok(encode_envelope(&reply))
            }
            fn peer(&self) -> String {
                "reverse".into()
            }
        }
        let client = Client::from_transport(Arc::new(Reverse));
        let reply = client.call(&Pdu::DepositAck { message_id: 1 }).unwrap();
        assert_eq!(
            reply,
            Pdu::DepositAck {
                message_id: 1u64.reverse_bits()
            }
        );
        assert_eq!(client.target(), "reverse");
    }
}
