//! Transport abstraction decoupling clients from the medium.
//!
//! [`Client`](crate::Client) speaks PDUs; a [`Transport`] moves the encoded
//! envelope frames. Two implementations exist today:
//!
//! * [`BusTransport`] — the deterministic in-process [`Network`] bus (the
//!   default; what [`Network::client`] hands out).
//! * `mws_server::TcpClient` — real sockets, one MWS daemon per process,
//!   reproducing the paper's four-server deployment (§VI.C).
//!
//! `mws-core` services and clients only ever hold a `Client`, so the same
//! protocol logic runs unchanged over either medium.

use crate::fault::{FaultAction, FaultConfig, FaultState};
use crate::metrics::LinkMetrics;
use crate::{NetError, Network};
use parking_lot::Mutex;
use std::sync::Arc;

/// Moves one encoded envelope frame to a peer and returns the reply frame.
///
/// Implementations must be shareable across threads: a `Client` is `Clone`
/// and clones share the transport.
pub trait Transport: Send + Sync {
    /// Performs one request/response exchange of raw envelope frames.
    fn round_trip(&self, frame: &[u8]) -> Result<Vec<u8>, NetError>;

    /// Human-readable peer identity (endpoint name or socket address),
    /// for diagnostics.
    fn peer(&self) -> String;
}

/// [`Transport`] over the in-process [`Network`] bus.
pub struct BusTransport {
    network: Network,
    target: String,
}

impl BusTransport {
    /// A transport addressing `target` on `network`.
    pub fn new(network: Network, target: &str) -> Self {
        Self {
            network,
            target: target.to_string(),
        }
    }

    /// Boxed into the `Arc<dyn Transport>` a [`Client`](crate::Client) holds.
    pub fn into_dyn(self) -> Arc<dyn Transport> {
        Arc::new(self)
    }
}

impl Transport for BusTransport {
    fn round_trip(&self, frame: &[u8]) -> Result<Vec<u8>, NetError> {
        self.network.dispatch(&self.target, frame)
    }

    fn peer(&self) -> String {
        self.target.clone()
    }
}

/// A lossy link over any [`Transport`]: seeded drops, duplicate delivery,
/// mid-exchange resets, and modeled latency — the bus's fault model, made
/// medium-agnostic so the *same* seeded schedule can hit real TCP sockets.
///
/// Fault semantics per round trip (one DRBG draw each):
///
/// * **Drop** — the frame is lost before the peer sees it; the caller gets
///   [`NetError::Dropped`]. The request definitively did not happen.
/// * **Duplicate** — the peer processes the frame twice (a retransmission
///   arriving after the original); the caller sees the first reply. This is
///   what server-side replay protection exists for.
/// * **Reset** — the frame reaches the peer and is processed, but the
///   connection dies before the reply. The caller gets [`NetError::Io`] and
///   *cannot know* whether the request took effect — the ambiguity that
///   forces deposits to be idempotent.
///
/// Wrap any transport: `FaultyTransport::new(tcp_client.into_transport(), cfg)`.
pub struct FaultyTransport {
    inner: Arc<dyn Transport>,
    state: Mutex<FaultState>,
    latency: crate::LatencyModel,
    metrics: Mutex<LinkMetrics>,
}

impl FaultyTransport {
    /// Wraps `inner` with the seeded fault schedule of `cfg`.
    pub fn new(inner: Arc<dyn Transport>, cfg: FaultConfig) -> Self {
        Self {
            inner,
            state: Mutex::new(FaultState::new(&cfg)),
            latency: cfg.latency,
            metrics: Mutex::new(LinkMetrics::default()),
        }
    }

    /// Boxed into the `Arc<dyn Transport>` a [`Client`](crate::Client) holds.
    pub fn into_dyn(self) -> Arc<dyn Transport> {
        Arc::new(self)
    }

    /// Snapshot of the link's fault/traffic counters.
    pub fn metrics(&self) -> LinkMetrics {
        *self.metrics.lock()
    }
}

impl Transport for FaultyTransport {
    fn round_trip(&self, frame: &[u8]) -> Result<Vec<u8>, NetError> {
        let action = self.state.lock().next_action();
        let mut m = self.metrics.lock();
        m.virtual_us += self.latency.cost_us(frame.len());
        match action {
            FaultAction::Drop => {
                m.dropped += 1;
                Err(NetError::Dropped)
            }
            FaultAction::Reset => {
                m.resets += 1;
                drop(m);
                // The peer sees (and acts on) the frame; only the reply dies.
                let _ = self.inner.round_trip(frame);
                Err(NetError::Io(
                    "connection reset by fault injection mid-exchange".into(),
                ))
            }
            FaultAction::Duplicate => {
                m.duplicates += 1;
                m.requests += 2;
                m.bytes_in += 2 * frame.len() as u64;
                drop(m);
                let reply = self.inner.round_trip(frame)?;
                // The late retransmission: the peer handles it, but its
                // reply never reaches anyone.
                let _ = self.inner.round_trip(frame);
                let mut m = self.metrics.lock();
                m.virtual_us += self.latency.cost_us(reply.len());
                m.bytes_out += reply.len() as u64;
                Ok(reply)
            }
            FaultAction::Deliver => {
                m.requests += 1;
                m.bytes_in += frame.len() as u64;
                drop(m);
                let reply = self.inner.round_trip(frame)?;
                let mut m = self.metrics.lock();
                m.virtual_us += self.latency.cost_us(reply.len());
                m.bytes_out += reply.len() as u64;
                Ok(reply)
            }
        }
    }

    fn peer(&self) -> String {
        format!("faulty({})", self.inner.peer())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Client;
    use mws_wire::{encode_envelope, Pdu};

    #[test]
    fn bus_transport_round_trips_frames() {
        let net = Network::new();
        net.bind("echo", |req: Pdu| req);
        let t = BusTransport::new(net, "echo");
        let frame = encode_envelope(&Pdu::ParamsRequest);
        assert_eq!(t.round_trip(&frame).unwrap(), frame);
        assert_eq!(t.peer(), "echo");
    }

    #[test]
    fn client_over_custom_transport() {
        // A hand-rolled Transport (not the bus) behind the stock Client:
        // proves the client is medium-agnostic.
        struct Reverse;
        impl Transport for Reverse {
            fn round_trip(&self, frame: &[u8]) -> Result<Vec<u8>, NetError> {
                let (pdu, _) = mws_wire::decode_envelope(frame)?;
                let reply = match pdu {
                    Pdu::DepositAck { message_id } => Pdu::DepositAck {
                        message_id: message_id.reverse_bits(),
                    },
                    other => other,
                };
                Ok(encode_envelope(&reply))
            }
            fn peer(&self) -> String {
                "reverse".into()
            }
        }
        let client = Client::from_transport(Arc::new(Reverse));
        let reply = client.call(&Pdu::DepositAck { message_id: 1 }).unwrap();
        assert_eq!(
            reply,
            Pdu::DepositAck {
                message_id: 1u64.reverse_bits()
            }
        );
        assert_eq!(client.target(), "reverse");
    }

    /// Transport that counts deliveries — lets tests observe duplicate and
    /// reset semantics from the peer's side.
    struct Counting {
        calls: std::sync::atomic::AtomicU64,
    }
    impl Transport for Counting {
        fn round_trip(&self, frame: &[u8]) -> Result<Vec<u8>, NetError> {
            self.calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Ok(frame.to_vec())
        }
        fn peer(&self) -> String {
            "counting".into()
        }
    }

    #[test]
    fn faulty_transport_drop_never_reaches_peer() {
        let peer = Arc::new(Counting {
            calls: Default::default(),
        });
        let t = FaultyTransport::new(
            peer.clone(),
            FaultConfig {
                drop_rate: 1.0,
                ..Default::default()
            },
        );
        assert_eq!(t.round_trip(b"x").unwrap_err(), NetError::Dropped);
        assert_eq!(peer.calls.load(std::sync::atomic::Ordering::SeqCst), 0);
        assert_eq!(t.metrics().dropped, 1);
    }

    #[test]
    fn faulty_transport_reset_reaches_peer_but_loses_reply() {
        let peer = Arc::new(Counting {
            calls: Default::default(),
        });
        let t = FaultyTransport::new(
            peer.clone(),
            FaultConfig {
                reset_rate: 1.0,
                ..Default::default()
            },
        );
        assert!(matches!(t.round_trip(b"x").unwrap_err(), NetError::Io(_)));
        // The defining ambiguity: the request WAS delivered.
        assert_eq!(peer.calls.load(std::sync::atomic::Ordering::SeqCst), 1);
        assert_eq!(t.metrics().resets, 1);
    }

    #[test]
    fn faulty_transport_duplicate_delivers_twice_one_reply() {
        let peer = Arc::new(Counting {
            calls: Default::default(),
        });
        let t = FaultyTransport::new(
            peer.clone(),
            FaultConfig {
                duplicate_rate: 1.0,
                ..Default::default()
            },
        );
        assert_eq!(t.round_trip(b"x").unwrap(), b"x".to_vec());
        assert_eq!(peer.calls.load(std::sync::atomic::Ordering::SeqCst), 2);
        assert_eq!(t.metrics().duplicates, 1);
    }

    #[test]
    fn faulty_transport_same_seed_same_schedule_over_bus() {
        let run = |seed: u64| {
            let net = Network::new();
            net.bind("echo", |req: Pdu| req);
            let t = FaultyTransport::new(
                BusTransport::new(net, "echo").into_dyn(),
                FaultConfig {
                    drop_rate: 0.3,
                    reset_rate: 0.2,
                    seed,
                    ..Default::default()
                },
            );
            let frame = encode_envelope(&Pdu::ParamsRequest);
            (0..200)
                .map(|_| match t.round_trip(&frame) {
                    Ok(_) => 0u8,
                    Err(NetError::Dropped) => 1,
                    Err(NetError::Io(_)) => 2,
                    Err(_) => 3,
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5), "same seed, same outcome sequence");
        assert_ne!(run(5), run(6), "different seed, different schedule");
    }
}
