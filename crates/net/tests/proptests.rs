//! Property-based tests for the transport: any PDU survives the bus
//! unchanged; metrics account exactly; deterministic fault injection is
//! reproducible.

use mws_net::{FaultConfig, Network, Service};
use mws_wire::{encode_envelope, Pdu};
use proptest::prelude::*;

fn echo() -> impl Service {
    |req: Pdu| req
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_pdu_survives_the_bus(
        sd_id in "[a-z0-9\\-]{1,20}",
        payload in prop::collection::vec(any::<u8>(), 0..300),
        ts in any::<u64>(),
    ) {
        let net = Network::new();
        net.bind("echo", echo());
        let pdu = Pdu::DepositRequest {
            sd_id,
            timestamp: ts,
            u: payload.clone(),
            algo: 3,
            sealed: payload.clone(),
            attribute: "A-B".into(),
            nonce: payload,
            mac: vec![9; 32],
        };
        let reply = net.client("echo").call(&pdu).unwrap();
        prop_assert_eq!(reply, pdu);
    }

    #[test]
    fn metrics_account_every_byte(msgs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..100), 1..10)) {
        let net = Network::new();
        net.bind("echo", echo());
        let client = net.client("echo");
        let mut expect_bytes = 0u64;
        for m in &msgs {
            let pdu = Pdu::KeyResponse { encrypted_key: m.clone() };
            expect_bytes += encode_envelope(&pdu).len() as u64;
            client.call(&pdu).unwrap();
        }
        let metrics = net.metrics("echo").unwrap();
        prop_assert_eq!(metrics.requests, msgs.len() as u64);
        prop_assert_eq!(metrics.bytes_in, expect_bytes);
        prop_assert_eq!(metrics.bytes_out, expect_bytes); // echo
        prop_assert_eq!(metrics.dropped, 0);
    }

    #[test]
    fn fault_injection_is_reproducible(seed in any::<u64>(), rate_pct in 1u32..100) {
        let run = || {
            let net = Network::new();
            net.bind_with(
                "lossy",
                echo(),
                FaultConfig {
                    drop_rate: rate_pct as f64 / 100.0,
                    seed,
                    ..Default::default()
                },
            );
            let client = net.client("lossy");
            (0..50)
                .map(|_| client.call(&Pdu::ParamsRequest).is_ok())
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
