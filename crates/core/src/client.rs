//! Receiving Client (RC) — the retrieval side of the protocol.
//!
//! The RC runs two conversations (§V.D): it authenticates to the MWS with
//! its hashed password and receives `Token ‖ messages`; it then opens the
//! token with its RSA private key, authenticates to the PKG with the
//! enclosed ticket, requests `sI` per message (`AID ‖ Nonce`) and decrypts.
//! Throughout, the RC never sees its attribute strings — only AIDs.

use crate::clock::LogicalClock;
use crate::errors::CoreError;
use crate::gatekeeper::compose_rc_auth;
use crate::pkg_service::{compose_authenticator, CONFIRM_LABEL, KEY_LABEL};
use crate::sealed::open_blob;
use crate::token::TokenGenerator;
use mws_crypto::{Digest, HmacDrbg, RsaKeyPair, Sha256};
use mws_ibe::{AttrCiphertext, CipherAlgo, IbeSystem, UserPrivateKey};
use mws_net::Client;
use mws_wire::{Pdu, WireMessage, WireReader};

/// A message the RC has retrieved and decrypted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetrievedMessage {
    /// Warehouse id.
    pub message_id: u64,
    /// The AID the message was filed under (the RC's only view of "what
    /// kind of message this is").
    pub aid: u64,
    /// Decrypted plaintext.
    pub plaintext: Vec<u8>,
    /// Deposit timestamp.
    pub timestamp: u64,
}

/// An authenticated PKG session.
pub struct PkgSession {
    session_id: u64,
    session_key: Vec<u8>,
}

/// A provisioned receiving client.
pub struct ReceivingClient {
    rc_id: String,
    hash_password: Vec<u8>,
    rsa: RsaKeyPair,
    ibe: IbeSystem,
    clock: LogicalClock,
    rng: HmacDrbg,
    mws: Client,
    pkg: Client,
}

impl ReceivingClient {
    /// Creates a client from provisioning material.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        rc_id: &str,
        password: &str,
        rsa: RsaKeyPair,
        ibe: IbeSystem,
        clock: LogicalClock,
        rng_seed: u64,
        mws: Client,
        pkg: Client,
    ) -> Self {
        Self {
            rc_id: rc_id.to_string(),
            hash_password: Sha256::digest(password.as_bytes()),
            rsa,
            ibe,
            clock,
            rng: HmacDrbg::new(&rng_seed.to_be_bytes(), rc_id.as_bytes()),
            mws,
            pkg,
        }
    }

    /// The client identity.
    pub fn id(&self) -> &str {
        &self.rc_id
    }

    /// Phase MWS–RC: authenticates and retrieves `(token, messages)`.
    pub fn retrieve(&mut self, since: u64) -> Result<(Vec<u8>, Vec<WireMessage>), CoreError> {
        self.retrieve_page(since, 0)
    }

    /// Like [`Self::retrieve`] with an explicit page size (`limit = 0`
    /// means no cap). For very large warehouses, page with
    /// `since = last.timestamp` between calls.
    pub fn retrieve_page(
        &mut self,
        since: u64,
        limit: u32,
    ) -> Result<(Vec<u8>, Vec<WireMessage>), CoreError> {
        // Mint a trace unless the caller already opened one (e.g. the
        // retrieve-and-decrypt pipeline traces the whole exchange).
        let _span = mint_unless_traced();
        let t = self.clock.now();
        let auth = compose_rc_auth(&mut self.rng, &self.hash_password, &self.rc_id, t);
        let reply = self.mws.call(&Pdu::RetrieveRequest {
            rc_id: self.rc_id.clone(),
            auth,
            since,
            limit,
        })?;
        match reply {
            Pdu::RetrieveResponse { token, messages } => Ok((token, messages)),
            Pdu::Error { code, detail } => Err(CoreError::from_wire_error(code, detail)),
            _ => Err(CoreError::UnexpectedReply),
        }
    }

    /// Phase RC–PKG (authentication): opens the token, presents the ticket
    /// and authenticator, verifies the PKG's confirmation.
    pub fn open_pkg_session(&mut self, token: &[u8]) -> Result<PkgSession, CoreError> {
        let _span = mint_unless_traced();
        let (session_key, ticket) = TokenGenerator::parse_token(&self.rsa.private, token)
            .ok_or(CoreError::Crypto("token rejected"))?;
        let t = self.clock.now();
        let authenticator = compose_authenticator(&mut self.rng, &session_key, &self.rc_id, t);
        let reply = self.pkg.call(&Pdu::PkgAuthRequest {
            rc_id: self.rc_id.clone(),
            ticket,
            authenticator,
        })?;
        let (session_id, confirmation) = match reply {
            Pdu::PkgAuthResponse {
                session_id,
                confirmation,
            } => (session_id, confirmation),
            Pdu::Error { code, detail } => return Err(CoreError::from_wire_error(code, detail)),
            _ => return Err(CoreError::UnexpectedReply),
        };
        // Mutual authentication: the confirmation must decrypt to T+1.
        let body = open_blob(&session_key, CONFIRM_LABEL, &confirmation)
            .ok_or(CoreError::Crypto("confirmation rejected"))?;
        let mut r = WireReader::new(&body);
        let echoed = r.u64().map_err(CoreError::Wire)?;
        r.finish().map_err(CoreError::Wire)?;
        if echoed != t.wrapping_add(1) {
            return Err(CoreError::Crypto("confirmation mismatch"));
        }
        Ok(PkgSession {
            session_id,
            session_key,
        })
    }

    /// Phase RC–PKG (key request): fetches `sI` for one message.
    pub fn fetch_key(
        &mut self,
        session: &PkgSession,
        aid: u64,
        nonce: &[u8],
    ) -> Result<UserPrivateKey, CoreError> {
        let _span = mint_unless_traced();
        let reply = self.pkg.call(&Pdu::KeyRequest {
            session_id: session.session_id,
            aid,
            nonce: nonce.to_vec(),
        })?;
        let encrypted_key = match reply {
            Pdu::KeyResponse { encrypted_key } => encrypted_key,
            Pdu::Error { code, detail } => return Err(CoreError::from_wire_error(code, detail)),
            _ => return Err(CoreError::UnexpectedReply),
        };
        let sk_bytes = open_blob(&session.session_key, KEY_LABEL, &encrypted_key)
            .ok_or(CoreError::Crypto("key delivery rejected"))?;
        Ok(self.ibe.sk_from_bytes(&sk_bytes)?)
    }

    /// Decrypts one retrieved message with its private key.
    pub fn decrypt_message(
        &self,
        msg: &WireMessage,
        sk: &UserPrivateKey,
    ) -> Result<Vec<u8>, CoreError> {
        let u = self.ibe.pairing().field().point_from_bytes(&msg.u)?;
        let algo =
            CipherAlgo::from_wire_id(msg.algo).ok_or(CoreError::Crypto("unknown cipher id"))?;
        let ct = AttrCiphertext {
            u,
            algo,
            sealed: msg.sealed.clone(),
        };
        Ok(self.ibe.decrypt_attr(sk, &ct, &msg.aad)?)
    }

    /// The full pipeline: retrieve, open a PKG session, fetch every key and
    /// decrypt every message.
    pub fn retrieve_and_decrypt(&mut self, since: u64) -> Result<Vec<RetrievedMessage>, CoreError> {
        // One trace covers the whole collect pipeline: the MWS retrieve,
        // the PKG session handshake and every key fetch.
        let _span = mws_obs::trace::enter(mws_obs::trace::mint());
        let (token, messages) = self.retrieve(since)?;
        if messages.is_empty() {
            return Ok(Vec::new());
        }
        let session = self.open_pkg_session(&token)?;
        let mut out = Vec::with_capacity(messages.len());
        for msg in &messages {
            let sk = self.fetch_key(&session, msg.aid, &msg.nonce)?;
            let plaintext = self.decrypt_message(msg, &sk)?;
            out.push(RetrievedMessage {
                message_id: msg.message_id,
                aid: msg.aid,
                plaintext,
                timestamp: msg.timestamp,
            });
        }
        Ok(out)
    }
}

/// Opens a fresh trace scope unless one is already active on this thread.
fn mint_unless_traced() -> Option<mws_obs::trace::SpanGuard> {
    mws_obs::trace::current()
        .is_none()
        .then(|| mws_obs::trace::enter(mws_obs::trace::mint()))
}
