//! Message segmentation — paper §VIII future work.
//!
//! "Another future feature would be to divide a message into segments, where
//! each segment has a different attribute assigned. In such a case a message
//! may provide three parts … total consumption in a day, error notifications
//! and events. Each part may be important to different service providers,
//! and a case may arise where sharing of this information would break
//! confidentiality."
//!
//! Each segment's plaintext is framed with a group header
//! (`group_id ‖ index ‖ total`) before encryption, so an RC that receives
//! several segments of one reading can reassemble them — and an RC entitled
//! to only one attribute learns nothing about the others (each segment is
//! encrypted under its own attribute key).

use mws_wire::{WireReader, WireWriter};
use rand::RngCore;

/// Identifies one multi-segment message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentGroup {
    /// Random group identifier.
    pub group_id: [u8; 12],
    /// Originating device.
    pub sd_id: String,
    /// Number of segments.
    pub total: u32,
}

/// A decoded segment frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentFrame {
    /// Group identifier.
    pub group_id: [u8; 12],
    /// Originating device.
    pub sd_id: String,
    /// Index within the group.
    pub index: u32,
    /// Group size.
    pub total: u32,
    /// Segment payload.
    pub payload: Vec<u8>,
}

impl SegmentGroup {
    /// Starts a new group of `total` segments.
    pub fn new<R: RngCore + ?Sized>(rng: &mut R, sd_id: &str, total: usize) -> Self {
        let mut group_id = [0u8; 12];
        rng.fill_bytes(&mut group_id);
        Self {
            group_id,
            sd_id: sd_id.to_string(),
            total: total as u32,
        }
    }

    /// Frames one segment's plaintext.
    pub fn frame_segment(&self, index: usize, payload: &[u8]) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.bytes(&self.group_id)
            .string(&self.sd_id)
            .u32(index as u32)
            .u32(self.total)
            .bytes(payload);
        w.finish()
    }
}

impl SegmentFrame {
    /// Parses a framed segment (the inverse of
    /// [`SegmentGroup::frame_segment`]).
    pub fn parse(framed: &[u8]) -> Option<Self> {
        let mut r = WireReader::new(framed);
        let gid = r.bytes().ok()?;
        let group_id: [u8; 12] = gid.try_into().ok()?;
        let sd_id = r.string().ok()?;
        let index = r.u32().ok()?;
        let total = r.u32().ok()?;
        let payload = r.bytes().ok()?;
        r.finish().ok()?;
        if index >= total {
            return None;
        }
        Some(Self {
            group_id,
            sd_id,
            index,
            total,
            payload,
        })
    }
}

/// Reassembles segment frames into complete groups.
///
/// Call [`Reassembler::add`] with every decrypted frame; complete groups are
/// returned as `(group, ordered payloads)` once all members arrive.
#[derive(Debug, Default)]
pub struct Reassembler {
    pending: std::collections::HashMap<[u8; 12], Vec<Option<SegmentFrame>>>,
}

impl Reassembler {
    /// An empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a frame; returns the completed group's payloads when this frame
    /// was the last missing member.
    pub fn add(&mut self, frame: SegmentFrame) -> Option<Vec<Vec<u8>>> {
        let slots = self
            .pending
            .entry(frame.group_id)
            .or_insert_with(|| vec![None; frame.total as usize]);
        if slots.len() != frame.total as usize {
            return None; // inconsistent total: ignore
        }
        let idx = frame.index as usize;
        if slots[idx].is_some() {
            return None; // duplicate
        }
        slots[idx] = Some(frame.clone());
        if slots.iter().all(Option::is_some) {
            let done = self.pending.remove(&frame.group_id).expect("present");
            Some(
                done.into_iter()
                    .map(|f| f.expect("all present").payload)
                    .collect(),
            )
        } else {
            None
        }
    }

    /// Number of incomplete groups held.
    pub fn pending_groups(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mws_crypto::HmacDrbg;

    #[test]
    fn frame_parse_roundtrip() {
        let mut rng = HmacDrbg::from_u64(1);
        let group = SegmentGroup::new(&mut rng, "meter-1", 3);
        let framed = group.frame_segment(1, b"errors: none");
        let frame = SegmentFrame::parse(&framed).unwrap();
        assert_eq!(frame.group_id, group.group_id);
        assert_eq!(frame.sd_id, "meter-1");
        assert_eq!(frame.index, 1);
        assert_eq!(frame.total, 3);
        assert_eq!(frame.payload, b"errors: none");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(SegmentFrame::parse(b"").is_none());
        assert!(SegmentFrame::parse(b"not a frame").is_none());
        // index >= total
        let mut rng = HmacDrbg::from_u64(2);
        let group = SegmentGroup::new(&mut rng, "m", 2);
        let mut framed = group.frame_segment(0, b"x");
        // Patch index to 5 (offset: 4+12 group, 4+1 sd_id, then u32 index LE).
        let idx_off = 4 + 12 + 4 + 1;
        framed[idx_off] = 5;
        assert!(SegmentFrame::parse(&framed).is_none());
    }

    #[test]
    fn reassembly_out_of_order() {
        let mut rng = HmacDrbg::from_u64(3);
        let group = SegmentGroup::new(&mut rng, "m", 3);
        let frames: Vec<_> = (0..3)
            .map(|i| {
                SegmentFrame::parse(&group.frame_segment(i, format!("part{i}").as_bytes())).unwrap()
            })
            .collect();
        let mut r = Reassembler::new();
        assert!(r.add(frames[2].clone()).is_none());
        assert!(r.add(frames[0].clone()).is_none());
        let done = r.add(frames[1].clone()).unwrap();
        assert_eq!(
            done,
            vec![b"part0".to_vec(), b"part1".to_vec(), b"part2".to_vec()]
        );
        assert_eq!(r.pending_groups(), 0);
    }

    #[test]
    fn duplicates_and_interleaved_groups() {
        let mut rng = HmacDrbg::from_u64(4);
        let g1 = SegmentGroup::new(&mut rng, "m", 2);
        let g2 = SegmentGroup::new(&mut rng, "m", 2);
        let mut r = Reassembler::new();
        let f10 = SegmentFrame::parse(&g1.frame_segment(0, b"a")).unwrap();
        let f20 = SegmentFrame::parse(&g2.frame_segment(0, b"c")).unwrap();
        let f11 = SegmentFrame::parse(&g1.frame_segment(1, b"b")).unwrap();
        assert!(r.add(f10.clone()).is_none());
        assert!(r.add(f10).is_none(), "duplicate ignored");
        assert!(r.add(f20).is_none());
        assert_eq!(r.pending_groups(), 2);
        let done = r.add(f11).unwrap();
        assert_eq!(done, vec![b"a".to_vec(), b"b".to_vec()]);
        assert_eq!(r.pending_groups(), 1, "g2 still pending");
    }

    #[test]
    fn single_segment_group_completes_immediately() {
        let mut rng = HmacDrbg::from_u64(5);
        let g = SegmentGroup::new(&mut rng, "m", 1);
        let f = SegmentFrame::parse(&g.frame_segment(0, b"only")).unwrap();
        let mut r = Reassembler::new();
        assert_eq!(r.add(f).unwrap(), vec![b"only".to_vec()]);
    }
}
