//! Audit trail — the paper's "optionally an alert is sent to the
//! administrator" (§V.B), generalized to every security-relevant event.

use std::collections::VecDeque;

/// Kinds of audited events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuditEvent {
    /// A deposit passed MAC verification and was stored.
    DepositAccepted {
        /// Device id.
        sd_id: String,
        /// Assigned message id.
        message_id: u64,
    },
    /// A deposit failed authentication and was discarded (§V.B's alert).
    DepositRejected {
        /// Claimed device id.
        sd_id: String,
        /// Why.
        reason: String,
    },
    /// An RC authenticated and retrieved messages.
    RetrieveServed {
        /// RC identity.
        rc_id: String,
        /// How many messages matched.
        count: usize,
    },
    /// An RC failed authentication.
    RetrieveRejected {
        /// Claimed RC identity.
        rc_id: String,
        /// Why.
        reason: String,
    },
    /// A policy grant was added.
    Granted {
        /// RC identity.
        rc_id: String,
        /// Attribute granted.
        attribute: String,
    },
    /// A policy grant was revoked.
    Revoked {
        /// RC identity.
        rc_id: String,
        /// Attribute revoked.
        attribute: String,
    },
    /// The PKG served a private key.
    KeyServed {
        /// RC identity.
        rc_id: String,
        /// AID requested.
        aid: u64,
    },
    /// The PKG refused a request.
    KeyRejected {
        /// RC identity (if known).
        rc_id: String,
        /// Why.
        reason: String,
    },
}

/// One audit log entry: what happened, when, and under which trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditRecord {
    /// Logical time the event was recorded at.
    pub at: u64,
    /// Trace id of the request being served when the event fired
    /// (`0` when no trace scope was active) — lets one deposit be
    /// followed from the wire into the audit trail.
    pub trace_id: u64,
    /// What happened.
    pub event: AuditEvent,
}

/// A bounded in-memory audit log with timestamps.
#[derive(Debug)]
pub struct AuditLog {
    capacity: usize,
    events: VecDeque<AuditRecord>,
}

impl AuditLog {
    /// Creates a log retaining the last `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            events: VecDeque::new(),
        }
    }

    /// Records an event at the given logical time, stamping it with the
    /// current trace scope (if any).
    pub fn record(&mut self, at: u64, event: AuditEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        let trace_id = mws_obs::trace::current().map_or(0, |c| c.trace_id);
        self.events.push_back(AuditRecord {
            at,
            trace_id,
            event,
        });
    }

    /// All retained records, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &AuditRecord> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Count of rejection events (quick anomaly signal).
    pub fn rejection_count(&self) -> usize {
        self.events
            .iter()
            .filter(|r| {
                matches!(
                    r.event,
                    AuditEvent::DepositRejected { .. }
                        | AuditEvent::RetrieveRejected { .. }
                        | AuditEvent::KeyRejected { .. }
                )
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut log = AuditLog::new(10);
        log.record(
            1,
            AuditEvent::Granted {
                rc_id: "a".into(),
                attribute: "x".into(),
            },
        );
        log.record(
            2,
            AuditEvent::Revoked {
                rc_id: "a".into(),
                attribute: "x".into(),
            },
        );
        let got: Vec<u64> = log.events().map(|r| r.at).collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn records_stamp_the_active_trace() {
        let mut log = AuditLog::new(4);
        log.record(
            1,
            AuditEvent::Granted {
                rc_id: "a".into(),
                attribute: "x".into(),
            },
        );
        let ctx = mws_obs::trace::TraceContext {
            trace_id: 0xfeed,
            span_id: 0xbeef,
        };
        {
            let _span = mws_obs::trace::enter(ctx);
            log.record(
                2,
                AuditEvent::Revoked {
                    rc_id: "a".into(),
                    attribute: "x".into(),
                },
            );
        }
        let got: Vec<u64> = log.events().map(|r| r.trace_id).collect();
        assert_eq!(got, vec![0, 0xfeed], "untraced is 0, traced carries the id");
    }

    #[test]
    fn bounded_capacity_drops_oldest() {
        let mut log = AuditLog::new(2);
        for i in 0..5 {
            log.record(
                i,
                AuditEvent::RetrieveServed {
                    rc_id: "r".into(),
                    count: 0,
                },
            );
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.events().next().unwrap().at, 3);
    }

    #[test]
    fn rejection_counter() {
        let mut log = AuditLog::new(10);
        assert!(log.is_empty());
        log.record(
            0,
            AuditEvent::DepositAccepted {
                sd_id: "s".into(),
                message_id: 1,
            },
        );
        log.record(
            1,
            AuditEvent::DepositRejected {
                sd_id: "s".into(),
                reason: "mac".into(),
            },
        );
        log.record(
            2,
            AuditEvent::KeyRejected {
                rc_id: "r".into(),
                reason: "ticket".into(),
            },
        );
        assert_eq!(log.rejection_count(), 2);
    }
}
