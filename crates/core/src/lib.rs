//! The Message Warehousing Service — the paper's contribution (§V).
//!
//! Every component of Figure 3 exists as a typed unit:
//!
//! | Paper component | Module |
//! |---|---|
//! | Smart Device (SD) | [`device::SmartDevice`] |
//! | Smart Device Authenticator (SDA) + key management | [`sda::SdAuthenticator`], [`registry::DeviceRegistry`] |
//! | Message Database (MD) | `mws_store::MessageDb` (owned by the MMS) |
//! | Message Management System (MMS) | [`mms::MessageManagementSystem`] |
//! | Policy Database (PD) | `mws_store::PolicyDb` (owned by the MMS) |
//! | Token Generator (TG) | [`token::TokenGenerator`] |
//! | User Database | `mws_store::UserDb` (owned by the Gatekeeper) |
//! | Gatekeeper | [`gatekeeper::Gatekeeper`] |
//! | Private Key Generator (PKG) | [`pkg_service::PkgService`] |
//! | Receiving Client (RC) | [`client::ReceivingClient`] |
//!
//! [`protocol::Deployment`] wires all of them onto an `mws-net` network and
//! is the API the examples, integration tests and benchmarks drive. The
//! protocol implemented is §V.D verbatim (all three phases, tickets, tokens,
//! authenticators, AID indirection, per-message nonces), plus the paper's
//! §VIII future-work items: replay windows with real timestamps, message
//! segmentation ([`segmentation`]), pattern policies ([`policy`]), device
//! signatures, and a threshold-PKG deployment option.
//!
//! # Quickstart
//!
//! ```
//! use mws_core::protocol::{Deployment, DeploymentConfig};
//!
//! let mut dep = Deployment::new(DeploymentConfig::test_default());
//! dep.register_device("meter-1");
//! dep.register_client("utility-co", "pw", &["ELECTRIC-APT9"]);
//! let mut meter = dep.device("meter-1");
//! meter.deposit("ELECTRIC-APT9", b"kwh=42").unwrap();
//! let mut rc = dep.client("utility-co", "pw");
//! let msgs = rc.retrieve_and_decrypt(0).unwrap();
//! assert_eq!(msgs.len(), 1);
//! assert_eq!(msgs[0].plaintext, b"kwh=42");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod client;
pub mod clock;
pub mod device;
pub mod errors;
pub mod gatekeeper;
pub mod mms;
pub(crate) mod obs;
pub mod pkg_service;
pub mod policy;
pub mod protocol;
pub mod registry;
pub mod relay;
pub mod sda;
pub mod sealed;
pub mod segmentation;
pub mod token;

pub use errors::{CoreError, ErrorCode};
pub use protocol::{Deployment, DeploymentConfig, RetrievedMessage};
