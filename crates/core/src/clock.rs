//! Logical time and replay protection.
//!
//! The paper's protocol carries timestamps `T` "to prevent replay attacks"
//! (§V.D) but the prototype dropped them ("time synchronization is not taken
//! into consideration", §VI.A). We implement the protocol as designed: a
//! deployment-wide logical clock plus a per-service [`ReplayGuard`]
//! combining a freshness window with a seen-nonce cache. `ReplayPolicy::Off`
//! reproduces the prototype's (insecure) behaviour for comparison tests.

use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared monotonically increasing logical clock.
///
/// Simulations tick it explicitly, so every run is reproducible; a real
/// deployment would map this onto wall-clock seconds.
#[derive(Clone, Debug, Default)]
pub struct LogicalClock {
    now: Arc<AtomicU64>,
}

impl LogicalClock {
    /// A clock starting at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current time.
    pub fn now(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    /// Advances by `ticks` and returns the new time.
    pub fn advance(&self, ticks: u64) -> u64 {
        self.now.fetch_add(ticks, Ordering::SeqCst) + ticks
    }
}

/// Replay-protection policy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayPolicy {
    /// Prototype behaviour: accept anything (§VI.A).
    Off,
    /// Accept timestamps within `±window` of local time and reject nonces
    /// seen in the last `cache` entries.
    Window {
        /// Maximum tolerated clock skew (logical ticks).
        window: u64,
        /// Seen-nonce cache capacity.
        cache: usize,
    },
}

impl ReplayPolicy {
    /// The default hardened policy.
    pub fn standard() -> Self {
        ReplayPolicy::Window {
            window: 16,
            cache: 4096,
        }
    }
}

/// Stateful replay detector.
///
/// The seen-nonce cache is a hash set paired with a FIFO eviction queue, so
/// both the membership probe on [`Self::check`] and the eviction on
/// [`Self::record`] are O(1) — this guard sits on the deposit hot path
/// under the service lock, where a linear scan of a 4096-entry cache would
/// cap warehouse throughput regardless of how many shards sit behind it.
#[derive(Debug)]
pub struct ReplayGuard {
    policy: ReplayPolicy,
    seen: HashSet<Vec<u8>>,
    order: VecDeque<Vec<u8>>,
}

impl ReplayGuard {
    /// Creates a guard with the given policy.
    pub fn new(policy: ReplayPolicy) -> Self {
        Self {
            policy,
            seen: HashSet::new(),
            order: VecDeque::new(),
        }
    }

    /// Checks freshness of `(timestamp, nonce)` against `now`, recording the
    /// nonce. Returns `false` when the message must be rejected as a replay.
    pub fn check_and_record(&mut self, now: u64, timestamp: u64, nonce: &[u8]) -> bool {
        if !self.check(now, timestamp, nonce) {
            return false;
        }
        self.record(nonce);
        true
    }

    /// Checks freshness of `(timestamp, nonce)` without recording anything.
    ///
    /// Split from [`Self::check_and_record`] so a service can defer the
    /// recording until *after* the guarded operation durably succeeded: a
    /// nonce recorded before a failed store would turn the device's honest
    /// retransmission into a "replay" and lose the deposit forever.
    pub fn check(&self, now: u64, timestamp: u64, nonce: &[u8]) -> bool {
        match self.policy {
            ReplayPolicy::Off => true,
            ReplayPolicy::Window { window, .. } => {
                let fresh = timestamp <= now.saturating_add(window)
                    && timestamp.saturating_add(window) >= now;
                fresh && !self.seen.contains(nonce)
            }
        }
    }

    /// Records a nonce as seen (second half of [`Self::check_and_record`]).
    pub fn record(&mut self, nonce: &[u8]) {
        if let ReplayPolicy::Window { cache, .. } = self.policy {
            if !self.seen.insert(nonce.to_vec()) {
                return; // already cached; keep its original eviction slot
            }
            if self.order.len() == cache {
                if let Some(oldest) = self.order.pop_front() {
                    self.seen.remove(&oldest);
                }
            }
            self.order.push_back(nonce.to_vec());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_and_shared() {
        let c = LogicalClock::new();
        let c2 = c.clone();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(5), 5);
        assert_eq!(c2.now(), 5, "clones share state");
    }

    #[test]
    fn off_policy_accepts_everything() {
        let mut g = ReplayGuard::new(ReplayPolicy::Off);
        assert!(g.check_and_record(0, 10_000, b"n"));
        assert!(g.check_and_record(0, 10_000, b"n"), "even replays");
    }

    #[test]
    fn window_rejects_stale_and_future() {
        let mut g = ReplayGuard::new(ReplayPolicy::Window {
            window: 5,
            cache: 10,
        });
        assert!(g.check_and_record(100, 100, b"a"));
        assert!(g.check_and_record(100, 95, b"b"), "lower edge");
        assert!(g.check_and_record(100, 105, b"c"), "upper edge");
        assert!(!g.check_and_record(100, 94, b"d"), "too old");
        assert!(!g.check_and_record(100, 106, b"e"), "too far ahead");
    }

    #[test]
    fn nonce_replay_rejected() {
        let mut g = ReplayGuard::new(ReplayPolicy::Window {
            window: 5,
            cache: 10,
        });
        assert!(g.check_and_record(0, 0, b"once"));
        assert!(!g.check_and_record(0, 0, b"once"));
        assert!(g.check_and_record(0, 0, b"twice"));
    }

    #[test]
    fn cache_eviction_is_fifo() {
        let mut g = ReplayGuard::new(ReplayPolicy::Window {
            window: 100,
            cache: 2,
        });
        assert!(g.check_and_record(0, 0, b"1"));
        assert!(g.check_and_record(0, 0, b"2"));
        assert!(g.check_and_record(0, 0, b"3")); // evicts "1"
        assert!(g.check_and_record(0, 0, b"1"), "evicted nonce re-accepted");
        assert!(
            !g.check_and_record(0, 0, b"3"),
            "recent nonce still blocked"
        );
    }

    #[test]
    fn rejected_nonce_is_not_recorded() {
        let mut g = ReplayGuard::new(ReplayPolicy::Window {
            window: 1,
            cache: 10,
        });
        assert!(!g.check_and_record(100, 0, b"stale"));
        // The stale message's nonce must not poison the cache.
        assert!(g.check_and_record(100, 100, b"stale"));
    }
}
