//! Distribution points — paper §VIII future work.
//!
//! "A more distributed infrastructure can also be proposed, so the MWS-SD
//! and MWS-Client can be located in different areas, and when required pull
//! messages. In such a case, distribution points can be considered to
//! improve the scalability of the system."
//!
//! An [`IngestPoint`] is a lightweight MWS-SD edge: it authenticates device
//! deposits exactly like the central SDA (same replay policy, same MAC/IBS
//! verification) and buffers them with per-site sequence numbers. The
//! central warehouse runs a [`RelayPuller`] that fetches batches with a
//! resumable cursor; batches are integrity-protected by an HMAC under the
//! site↔center shared key, so a compromised network between sites cannot
//! inject or reorder deposits.

use crate::audit::{AuditEvent, AuditLog};
use crate::clock::{LogicalClock, ReplayPolicy};
use crate::errors::CoreError;
use crate::registry::DeviceRegistry;
use crate::sda::{DeviceAuthVerifier, SdAuthenticator};
use mws_crypto::{Hmac, Sha256};
use mws_net::{Client, Service};
use mws_wire::{Pdu, RelayEntry};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// Maximum entries an ingest point buffers before shedding oldest
/// (sites are expected to be drained far more often).
pub const MAX_BUFFER: usize = 100_000;

/// Canonical bytes the batch MAC covers: every entry field plus the cursor.
fn batch_mac_bytes(entries: &[RelayEntry], next: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    for e in entries {
        buf.extend_from_slice(&e.seq.to_le_bytes());
        for field in [
            e.sd_id.as_bytes(),
            &e.u,
            &e.sealed,
            e.attribute.as_bytes(),
            &e.nonce,
        ] {
            buf.extend_from_slice(&(field.len() as u32).to_le_bytes());
            buf.extend_from_slice(field);
        }
        buf.push(e.algo);
        buf.extend_from_slice(&e.timestamp.to_le_bytes());
    }
    buf.extend_from_slice(&next.to_le_bytes());
    buf
}

/// Computes the inter-site batch MAC.
pub fn batch_mac(relay_key: &[u8], entries: &[RelayEntry], next: u64) -> Vec<u8> {
    Hmac::<Sha256>::mac(relay_key, &batch_mac_bytes(entries, next))
}

struct IngestInner {
    site: String,
    sda: SdAuthenticator,
    relay_key: Vec<u8>,
    buffer: VecDeque<RelayEntry>,
    next_seq: u64,
    clock: LogicalClock,
    audit: AuditLog,
}

/// An MWS-SD edge node buffering verified deposits for central pull.
#[derive(Clone)]
pub struct IngestPoint {
    inner: Arc<Mutex<IngestInner>>,
}

impl IngestPoint {
    /// Creates an ingest point for a site.
    pub fn new(
        site: &str,
        registry: DeviceRegistry,
        device_auth: DeviceAuthVerifier,
        relay_key: &[u8],
        clock: LogicalClock,
        replay: ReplayPolicy,
    ) -> Self {
        Self {
            inner: Arc::new(Mutex::new(IngestInner {
                site: site.to_string(),
                sda: SdAuthenticator::with_verifier(registry, replay, device_auth),
                relay_key: relay_key.to_vec(),
                buffer: VecDeque::new(),
                next_seq: 1, // 1-based so cursor 0 means "nothing applied"
                clock,
                audit: AuditLog::new(1024),
            })),
        }
    }

    /// A bindable service facade.
    pub fn as_service(&self) -> impl Service + 'static {
        let inner = self.inner.clone();
        move |req: Pdu| inner.lock().handle(req)
    }

    /// Registers a device at this site.
    pub fn register_device(&self, sd_id: &str, mac_key: &[u8]) {
        self.inner
            .lock()
            .sda
            .registry_mut()
            .register(sd_id, mac_key);
    }

    /// Entries currently buffered (not yet known to be applied centrally).
    pub fn buffered(&self) -> usize {
        self.inner.lock().buffer.len()
    }

    /// The site name.
    pub fn site(&self) -> String {
        self.inner.lock().site.clone()
    }
}

impl IngestInner {
    fn handle(&mut self, req: Pdu) -> Pdu {
        match req {
            Pdu::DepositRequest {
                sd_id,
                timestamp,
                u,
                algo,
                sealed,
                attribute,
                nonce,
                mac,
            } => {
                let now = self.clock.now();
                if let Err(reject) = self.sda.verify(
                    now, &sd_id, timestamp, &u, &sealed, &attribute, &nonce, &mac,
                ) {
                    self.audit.record(
                        now,
                        AuditEvent::DepositRejected {
                            sd_id,
                            reason: reject.to_string(),
                        },
                    );
                    return Pdu::Error {
                        code: 401,
                        detail: reject.to_string(),
                    };
                }
                let seq = self.next_seq;
                self.next_seq += 1;
                if self.buffer.len() == MAX_BUFFER {
                    self.buffer.pop_front();
                }
                self.buffer.push_back(RelayEntry {
                    seq,
                    sd_id,
                    timestamp,
                    u,
                    algo,
                    sealed,
                    attribute,
                    nonce,
                });
                // Ack with the site-local sequence number; the warehouse id
                // is assigned when the center applies the entry.
                Pdu::DepositAck { message_id: seq }
            }
            Pdu::RelayPull { after, max } => {
                let entries: Vec<RelayEntry> = self
                    .buffer
                    .iter()
                    .filter(|e| e.seq > after)
                    .take(max.min(4096) as usize)
                    .cloned()
                    .collect();
                let next = entries.last().map_or(after, |e| e.seq);
                let mac = batch_mac(&self.relay_key, &entries, next);
                // Entries at or below the acknowledged cursor can be
                // dropped: the puller only advances `after` once applied.
                self.buffer.retain(|e| e.seq > after);
                Pdu::RelayBatch { entries, next, mac }
            }
            _ => Pdu::Error {
                code: 400,
                detail: "unexpected PDU at ingest point".into(),
            },
        }
    }
}

/// Central-side puller with a resumable cursor.
pub struct RelayPuller {
    client: Client,
    relay_key: Vec<u8>,
    cursor: u64,
}

impl RelayPuller {
    /// Creates a puller over a client bound to the ingest point's endpoint.
    pub fn new(client: Client, relay_key: &[u8]) -> Self {
        Self {
            client,
            relay_key: relay_key.to_vec(),
            cursor: 0,
        }
    }

    /// The resume cursor (last applied sequence).
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Pulls one batch (up to `max` entries), verifies its MAC and returns
    /// the entries. The cursor advances only on success, so a failed apply
    /// re-fetches the same entries next time.
    pub fn pull(&mut self, max: u32) -> Result<Vec<RelayEntry>, CoreError> {
        let reply = self.client.call(&Pdu::RelayPull {
            after: self.cursor,
            max,
        })?;
        let (entries, next, mac) = match reply {
            Pdu::RelayBatch { entries, next, mac } => (entries, next, mac),
            Pdu::Error { code, detail } => return Err(CoreError::from_wire_error(code, detail)),
            _ => return Err(CoreError::UnexpectedReply),
        };
        let expect = batch_mac(&self.relay_key, &entries, next);
        if !mws_crypto::ct_eq(&expect, &mac) {
            return Err(CoreError::Crypto("relay batch MAC rejected"));
        }
        // Entries must be in strictly increasing sequence past the cursor.
        let mut last = self.cursor;
        for e in &entries {
            if e.seq <= last {
                return Err(CoreError::Crypto("relay batch out of order"));
            }
            last = e.seq;
        }
        self.cursor = next;
        Ok(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sda::deposit_mac;
    use mws_net::Network;

    fn setup() -> (Network, IngestPoint, LogicalClock) {
        let clock = LogicalClock::new();
        let mut registry = DeviceRegistry::new();
        registry.register("meter-1", b"device-key");
        let point = IngestPoint::new(
            "site-west",
            registry,
            DeviceAuthVerifier::Mac,
            b"relay-shared-key",
            clock.clone(),
            ReplayPolicy::Off,
        );
        let net = Network::new();
        net.bind("ingest-west", point.as_service());
        (net, point, clock)
    }

    fn deposit(net: &Network, n: u64) -> Pdu {
        let mac = deposit_mac(
            b"device-key",
            b"U",
            b"C",
            "ATTR",
            &n.to_be_bytes(),
            "meter-1",
            n,
        );
        let pdu = Pdu::DepositRequest {
            sd_id: "meter-1".into(),
            timestamp: n,
            u: b"U".to_vec(),
            algo: 3,
            sealed: b"C".to_vec(),
            attribute: "ATTR".into(),
            nonce: n.to_be_bytes().to_vec(),
            mac,
        };
        net.client("ingest-west").call(&pdu).unwrap()
    }

    #[test]
    fn edge_verifies_and_buffers() {
        let (net, point, _) = setup();
        assert!(matches!(
            deposit(&net, 1),
            Pdu::DepositAck { message_id: 1 }
        ));
        assert!(matches!(
            deposit(&net, 2),
            Pdu::DepositAck { message_id: 2 }
        ));
        assert_eq!(point.buffered(), 2);
        // Bad MAC rejected at the edge.
        let bad = Pdu::DepositRequest {
            sd_id: "meter-1".into(),
            timestamp: 9,
            u: b"U".to_vec(),
            algo: 3,
            sealed: b"C".to_vec(),
            attribute: "ATTR".into(),
            nonce: b"x".to_vec(),
            mac: vec![0; 32],
        };
        let reply = net.client("ingest-west").call(&bad).unwrap();
        assert!(matches!(reply, Pdu::Error { code: 401, .. }));
        assert_eq!(point.buffered(), 2);
    }

    #[test]
    fn pull_with_cursor_resumption() {
        let (net, _point, _) = setup();
        for n in 1..=5 {
            deposit(&net, n);
        }
        let mut puller = RelayPuller::new(net.client("ingest-west"), b"relay-shared-key");
        let batch = puller.pull(3).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(puller.cursor(), 3); // seqs 1..=3
        let rest = puller.pull(10).unwrap();
        assert_eq!(rest.len(), 2);
        assert_eq!(rest[0].seq, 4);
        // Drained.
        assert!(puller.pull(10).unwrap().is_empty());
        // New deposits resume after the cursor.
        deposit(&net, 6);
        let more = puller.pull(10).unwrap();
        assert_eq!(more.len(), 1);
        assert_eq!(more[0].seq, 6);
    }

    #[test]
    fn wrong_relay_key_rejected() {
        let (net, _point, _) = setup();
        deposit(&net, 1);
        let mut puller = RelayPuller::new(net.client("ingest-west"), b"wrong-key");
        assert!(matches!(
            puller.pull(10),
            Err(CoreError::Crypto("relay batch MAC rejected"))
        ));
        assert_eq!(puller.cursor(), 0, "cursor does not advance on failure");
    }

    #[test]
    fn acked_entries_are_garbage_collected() {
        let (net, point, _) = setup();
        for n in 1..=4 {
            deposit(&net, n);
        }
        let mut puller = RelayPuller::new(net.client("ingest-west"), b"relay-shared-key");
        puller.pull(2).unwrap(); // applies seq 1..=2
        puller.pull(2).unwrap(); // ack of 2 drops 1..=2 at the site
        assert!(point.buffered() <= 2);
    }

    #[test]
    fn batch_mac_covers_every_field() {
        let entries = vec![RelayEntry {
            seq: 1,
            sd_id: "m".into(),
            timestamp: 2,
            u: vec![3],
            algo: 4,
            sealed: vec![5],
            attribute: "A".into(),
            nonce: vec![6],
        }];
        let base = batch_mac(b"k", &entries, 1);
        let mut tampered = entries.clone();
        tampered[0].attribute = "B".into();
        assert_ne!(batch_mac(b"k", &tampered, 1), base);
        let mut tampered = entries.clone();
        tampered[0].sealed = vec![9];
        assert_ne!(batch_mac(b"k", &tampered, 1), base);
        assert_ne!(batch_mac(b"k", &entries, 2), base, "cursor bound");
        assert_ne!(batch_mac(b"k2", &entries, 1), base, "key bound");
    }
}
