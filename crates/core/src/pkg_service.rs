//! Private Key Generator service (Figure 3).
//!
//! "This component maintains a master secret key. It shares a secret key
//! with the Token Generator. It authenticates the RC using a ticket issued
//! by the Token Generator. Once authenticated, it generates the parameter
//! required by the RC to build a private key."
//!
//! Besides the single-master mode, the service can run over a
//! threshold-shared master ([`PkgMaster::Threshold`], §VIII future work) —
//! key extraction then combines `t` partial extracts, so no single share
//! compromise reveals `s`.

use crate::audit::{AuditEvent, AuditLog};
use crate::clock::{LogicalClock, ReplayGuard, ReplayPolicy};
use crate::obs::stats;
use crate::sealed::{open_blob, seal_blob};
use crate::token::TokenGenerator;
use mws_crypto::{Digest, HmacDrbg, Sha256};
use mws_ibe::threshold::MasterShare;
use mws_ibe::{IbeSystem, MasterPublic, MasterSecret};
use mws_net::Service;
use mws_wire::{Pdu, WireReader, WireWriter};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Label for the RC → PKG authenticator blob.
pub const AUTHENTICATOR_LABEL: &str = "rc-pkg-authenticator";
/// Label for the PKG → RC confirmation blob.
pub const CONFIRM_LABEL: &str = "pkg-confirmation";
/// Label for private-key delivery blobs.
pub const KEY_LABEL: &str = "pkg-private-key";

/// How the PKG holds the master secret.
pub enum PkgMaster {
    /// Classic single escrow (the paper's deployed design).
    Single(MasterSecret),
    /// `t`-of-`n` Shamir shares; extraction combines the first `t`
    /// (simulating `t` cooperating share servers in one process — the
    /// separate-server flavor is exercised in `examples/distributed_pkg.rs`).
    Threshold {
        /// The share set.
        shares: Vec<MasterShare>,
        /// Reconstruction threshold.
        t: usize,
    },
}

/// Builds the RC authenticator `E(SecK_RC-PKG, ID_RC ‖ T)` (§V.D).
pub fn compose_authenticator<R: rand::RngCore + ?Sized>(
    rng: &mut R,
    session_key: &[u8],
    rc_id: &str,
    timestamp: u64,
) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.string(rc_id).u64(timestamp);
    seal_blob(rng, session_key, AUTHENTICATOR_LABEL, &w.finish())
}

struct PkgSession {
    rc_id: String,
    session_key: Vec<u8>,
    table: HashMap<u64, String>,
    opened_at: u64,
    /// (aid, nonce) pairs already served — "a private key can only be used
    /// once" (§V.C): one delivery per message per session.
    served: std::collections::HashSet<(u64, Vec<u8>)>,
}

struct PkgInner {
    ibe: IbeSystem,
    master: PkgMaster,
    mpk: MasterPublic,
    mws_secret: Vec<u8>,
    clock: LogicalClock,
    rng: HmacDrbg,
    replay: ReplayGuard,
    sessions: HashMap<u64, PkgSession>,
    next_session: u64,
    session_ttl: u64,
    audit: AuditLog,
}

/// The PKG service handle (cheaply cloneable; bind one clone to the
/// network, keep another for inspection).
#[derive(Clone)]
pub struct PkgService {
    inner: Arc<Mutex<PkgInner>>,
}

impl PkgService {
    /// Creates a PKG.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ibe: IbeSystem,
        master: PkgMaster,
        mpk: MasterPublic,
        mws_secret: &[u8],
        clock: LogicalClock,
        replay: ReplayPolicy,
        rng_seed: u64,
        session_ttl: u64,
    ) -> Self {
        // Build the generator comb table and prepared tapes up front: every
        // extract/session handshake after this hits only the fast paths.
        ibe.pairing().warm_caches();
        mpk.prepared(ibe.pairing());
        Self {
            inner: Arc::new(Mutex::new(PkgInner {
                ibe,
                master,
                mpk,
                mws_secret: mws_secret.to_vec(),
                clock,
                rng: HmacDrbg::new(&rng_seed.to_be_bytes(), b"pkg-service"),
                replay: ReplayGuard::new(replay),
                sessions: HashMap::new(),
                next_session: 1,
                session_ttl,
                audit: AuditLog::new(1024),
            })),
        }
    }

    /// A [`Service`] facade for binding onto a network.
    pub fn as_service(&self) -> impl Service + 'static {
        let inner = self.inner.clone();
        move |req: Pdu| inner.lock().handle(req)
    }

    /// Snapshot of audit rejections (test/ops hook).
    pub fn rejection_count(&self) -> usize {
        self.inner.lock().audit.rejection_count()
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.inner.lock().sessions.len()
    }
}

impl PkgInner {
    fn handle(&mut self, req: Pdu) -> Pdu {
        match req {
            Pdu::ParamsRequest => self.handle_params(),
            Pdu::PkgAuthRequest {
                rc_id,
                ticket,
                authenticator,
            } => {
                let reply = self.handle_auth(rc_id, ticket, authenticator);
                if matches!(reply, Pdu::Error { .. }) {
                    stats().pkg_auth_rejected.inc();
                } else {
                    stats().pkg_sessions_opened.inc();
                    mws_obs::debug!(target: "mws_pkg", "session opened",
                        live_sessions = self.sessions.len(),);
                }
                reply
            }
            Pdu::KeyRequest {
                session_id,
                aid,
                nonce,
            } => {
                let reply = self.handle_key(session_id, aid, nonce);
                if matches!(reply, Pdu::Error { .. }) {
                    stats().pkg_keys_rejected.inc();
                } else {
                    stats().pkg_keys_served.inc();
                }
                reply
            }
            Pdu::HealthRequest => Pdu::HealthResponse {
                role: "pkg".into(),
                ready: true,
                detail: format!("{} live sessions", self.sessions.len()),
            },
            Pdu::StatsRequest => Pdu::StatsResponse {
                role: "pkg".into(),
                text: mws_obs::registry().exposition(),
            },
            _ => err(400, "unexpected PDU at PKG"),
        }
    }

    fn handle_params(&mut self) -> Pdu {
        let params = self.ibe.pairing().params();
        Pdu::ParamsResponse {
            p: params.p.to_be_bytes(),
            q: params.q.to_be_bytes(),
            h: params.h.to_be_bytes(),
            generator: params.generator.clone(),
            mpk: self.ibe.mpk_to_bytes(&self.mpk),
        }
    }

    fn handle_auth(&mut self, rc_id: String, ticket: Vec<u8>, authenticator: Vec<u8>) -> Pdu {
        let now = self.clock.now();
        // Expire stale sessions opportunistically.
        let ttl = self.session_ttl;
        self.sessions.retain(|_, s| s.opened_at + ttl >= now);

        let Some(content) = TokenGenerator::open_ticket(&self.mws_secret, &ticket) else {
            self.audit.record(
                now,
                AuditEvent::KeyRejected {
                    rc_id: rc_id.clone(),
                    reason: "bad ticket".into(),
                },
            );
            return err(401, "ticket rejected");
        };
        if content.rc_id != rc_id {
            self.audit.record(
                now,
                AuditEvent::KeyRejected {
                    rc_id,
                    reason: "ticket identity mismatch".into(),
                },
            );
            return err(401, "ticket rejected");
        }
        // Authenticator: E(SecK_RC-PKG, ID_RC ‖ T).
        let Some(body) = open_blob(&content.session_key, AUTHENTICATOR_LABEL, &authenticator)
        else {
            self.audit.record(
                now,
                AuditEvent::KeyRejected {
                    rc_id,
                    reason: "bad authenticator".into(),
                },
            );
            return err(401, "authenticator rejected");
        };
        let parsed = (|| {
            let mut r = WireReader::new(&body);
            let id = r.string().ok()?;
            let t = r.u64().ok()?;
            r.finish().ok()?;
            Some((id, t))
        })();
        let Some((inner_id, t)) = parsed else {
            return err(401, "authenticator rejected");
        };
        if inner_id != rc_id {
            return err(401, "authenticator rejected");
        }
        // Freshness: T within window, whole-authenticator replay blocked.
        let replay_key = Sha256::digest(&authenticator);
        if !self.replay.check_and_record(now, t, &replay_key) {
            self.audit.record(
                now,
                AuditEvent::KeyRejected {
                    rc_id,
                    reason: "authenticator replay".into(),
                },
            );
            return err(409, "authenticator replayed or stale");
        }

        let session_id = self.next_session;
        self.next_session += 1;
        // Confirmation proves knowledge of the session key: E(K, T+1).
        let mut w = WireWriter::new();
        w.u64(t.wrapping_add(1));
        let confirmation = seal_blob(
            &mut self.rng,
            &content.session_key,
            CONFIRM_LABEL,
            &w.finish(),
        );
        self.sessions.insert(
            session_id,
            PkgSession {
                rc_id,
                session_key: content.session_key,
                table: content.table.into_iter().collect(),
                opened_at: now,
                served: Default::default(),
            },
        );
        Pdu::PkgAuthResponse {
            session_id,
            confirmation,
        }
    }

    fn handle_key(&mut self, session_id: u64, aid: u64, nonce: Vec<u8>) -> Pdu {
        let now = self.clock.now();
        let ttl = self.session_ttl;
        let Some(session) = self
            .sessions
            .get_mut(&session_id)
            .filter(|s| s.opened_at + ttl >= now)
        else {
            return err(404, "unknown or expired session");
        };
        // "RC now starts sending AID ‖ Nonce to PKG. PKG replaces AID with A."
        let Some(attribute) = session.table.get(&aid).cloned() else {
            let rc_id = session.rc_id.clone();
            self.audit.record(
                now,
                AuditEvent::KeyRejected {
                    rc_id,
                    reason: format!("AID {aid} not in ticket"),
                },
            );
            return err(403, "attribute not authorized");
        };
        if !session.served.insert((aid, nonce.clone())) {
            let rc_id = session.rc_id.clone();
            self.audit.record(
                now,
                AuditEvent::KeyRejected {
                    rc_id,
                    reason: "key already served".into(),
                },
            );
            return err(409, "private key already served for this message");
        }
        // I = MapToPoint(SHA1(A ‖ Nonce)); sI via single or threshold master.
        let i_pt = self.ibe.attribute_point(&attribute, &nonce);
        let sk = match &self.master {
            PkgMaster::Single(msk) => self.ibe.extract_point(msk, &i_pt),
            PkgMaster::Threshold { shares, t } => {
                let partials: Vec<_> = shares
                    .iter()
                    .take(*t)
                    .map(|share| self.ibe.partial_extract(share, &i_pt))
                    .collect();
                match self.ibe.combine_partial_keys(&partials) {
                    Ok(k) => k,
                    Err(_) => return err(500, "threshold combination failed"),
                }
            }
        };
        let sk_bytes = self.ibe.sk_to_bytes(&sk);
        let encrypted_key = seal_blob(&mut self.rng, &session.session_key, KEY_LABEL, &sk_bytes);
        let rc_id = session.rc_id.clone();
        self.audit.record(now, AuditEvent::KeyServed { rc_id, aid });
        Pdu::KeyResponse { encrypted_key }
    }
}

fn err(code: u16, detail: &str) -> Pdu {
    Pdu::Error {
        code,
        detail: detail.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ReplayPolicy;
    use crate::token::{TicketContent, TokenGenerator};
    use mws_pairing::SecurityLevel;

    fn pkg() -> (PkgService, IbeSystem, LogicalClock, Vec<u8>) {
        let ibe = IbeSystem::named(SecurityLevel::Toy);
        let mut rng = HmacDrbg::from_u64(1);
        let (msk, mpk) = ibe.setup(&mut rng);
        let clock = LogicalClock::new();
        let secret = b"mws<->pkg".to_vec();
        let svc = PkgService::new(
            ibe.clone(),
            PkgMaster::Single(msk),
            mpk,
            &secret,
            clock.clone(),
            ReplayPolicy::Off,
            7,
            100,
        );
        (svc, ibe, clock, secret)
    }

    #[test]
    fn params_response_is_usable() {
        let (svc, ibe, _, _) = pkg();
        let mut handler = svc.as_service();
        let reply = handler.handle(Pdu::ParamsRequest);
        let (p, q, generator, mpk) = match reply {
            Pdu::ParamsResponse {
                p,
                q,
                generator,
                mpk,
                ..
            } => (p, q, generator, mpk),
            other => panic!("expected ParamsResponse, got {other:?}"),
        };
        assert_eq!(p, ibe.pairing().params().p.to_be_bytes());
        assert_eq!(q, ibe.pairing().params().q.to_be_bytes());
        assert_eq!(generator, ibe.pairing().params().generator);
        assert!(ibe.mpk_from_bytes(&mpk).is_ok());
    }

    #[test]
    fn unexpected_pdu_is_400() {
        let (svc, _, _, _) = pkg();
        let mut handler = svc.as_service();
        let reply = handler.handle(Pdu::DepositAck { message_id: 1 });
        assert!(matches!(reply, Pdu::Error { code: 400, .. }));
    }

    #[test]
    fn auth_with_forged_ticket_is_401_and_audited() {
        let (svc, _, _, _) = pkg();
        let mut handler = svc.as_service();
        let reply = handler.handle(Pdu::PkgAuthRequest {
            rc_id: "rc".into(),
            ticket: vec![0; 64],
            authenticator: vec![0; 32],
        });
        assert!(matches!(reply, Pdu::Error { code: 401, .. }));
        assert_eq!(svc.rejection_count(), 1);
        assert_eq!(svc.session_count(), 0);
    }

    #[test]
    fn ticket_for_other_identity_rejected() {
        let (svc, _, _, secret) = pkg();
        let mut rng = HmacDrbg::from_u64(2);
        let tg = TokenGenerator::new(&secret);
        let session_key = TokenGenerator::fresh_session_key(&mut rng);
        let ticket = tg.build_ticket(
            &mut rng,
            &TicketContent {
                rc_id: "alice".into(),
                session_key: session_key.clone(),
                issued_at: 0,
                table: vec![],
            },
        );
        let authenticator = compose_authenticator(&mut rng, &session_key, "mallory", 0);
        let mut handler = svc.as_service();
        let reply = handler.handle(Pdu::PkgAuthRequest {
            rc_id: "mallory".into(),
            ticket,
            authenticator,
        });
        assert!(matches!(reply, Pdu::Error { code: 401, .. }));
    }

    #[test]
    fn key_request_without_session_is_404() {
        let (svc, _, _, _) = pkg();
        let mut handler = svc.as_service();
        let reply = handler.handle(Pdu::KeyRequest {
            session_id: 999,
            aid: 1,
            nonce: vec![1],
        });
        assert!(matches!(reply, Pdu::Error { code: 404, .. }));
    }

    #[test]
    fn full_session_flow_and_single_use() {
        let (svc, ibe, _, secret) = pkg();
        let mut rng = HmacDrbg::from_u64(3);
        let tg = TokenGenerator::new(&secret);
        let session_key = TokenGenerator::fresh_session_key(&mut rng);
        let ticket = tg.build_ticket(
            &mut rng,
            &TicketContent {
                rc_id: "rc".into(),
                session_key: session_key.clone(),
                issued_at: 0,
                table: vec![(7, "ATTR-X".into())],
            },
        );
        let authenticator = compose_authenticator(&mut rng, &session_key, "rc", 0);
        let mut handler = svc.as_service();
        let reply = handler.handle(Pdu::PkgAuthRequest {
            rc_id: "rc".into(),
            ticket,
            authenticator,
        });
        let (session_id, confirmation) = match reply {
            Pdu::PkgAuthResponse {
                session_id,
                confirmation,
            } => (session_id, confirmation),
            other => panic!("expected PkgAuthResponse, got {other:?}"),
        };
        // Confirmation decrypts to T+1 under the session key.
        let body = open_blob(&session_key, CONFIRM_LABEL, &confirmation).unwrap();
        let mut r = WireReader::new(&body);
        assert_eq!(r.u64().unwrap(), 1);

        // Authorized AID yields a key; unauthorized AID is 403; reuse is 409.
        let reply = handler.handle(Pdu::KeyRequest {
            session_id,
            aid: 7,
            nonce: b"n1".to_vec(),
        });
        let encrypted_key = match reply {
            Pdu::KeyResponse { encrypted_key } => encrypted_key,
            other => panic!("expected KeyResponse, got {other:?}"),
        };
        let sk_bytes = open_blob(&session_key, KEY_LABEL, &encrypted_key).unwrap();
        assert!(ibe.sk_from_bytes(&sk_bytes).is_ok());

        let reply = handler.handle(Pdu::KeyRequest {
            session_id,
            aid: 8,
            nonce: b"n1".to_vec(),
        });
        assert!(matches!(reply, Pdu::Error { code: 403, .. }));

        let reply = handler.handle(Pdu::KeyRequest {
            session_id,
            aid: 7,
            nonce: b"n1".to_vec(),
        });
        assert!(matches!(reply, Pdu::Error { code: 409, .. }));
    }
}
