//! Device registry — the SDA's "key management service" (§V.B).
//!
//! "The SDA utilizes a key management service to obtain the corresponding
//! key related to identity of a SD." Keys are established at
//! registration/licensing (the paper's out-of-scope initial exchange); this
//! registry is that service's state.

use std::collections::HashMap;

/// Per-device registration state.
#[derive(Clone)]
pub struct DeviceRecord {
    /// Device identity.
    pub sd_id: String,
    /// `SecK_SD-MWS`: the shared MAC key.
    pub mac_key: Vec<u8>,
    /// Whether the device may currently deposit.
    pub enabled: bool,
}

impl core::fmt::Debug for DeviceRecord {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "DeviceRecord {{ sd_id: {:?}, enabled: {}, .. }}",
            self.sd_id, self.enabled
        )
    }
}

/// The SD key-management registry.
#[derive(Debug, Default)]
pub struct DeviceRegistry {
    devices: HashMap<String, DeviceRecord>,
}

impl DeviceRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-keys) a device.
    pub fn register(&mut self, sd_id: &str, mac_key: &[u8]) {
        self.devices.insert(
            sd_id.to_string(),
            DeviceRecord {
                sd_id: sd_id.to_string(),
                mac_key: mac_key.to_vec(),
                enabled: true,
            },
        );
    }

    /// Looks up an enabled device's MAC key.
    pub fn mac_key(&self, sd_id: &str) -> Option<&[u8]> {
        self.devices
            .get(sd_id)
            .filter(|d| d.enabled)
            .map(|d| d.mac_key.as_slice())
    }

    /// Disables a device (suspected compromise) without losing its record.
    pub fn disable(&mut self, sd_id: &str) -> bool {
        match self.devices.get_mut(sd_id) {
            Some(d) => {
                d.enabled = false;
                true
            }
            None => false,
        }
    }

    /// Re-enables a device.
    pub fn enable(&mut self, sd_id: &str) -> bool {
        match self.devices.get_mut(sd_id) {
            Some(d) => {
                d.enabled = true;
                true
            }
            None => false,
        }
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when no devices are registered.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut reg = DeviceRegistry::new();
        assert!(reg.is_empty());
        reg.register("meter-1", b"key-1");
        assert_eq!(reg.mac_key("meter-1"), Some(&b"key-1"[..]));
        assert_eq!(reg.mac_key("meter-2"), None);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn rekey_replaces() {
        let mut reg = DeviceRegistry::new();
        reg.register("m", b"old");
        reg.register("m", b"new");
        assert_eq!(reg.mac_key("m"), Some(&b"new"[..]));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn disable_hides_key() {
        let mut reg = DeviceRegistry::new();
        reg.register("m", b"k");
        assert!(reg.disable("m"));
        assert_eq!(reg.mac_key("m"), None);
        assert!(reg.enable("m"));
        assert_eq!(reg.mac_key("m"), Some(&b"k"[..]));
        assert!(!reg.disable("ghost"));
    }
}
