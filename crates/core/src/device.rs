//! Smart Device (Figure 3) — the depositing client.
//!
//! "This component uses the public parameters from the PKG and an attribute
//! describing an eligible receiver to generate a public key. … The SD will
//! also transmit a MAC generated using a symmetric key that it shared during
//! registration with MWS." (§V.B)
//!
//! Devices bootstrap their pairing parameters *from the PKG* over the wire
//! (`ParamsRequest`) — the §VIII fix for the prototype's "the smart device
//! currently generates the parameters as the PKG does, which is not helpful".

use crate::clock::LogicalClock;
use crate::errors::CoreError;
use crate::sda::{deposit_auth_bytes, deposit_mac, encode_ibs_signature, SD_IDENTITY_PREFIX};
use mws_crypto::HmacDrbg;
use mws_ibe::{CipherAlgo, IbeSystem, MasterPublic, UserPrivateKey};
use mws_net::Client;
use mws_pairing::{PairingCtx, PairingParams};
use mws_wire::Pdu;
use rand::RngCore;

/// What a device holds to authenticate its deposits.
#[derive(Clone)]
pub enum DeviceCredential {
    /// `SecK_SD-MWS` for the paper's shared-key MAC (§V.B).
    MacKey(Vec<u8>),
    /// Cha–Cheon signing key `d_SD = s·Q("sd:"‖ID)` (§VIII future work).
    IbsKey(UserPrivateKey),
}

impl core::fmt::Debug for DeviceCredential {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DeviceCredential::MacKey(_) => f.write_str("DeviceCredential::MacKey(..)"),
            DeviceCredential::IbsKey(_) => f.write_str("DeviceCredential::IbsKey(..)"),
        }
    }
}

/// Length of the per-message nonce a device draws.
pub const DEPOSIT_NONCE_LEN: usize = 16;

/// Builds the associated data a deposit's seal binds end-to-end.
///
/// The attribute enters as a hash: the RC receives this AAD verbatim and
/// must not learn the attribute string (§V.D's AID indirection), but the
/// binding still detects any MWS-side swap of attribute, nonce, origin or
/// timestamp.
pub fn deposit_aad(attribute: &str, nonce: &[u8], sd_id: &str, timestamp: u64) -> Vec<u8> {
    use mws_crypto::{Digest, Sha256};
    let mut out = Vec::with_capacity(32 + nonce.len() + sd_id.len() + 8 + 12);
    let attr_digest = Sha256::digest(attribute.as_bytes());
    for field in [attr_digest.as_slice(), nonce, sd_id.as_bytes()] {
        out.extend_from_slice(&(field.len() as u32).to_le_bytes());
        out.extend_from_slice(field);
    }
    out.extend_from_slice(&timestamp.to_be_bytes());
    out
}

/// A provisioned smart device.
pub struct SmartDevice {
    sd_id: String,
    credential: DeviceCredential,
    ibe: IbeSystem,
    mpk: MasterPublic,
    algo: CipherAlgo,
    clock: LogicalClock,
    rng: HmacDrbg,
    mws: Client,
}

impl SmartDevice {
    /// Bootstraps a device: fetches system parameters and the master public
    /// key from the PKG, then binds to the MWS.
    pub fn bootstrap(
        sd_id: &str,
        credential: DeviceCredential,
        algo: CipherAlgo,
        clock: LogicalClock,
        rng_seed: u64,
        mws: Client,
        pkg: &Client,
    ) -> Result<Self, CoreError> {
        let reply = pkg.call(&Pdu::ParamsRequest)?;
        let (params, mpk_bytes) = match reply {
            Pdu::ParamsResponse {
                p,
                q,
                h,
                generator,
                mpk,
            } => (
                PairingParams {
                    p: mws_pairing::FpW::from_be_bytes(&p)
                        .map_err(|_| CoreError::Crypto("bad p"))?,
                    q: mws_pairing::FpW::from_be_bytes(&q)
                        .map_err(|_| CoreError::Crypto("bad q"))?,
                    h: mws_pairing::FpW::from_be_bytes(&h)
                        .map_err(|_| CoreError::Crypto("bad h"))?,
                    generator,
                },
                mpk,
            ),
            Pdu::Error { code, detail } => return Err(CoreError::from_wire_error(code, detail)),
            _ => return Err(CoreError::UnexpectedReply),
        };
        let ctx = PairingCtx::from_params(&params)?;
        let ibe = IbeSystem::new(ctx);
        let mpk = ibe.mpk_from_bytes(&mpk_bytes)?;
        // Precompute once at bootstrap: the generator comb table + tape and
        // P_pub's prepared tape serve every subsequent deposit encryption.
        ibe.pairing().warm_caches();
        mpk.prepared(ibe.pairing());
        Ok(Self {
            sd_id: sd_id.to_string(),
            credential,
            ibe,
            mpk,
            algo,
            clock,
            rng: HmacDrbg::new(&rng_seed.to_be_bytes(), sd_id.as_bytes()),
            mws,
        })
    }

    /// The device identity.
    pub fn id(&self) -> &str {
        &self.sd_id
    }

    /// Composes a deposit PDU without sending it (used by benchmarks to
    /// isolate device-side compute and wire size).
    pub fn compose_deposit(&mut self, attribute: &str, payload: &[u8]) -> Pdu {
        let timestamp = self.clock.now();
        let mut nonce = [0u8; DEPOSIT_NONCE_LEN];
        self.rng.fill_bytes(&mut nonce);
        let aad = deposit_aad(attribute, &nonce, &self.sd_id, timestamp);
        let ct = self.ibe.encrypt_attr(
            &mut self.rng,
            &self.mpk,
            attribute,
            &nonce,
            self.algo,
            &aad,
            payload,
        );
        let u = self.ibe.pairing().field().point_to_bytes(&ct.u);
        let mac = match &self.credential {
            DeviceCredential::MacKey(key) => deposit_mac(
                key,
                &u,
                &ct.sealed,
                attribute,
                &nonce,
                &self.sd_id,
                timestamp,
            ),
            DeviceCredential::IbsKey(d_sd) => {
                let body =
                    deposit_auth_bytes(&u, &ct.sealed, attribute, &nonce, &self.sd_id, timestamp);
                let signing_id = format!("{SD_IDENTITY_PREFIX}{}", self.sd_id);
                let sig = self
                    .ibe
                    .ibs_sign(&mut self.rng, signing_id.as_bytes(), d_sd, &body);
                encode_ibs_signature(&self.ibe, &sig)
            }
        };
        Pdu::DepositRequest {
            sd_id: self.sd_id.clone(),
            timestamp,
            u,
            algo: self.algo.wire_id(),
            sealed: ct.sealed,
            attribute: attribute.to_string(),
            nonce: nonce.to_vec(),
            mac,
        }
    }

    /// Composes a [`Pdu::DepositBatch`] without sending it: one PDU
    /// carrying several independently encrypted and authenticated deposits,
    /// so the warehouse can group-commit rows landing on the same shard
    /// into a single WAL append + fsync (DESIGN.md §9).
    pub fn compose_deposit_batch(&mut self, deposits: &[(&str, &[u8])]) -> Pdu {
        let items = deposits
            .iter()
            .map(
                |(attribute, payload)| match self.compose_deposit(attribute, payload) {
                    Pdu::DepositRequest {
                        timestamp,
                        u,
                        algo,
                        sealed,
                        attribute,
                        nonce,
                        mac,
                        ..
                    } => mws_wire::DepositItem {
                        timestamp,
                        u,
                        algo,
                        sealed,
                        attribute,
                        nonce,
                        mac,
                    },
                    _ => unreachable!("compose_deposit returns DepositRequest"),
                },
            )
            .collect();
        Pdu::DepositBatch {
            sd_id: self.sd_id.clone(),
            items,
        }
    }

    /// Encrypts and deposits several messages in one round trip. Returns
    /// the per-item outcomes in order; an item is only `STORED` /
    /// `DUPLICATE` once durable on its shard, so callers may treat those
    /// statuses exactly like a single deposit's ack.
    pub fn deposit_batch(
        &mut self,
        deposits: &[(&str, &[u8])],
    ) -> Result<Vec<mws_wire::DepositOutcome>, CoreError> {
        let pdu = self.compose_deposit_batch(deposits);
        let _span = mws_obs::trace::enter(mws_obs::trace::mint());
        match self.mws.call(&pdu)? {
            Pdu::DepositBatchAck { results } => {
                if results.len() == deposits.len() {
                    Ok(results)
                } else {
                    Err(CoreError::UnexpectedReply)
                }
            }
            Pdu::Error { code, detail } => Err(CoreError::from_wire_error(code, detail)),
            _ => Err(CoreError::UnexpectedReply),
        }
    }

    /// Encrypts and deposits one message, returning the warehouse id.
    pub fn deposit(&mut self, attribute: &str, payload: &[u8]) -> Result<u64, CoreError> {
        let pdu = self.compose_deposit(attribute, payload);
        // The deposit originates here: mint a fresh trace so the request
        // can be followed through gatekeeper, MMS, store and audit trail.
        let _span = mws_obs::trace::enter(mws_obs::trace::mint());
        match self.mws.call(&pdu)? {
            Pdu::DepositAck { message_id } => Ok(message_id),
            Pdu::Error { code, detail } => Err(CoreError::from_wire_error(code, detail)),
            _ => Err(CoreError::UnexpectedReply),
        }
    }

    /// Deposits one message reliably over a lossy transport: composes the
    /// PDU once (fixed nonce) and retransmits the identical frame up to
    /// `attempts` times until the warehouse acknowledges.
    ///
    /// Returns `Ok(Some(id))` on a fresh or deduplicated ack, and
    /// `Ok(None)` when the warehouse answers 409 Replay — which, given the
    /// MWS's store-then-record ordering, means the deposit is already
    /// warehoused but the original ack (with its id) was lost in transit.
    /// Either way the message is durably stored exactly once.
    pub fn deposit_reliable(
        &mut self,
        attribute: &str,
        payload: &[u8],
        attempts: u32,
    ) -> Result<Option<u64>, CoreError> {
        let pdu = self.compose_deposit(attribute, payload);
        // One trace for the whole reliable exchange: every retransmission
        // is a new span under the same trace id.
        let _span = mws_obs::trace::enter(mws_obs::trace::mint());
        let mut last = CoreError::UnexpectedReply;
        for _ in 0..attempts.max(1) {
            match self.mws.call(&pdu) {
                Ok(Pdu::DepositAck { message_id }) => return Ok(Some(message_id)),
                Ok(Pdu::Error { code, detail }) => {
                    let err = CoreError::from_wire_error(code, detail);
                    match err {
                        CoreError::Remote {
                            code: crate::ErrorCode::Replay,
                            ..
                        } => return Ok(None),
                        // 500 (e.g. a failed store write or fsync) is
                        // retryable: the MWS has not recorded the nonce.
                        CoreError::Remote {
                            code: crate::ErrorCode::Internal,
                            ..
                        } => last = err,
                        other => return Err(other),
                    }
                }
                Ok(_) => return Err(CoreError::UnexpectedReply),
                Err(e) => match e {
                    // Transient transport faults: retry the same frame.
                    mws_net::NetError::Dropped
                    | mws_net::NetError::Timeout
                    | mws_net::NetError::Io(_)
                    | mws_net::NetError::Disconnected
                    | mws_net::NetError::CircuitOpen => last = CoreError::Net(e),
                    other => return Err(CoreError::Net(other)),
                },
            }
        }
        Err(last)
    }

    /// Deposits a multi-segment message (§VIII segmentation): each segment
    /// goes to its own attribute so different providers read different
    /// parts. Returns the warehouse ids in segment order.
    pub fn deposit_segmented(&mut self, segments: &[(&str, &[u8])]) -> Result<Vec<u64>, CoreError> {
        let group =
            crate::segmentation::SegmentGroup::new(&mut self.rng, &self.sd_id, segments.len());
        let mut ids = Vec::with_capacity(segments.len());
        for (i, (attribute, payload)) in segments.iter().enumerate() {
            let framed = group.frame_segment(i, payload);
            ids.push(self.deposit(attribute, &framed)?);
        }
        Ok(ids)
    }
}
