//! Error taxonomy shared by every MWS component, with stable wire codes.

use mws_ibe::IbeError;
use mws_net::NetError;
use mws_pairing::PairingError;
use mws_store::StoreError;
use mws_wire::WireError;

/// Machine-readable protocol error codes (carried in `Pdu::Error`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// Malformed or unexpected request.
    BadRequest = 400,
    /// Authentication failed (MAC, password, ticket or authenticator).
    AuthFailed = 401,
    /// Authenticated but not authorized for the resource.
    Forbidden = 403,
    /// Unknown identity / message / session.
    NotFound = 404,
    /// Timestamp outside the freshness window or nonce replayed.
    Replay = 409,
    /// Internal service failure.
    Internal = 500,
}

impl ErrorCode {
    /// Parses a wire code.
    pub fn from_u16(v: u16) -> Option<Self> {
        Some(match v {
            400 => ErrorCode::BadRequest,
            401 => ErrorCode::AuthFailed,
            403 => ErrorCode::Forbidden,
            404 => ErrorCode::NotFound,
            409 => ErrorCode::Replay,
            500 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// Errors produced by the MWS core.
#[derive(Debug)]
pub enum CoreError {
    /// The peer replied with a protocol error.
    Remote {
        /// Error code.
        code: ErrorCode,
        /// Server-provided detail.
        detail: String,
    },
    /// The peer replied with an unexpected PDU type.
    UnexpectedReply,
    /// Local cryptographic failure (decryption, MAC, signature).
    Crypto(&'static str),
    /// Transport failure.
    Net(NetError),
    /// Storage failure.
    Store(StoreError),
    /// Wire codec failure.
    Wire(WireError),
    /// IBE-layer failure.
    Ibe(IbeError),
    /// Pairing-layer failure.
    Pairing(PairingError),
}

impl core::fmt::Display for CoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CoreError::Remote { code, detail } => write!(f, "remote error {code:?}: {detail}"),
            CoreError::UnexpectedReply => write!(f, "unexpected reply PDU"),
            CoreError::Crypto(what) => write!(f, "crypto failure: {what}"),
            CoreError::Net(e) => write!(f, "net: {e}"),
            CoreError::Store(e) => write!(f, "store: {e}"),
            CoreError::Wire(e) => write!(f, "wire: {e}"),
            CoreError::Ibe(e) => write!(f, "ibe: {e}"),
            CoreError::Pairing(e) => write!(f, "pairing: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<NetError> for CoreError {
    fn from(e: NetError) -> Self {
        CoreError::Net(e)
    }
}

impl From<StoreError> for CoreError {
    fn from(e: StoreError) -> Self {
        CoreError::Store(e)
    }
}

impl From<WireError> for CoreError {
    fn from(e: WireError) -> Self {
        CoreError::Wire(e)
    }
}

impl From<IbeError> for CoreError {
    fn from(e: IbeError) -> Self {
        CoreError::Ibe(e)
    }
}

impl From<PairingError> for CoreError {
    fn from(e: PairingError) -> Self {
        CoreError::Pairing(e)
    }
}

impl CoreError {
    /// Converts a remote `Pdu::Error` into a typed error.
    pub fn from_wire_error(code: u16, detail: String) -> Self {
        CoreError::Remote {
            code: ErrorCode::from_u16(code).unwrap_or(ErrorCode::Internal),
            detail,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for code in [
            ErrorCode::BadRequest,
            ErrorCode::AuthFailed,
            ErrorCode::Forbidden,
            ErrorCode::NotFound,
            ErrorCode::Replay,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_u16(code as u16), Some(code));
        }
        assert_eq!(ErrorCode::from_u16(999), None);
    }

    #[test]
    fn unknown_code_maps_to_internal() {
        assert!(matches!(
            CoreError::from_wire_error(777, "?".into()),
            CoreError::Remote {
                code: ErrorCode::Internal,
                ..
            }
        ));
    }
}
