//! Authenticated secure blobs for the protocol's symmetric envelopes.
//!
//! The paper writes these as `E(key, …)` with DES (§V.D): the RC
//! authenticator, the MWS↔PKG ticket, the PKG confirmation and the key
//! delivery are all "encrypt under a shared secret". This module gives those
//! uses one hardened realization: keys are derived from the shared secret
//! with HKDF (separate encryption/MAC keys per label), the payload is
//! AES-128-CTR + HMAC-SHA256 encrypt-then-MAC, and a random nonce makes
//! every blob distinct.
//!
//! Layout: `nonce(8) ‖ ciphertext ‖ tag(32)`.

use mws_crypto::{kdf, open, seal, Aes128, Sha256};
use rand::RngCore;

const NONCE_LEN: usize = 8;

/// Seals `plaintext` under a shared secret and a domain label.
pub fn seal_blob<R: RngCore + ?Sized>(
    rng: &mut R,
    shared_secret: &[u8],
    label: &str,
    plaintext: &[u8],
) -> Vec<u8> {
    let keys = kdf::<Sha256>(shared_secret, label, 16 + 32);
    let cipher = Aes128::new(&keys[..16]).expect("derived key length");
    let mut nonce = [0u8; NONCE_LEN];
    rng.fill_bytes(&mut nonce);
    let sealed = seal(&cipher, &keys[16..], &nonce, label.as_bytes(), plaintext)
        .expect("derived nonce length");
    let mut out = nonce.to_vec();
    out.extend_from_slice(&sealed);
    out
}

/// Opens a [`seal_blob`] output. `None` on any authentication failure.
pub fn open_blob(shared_secret: &[u8], label: &str, blob: &[u8]) -> Option<Vec<u8>> {
    if blob.len() < NONCE_LEN {
        return None;
    }
    let keys = kdf::<Sha256>(shared_secret, label, 16 + 32);
    let cipher = Aes128::new(&keys[..16]).expect("derived key length");
    let (nonce, sealed) = blob.split_at(NONCE_LEN);
    open(&cipher, &keys[16..], nonce, label.as_bytes(), sealed).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mws_crypto::HmacDrbg;

    #[test]
    fn roundtrip() {
        let mut rng = HmacDrbg::from_u64(1);
        let blob = seal_blob(&mut rng, b"shared", "ticket", b"the payload");
        assert_eq!(
            open_blob(b"shared", "ticket", &blob).unwrap(),
            b"the payload"
        );
    }

    #[test]
    fn wrong_secret_or_label_fails() {
        let mut rng = HmacDrbg::from_u64(2);
        let blob = seal_blob(&mut rng, b"shared", "ticket", b"p");
        assert!(open_blob(b"other", "ticket", &blob).is_none());
        assert!(open_blob(b"shared", "authenticator", &blob).is_none());
    }

    #[test]
    fn tamper_detected_everywhere() {
        let mut rng = HmacDrbg::from_u64(3);
        let blob = seal_blob(&mut rng, b"s", "l", b"payload!");
        for i in 0..blob.len() {
            let mut bad = blob.clone();
            bad[i] ^= 1;
            assert!(open_blob(b"s", "l", &bad).is_none(), "byte {i}");
        }
        assert!(open_blob(b"s", "l", &blob[..4]).is_none(), "truncated");
    }

    #[test]
    fn blobs_are_randomized() {
        let mut rng = HmacDrbg::from_u64(4);
        let a = seal_blob(&mut rng, b"s", "l", b"same");
        let b = seal_blob(&mut rng, b"s", "l", b"same");
        assert_ne!(a, b);
    }

    #[test]
    fn empty_payload() {
        let mut rng = HmacDrbg::from_u64(5);
        let blob = seal_blob(&mut rng, b"s", "l", b"");
        assert_eq!(open_blob(b"s", "l", &blob).unwrap(), b"");
    }
}
