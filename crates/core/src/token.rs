//! Token Generator (Figure 3).
//!
//! "This component generates a ticket, which a RC uses to authenticate with
//! PKG. … The Ticket is a cipher text of the session key SecK_RC-PKG
//! encrypted with the secret key SecK_MWS-PKG. It also contains an
//! 'Attribute ID – Attribute' pairing. The purpose of this pairing is that
//! we do not want RC to know his attribute A." (§V.D)
//!
//! The outer *Token* the paper writes as `E(PubK_RC, SecK_RC-PKG ‖ Ticket)`.
//! RSA-PKCS#1 cannot carry a multi-kilobyte ticket, so this implementation
//! uses the standard hybrid realization: the session key travels under
//! `PubK_RC`, the ticket rides alongside in plaintext — it is already opaque
//! to the RC (sealed under `SecK_MWS-PKG`), so confidentiality is unchanged.
//! Documented as a substitution in DESIGN.md §3.

use crate::sealed::{open_blob, seal_blob};
use mws_crypto::{RsaPrivateKey, RsaPublicKey};
use mws_wire::{WireReader, WireWriter};
use rand::RngCore;

/// What the MWS locks inside a ticket for the PKG's eyes only.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TicketContent {
    /// The RC this ticket was issued to.
    pub rc_id: String,
    /// Fresh session key `SecK_RC-PKG`.
    pub session_key: Vec<u8>,
    /// Issue timestamp (lets the PKG expire tickets).
    pub issued_at: u64,
    /// The AID → attribute table ("PKG replaces AID with A").
    pub table: Vec<(u64, String)>,
}

const TICKET_LABEL: &str = "mws-pkg-ticket";
/// Session keys are 256-bit.
pub const SESSION_KEY_LEN: usize = 32;

/// The MWS-side token/ticket factory, holding `SecK_MWS-PKG`.
pub struct TokenGenerator {
    mws_pkg_secret: Vec<u8>,
}

impl TokenGenerator {
    /// Creates a generator over the MWS↔PKG shared secret.
    pub fn new(mws_pkg_secret: &[u8]) -> Self {
        Self {
            mws_pkg_secret: mws_pkg_secret.to_vec(),
        }
    }

    /// Draws a fresh session key.
    pub fn fresh_session_key<R: RngCore + ?Sized>(rng: &mut R) -> Vec<u8> {
        let mut k = vec![0u8; SESSION_KEY_LEN];
        rng.fill_bytes(&mut k);
        k
    }

    /// Seals a ticket for the PKG.
    pub fn build_ticket<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        content: &TicketContent,
    ) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.string(&content.rc_id)
            .bytes(&content.session_key)
            .u64(content.issued_at)
            .u32(content.table.len() as u32);
        for (aid, attr) in &content.table {
            w.u64(*aid).string(attr);
        }
        seal_blob(rng, &self.mws_pkg_secret, TICKET_LABEL, &w.finish())
    }

    /// PKG-side: opens and parses a ticket. `None` on auth/codec failure.
    pub fn open_ticket(mws_pkg_secret: &[u8], blob: &[u8]) -> Option<TicketContent> {
        let body = open_blob(mws_pkg_secret, TICKET_LABEL, blob)?;
        let mut r = WireReader::new(&body);
        let rc_id = r.string().ok()?;
        let session_key = r.bytes().ok()?;
        let issued_at = r.u64().ok()?;
        let n = r.u32().ok()? as usize;
        if n > 1 << 20 {
            return None;
        }
        let mut table = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let aid = r.u64().ok()?;
            let attr = r.string().ok()?;
            table.push((aid, attr));
        }
        r.finish().ok()?;
        Some(TicketContent {
            rc_id,
            session_key,
            issued_at,
            table,
        })
    }

    /// Builds the RC-facing token: `RSA(PubK_RC, session_key) ‖ ticket`.
    pub fn build_token<R: RngCore + ?Sized>(
        rng: &mut R,
        rc_public: &RsaPublicKey,
        session_key: &[u8],
        ticket: &[u8],
    ) -> Result<Vec<u8>, mws_crypto::RsaError> {
        let wrapped = rc_public.encrypt_pkcs1(rng, session_key)?;
        let mut w = WireWriter::new();
        w.bytes(&wrapped).bytes(ticket);
        Ok(w.finish())
    }

    /// RC-side: recovers `(session_key, ticket)` from a token.
    pub fn parse_token(rc_private: &RsaPrivateKey, token: &[u8]) -> Option<(Vec<u8>, Vec<u8>)> {
        let mut r = WireReader::new(token);
        let wrapped = r.bytes().ok()?;
        let ticket = r.bytes().ok()?;
        r.finish().ok()?;
        let session_key = rc_private.decrypt_pkcs1(&wrapped).ok()?;
        if session_key.len() != SESSION_KEY_LEN {
            return None;
        }
        Some((session_key, ticket))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mws_crypto::{HmacDrbg, RsaKeyPair};

    fn content() -> TicketContent {
        TicketContent {
            rc_id: "C-Services".into(),
            session_key: vec![7; SESSION_KEY_LEN],
            issued_at: 99,
            table: vec![(1, "ELECTRIC-1".into()), (2, "WATER-1".into())],
        }
    }

    #[test]
    fn ticket_roundtrip() {
        let mut rng = HmacDrbg::from_u64(1);
        let tg = TokenGenerator::new(b"mws-pkg-shared");
        let blob = tg.build_ticket(&mut rng, &content());
        let opened = TokenGenerator::open_ticket(b"mws-pkg-shared", &blob).unwrap();
        assert_eq!(opened, content());
    }

    #[test]
    fn ticket_opaque_to_wrong_secret() {
        let mut rng = HmacDrbg::from_u64(2);
        let tg = TokenGenerator::new(b"real-secret");
        let blob = tg.build_ticket(&mut rng, &content());
        assert!(TokenGenerator::open_ticket(b"guess", &blob).is_none());
        // The RC cannot see its attributes: the blob never contains the
        // attribute string in the clear.
        let haystack = String::from_utf8_lossy(&blob).to_string();
        assert!(!haystack.contains("ELECTRIC"));
    }

    #[test]
    fn ticket_tamper_rejected() {
        let mut rng = HmacDrbg::from_u64(3);
        let tg = TokenGenerator::new(b"s");
        let blob = tg.build_ticket(&mut rng, &content());
        for i in (0..blob.len()).step_by(7) {
            let mut bad = blob.clone();
            bad[i] ^= 1;
            assert!(
                TokenGenerator::open_ticket(b"s", &bad).is_none(),
                "byte {i}"
            );
        }
    }

    #[test]
    fn token_roundtrip() {
        let mut rng = HmacDrbg::from_u64(4);
        let kp = RsaKeyPair::generate(&mut rng, 512).unwrap();
        let sk = TokenGenerator::fresh_session_key(&mut rng);
        let token =
            TokenGenerator::build_token(&mut rng, &kp.public, &sk, b"opaque-ticket").unwrap();
        let (got_sk, got_ticket) = TokenGenerator::parse_token(&kp.private, &token).unwrap();
        assert_eq!(got_sk, sk);
        assert_eq!(got_ticket, b"opaque-ticket");
    }

    #[test]
    fn token_needs_matching_private_key() {
        let mut rng = HmacDrbg::from_u64(5);
        let kp1 = RsaKeyPair::generate(&mut rng, 512).unwrap();
        let kp2 = RsaKeyPair::generate(&mut rng, 512).unwrap();
        let sk = TokenGenerator::fresh_session_key(&mut rng);
        let token = TokenGenerator::build_token(&mut rng, &kp1.public, &sk, b"t").unwrap();
        assert!(TokenGenerator::parse_token(&kp2.private, &token).is_none());
    }

    #[test]
    fn fresh_session_keys_differ() {
        let mut rng = HmacDrbg::from_u64(6);
        assert_ne!(
            TokenGenerator::fresh_session_key(&mut rng),
            TokenGenerator::fresh_session_key(&mut rng)
        );
    }

    #[test]
    fn empty_table_ticket() {
        let mut rng = HmacDrbg::from_u64(7);
        let tg = TokenGenerator::new(b"s");
        let c = TicketContent {
            table: vec![],
            ..content()
        };
        let blob = tg.build_ticket(&mut rng, &c);
        assert_eq!(TokenGenerator::open_ticket(b"s", &blob).unwrap(), c);
    }
}
