//! Gatekeeper (Figure 3).
//!
//! "The main role of the Gatekeeper is to authenticate the user and
//! establish a secure channel of communication between RC and MWS. To help
//! this Gatekeeper utilizes the User Database." The §V.D exchange is
//! `ID_RC ‖ E(HashPassword, ID_RC ‖ T ‖ N)`: both sides derive the same
//! `HashPassword = H(password)` and use it as a shared key; the timestamp
//! `T` and nonce `N` stop replays.

use crate::clock::{ReplayGuard, ReplayPolicy};
use crate::sealed::{open_blob, seal_blob};
use mws_store::{Result as StoreResult, StorageKind, UserDb, UserRecord};
use mws_wire::{WireReader, WireWriter};
use rand::RngCore;

const AUTH_LABEL: &str = "mws-rc-auth";

/// Why the gatekeeper refused an RC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GkReject {
    /// Identity not registered.
    UnknownClient,
    /// Decryption failed (wrong password) or inner identity mismatch.
    BadCredentials,
    /// Timestamp/nonce freshness failure.
    Replay,
}

impl core::fmt::Display for GkReject {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GkReject::UnknownClient => write!(f, "unknown client"),
            GkReject::BadCredentials => write!(f, "authentication failed"),
            GkReject::Replay => write!(f, "stale timestamp or replayed nonce"),
        }
    }
}

/// Builds the RC-side authentication blob `E(HashPassword, ID ‖ T ‖ N)`.
pub fn compose_rc_auth<R: RngCore + ?Sized>(
    rng: &mut R,
    hash_password: &[u8],
    rc_id: &str,
    timestamp: u64,
) -> Vec<u8> {
    let mut nonce = [0u8; 16];
    rng.fill_bytes(&mut nonce);
    let mut w = WireWriter::new();
    w.string(rc_id).u64(timestamp).bytes(&nonce);
    seal_blob(rng, hash_password, AUTH_LABEL, &w.finish())
}

/// The gatekeeper: RC registry + authentication.
pub struct Gatekeeper {
    users: UserDb,
    replay: ReplayGuard,
}

impl Gatekeeper {
    /// Opens the gatekeeper over a user table.
    pub fn open(storage: StorageKind, policy: ReplayPolicy) -> StoreResult<Self> {
        Ok(Self {
            users: UserDb::open(storage)?,
            replay: ReplayGuard::new(policy),
        })
    }

    /// Registers an RC (identity, password, serialized RSA public key).
    pub fn register(&mut self, rc_id: &str, password: &str, public_key: &[u8]) -> StoreResult<()> {
        self.users.register(rc_id, password, public_key)
    }

    /// Removes an RC.
    pub fn remove(&mut self, rc_id: &str) -> StoreResult<()> {
        self.users.remove(rc_id)
    }

    /// Looks up a registered RC (the Token Generator needs `PubK_RC`).
    pub fn user(&self, rc_id: &str) -> StoreResult<UserRecord> {
        self.users.get(rc_id)
    }

    /// Verifies a retrieval request's auth blob.
    pub fn verify(&mut self, now: u64, rc_id: &str, auth: &[u8]) -> Result<UserRecord, GkReject> {
        let rec = self.users.get(rc_id).map_err(|_| GkReject::UnknownClient)?;
        let body =
            open_blob(&rec.hash_password, AUTH_LABEL, auth).ok_or(GkReject::BadCredentials)?;
        let mut r = WireReader::new(&body);
        let inner_id = r.string().map_err(|_| GkReject::BadCredentials)?;
        let timestamp = r.u64().map_err(|_| GkReject::BadCredentials)?;
        let nonce = r.bytes().map_err(|_| GkReject::BadCredentials)?;
        r.finish().map_err(|_| GkReject::BadCredentials)?;
        // "If the ID_RC in the decrypted message matches the ID_RC sent out
        // in the open text, RC is authenticated."
        if inner_id != rc_id {
            return Err(GkReject::BadCredentials);
        }
        let mut replay_key = rc_id.as_bytes().to_vec();
        replay_key.push(0);
        replay_key.extend_from_slice(&nonce);
        if !self.replay.check_and_record(now, timestamp, &replay_key) {
            return Err(GkReject::Replay);
        }
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mws_crypto::{Digest, HmacDrbg, Sha256};

    fn gk() -> Gatekeeper {
        let mut gk = Gatekeeper::open(
            StorageKind::Memory,
            ReplayPolicy::Window {
                window: 5,
                cache: 64,
            },
        )
        .unwrap();
        gk.register("C-Services", "pass123", b"pubkey").unwrap();
        gk
    }

    fn auth(rc_id: &str, password: &str, t: u64, seed: u64) -> Vec<u8> {
        let mut rng = HmacDrbg::from_u64(seed);
        compose_rc_auth(&mut rng, &Sha256::digest(password.as_bytes()), rc_id, t)
    }

    #[test]
    fn valid_login() {
        let mut gk = gk();
        let rec = gk
            .verify(10, "C-Services", &auth("C-Services", "pass123", 10, 1))
            .unwrap();
        assert_eq!(rec.public_key, b"pubkey");
    }

    #[test]
    fn unknown_client() {
        let mut gk = gk();
        assert_eq!(
            gk.verify(10, "ghost", &auth("ghost", "pass123", 10, 1)),
            Err(GkReject::UnknownClient)
        );
    }

    #[test]
    fn wrong_password() {
        let mut gk = gk();
        assert_eq!(
            gk.verify(10, "C-Services", &auth("C-Services", "wrong", 10, 1)),
            Err(GkReject::BadCredentials)
        );
    }

    #[test]
    fn identity_substitution_rejected() {
        // Blob built for another identity (even with the right password for
        // that identity) must not authenticate this one.
        let mut gk = gk();
        gk.register("Other", "pass123", b"pk2").unwrap();
        let blob = auth("Other", "pass123", 10, 1);
        assert_eq!(
            gk.verify(10, "C-Services", &blob),
            Err(GkReject::BadCredentials)
        );
    }

    #[test]
    fn replay_rejected() {
        let mut gk = gk();
        let blob = auth("C-Services", "pass123", 10, 1);
        gk.verify(10, "C-Services", &blob).unwrap();
        assert_eq!(
            gk.verify(10, "C-Services", &blob),
            Err(GkReject::Replay),
            "exact resend"
        );
        // Stale timestamp.
        let old = auth("C-Services", "pass123", 1, 2);
        assert_eq!(gk.verify(100, "C-Services", &old), Err(GkReject::Replay));
    }

    #[test]
    fn removed_client_cannot_login() {
        let mut gk = gk();
        gk.remove("C-Services").unwrap();
        assert_eq!(
            gk.verify(10, "C-Services", &auth("C-Services", "pass123", 10, 1)),
            Err(GkReject::UnknownClient)
        );
    }

    #[test]
    fn garbage_blob_rejected() {
        let mut gk = gk();
        assert_eq!(
            gk.verify(10, "C-Services", &[0u8; 64]),
            Err(GkReject::BadCredentials)
        );
        assert_eq!(
            gk.verify(10, "C-Services", &[]),
            Err(GkReject::BadCredentials)
        );
    }
}
