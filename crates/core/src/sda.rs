//! Smart Device Authenticator (Figure 3).
//!
//! "This component authenticates the SD by examining the Message
//! Authentication Code. … Once a SD is authenticated, the encrypted message
//! is stored in the message database. If a message is not authenticated
//! properly, the message is discarded and optionally an alert is sent to the
//! administrator."
//!
//! Two authentication modes:
//!
//! * **Shared-key MAC** — the paper's deployed design (§V.B): every device
//!   shares `SecK_SD-MWS` with the warehouse.
//! * **Identity-based signatures** — the §VIII future-work alternative
//!   ("the SD to use IBE … to sign a message"): devices sign with a
//!   Cha–Cheon key `d_SD = s·Q("sd:"‖ID)` extracted once at provisioning,
//!   and the SDA verifies with the *public* system parameters alone — no
//!   per-device key table to protect.

use crate::clock::{ReplayGuard, ReplayPolicy};
use crate::registry::DeviceRegistry;
use mws_crypto::{Hmac, Sha256};
use mws_ibe::ibs::IbsSignature;
use mws_ibe::{IbeSystem, MasterPublic};

/// Domain prefix distinguishing device signing identities from attribute
/// identities in the PKG's identity space.
pub const SD_IDENTITY_PREFIX: &str = "sd:";

/// How deposits are authenticated.
#[allow(clippy::large_enum_variant)] // one verifier per service; size is irrelevant
pub enum DeviceAuthVerifier {
    /// Per-device shared MAC keys held in the [`DeviceRegistry`].
    Mac,
    /// Cha–Cheon identity-based signatures under the system master key.
    Ibs {
        /// Shared IBE system parameters.
        ibe: IbeSystem,
        /// Master public key `sP`.
        mpk: MasterPublic,
    },
}

/// Deposit authentication + replay checking.
pub struct SdAuthenticator {
    registry: DeviceRegistry,
    replay: ReplayGuard,
    verifier: DeviceAuthVerifier,
}

/// Why a deposit was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SdaReject {
    /// Device unknown or disabled.
    UnknownDevice,
    /// MAC mismatch.
    BadMac,
    /// Timestamp/nonce freshness failure.
    Replay,
}

impl core::fmt::Display for SdaReject {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SdaReject::UnknownDevice => write!(f, "unknown or disabled device"),
            SdaReject::BadMac => write!(f, "MAC verification failed"),
            SdaReject::Replay => write!(f, "stale timestamp or replayed nonce"),
        }
    }
}

/// Computes the deposit MAC over §V.D's field list
/// (`rP ‖ C ‖ A ‖ Nonce ‖ ID_SD ‖ T`).
///
/// Each variable-length field is length-prefixed before hashing: the paper's
/// bare concatenation is ambiguous (`A="AB", Nonce="C"` collides with
/// `A="A", Nonce="BC"`), which would let a forwarder shift bytes between
/// fields without breaking the MAC.
///
/// Shared between the device (sender) and the SDA (verifier) so the two
/// sides can never drift.
#[allow(clippy::too_many_arguments)]
pub fn deposit_mac(
    mac_key: &[u8],
    u: &[u8],
    sealed: &[u8],
    attribute: &str,
    nonce: &[u8],
    sd_id: &str,
    timestamp: u64,
) -> Vec<u8> {
    let buf = deposit_auth_bytes(u, sealed, attribute, nonce, sd_id, timestamp);
    Hmac::<Sha256>::mac(mac_key, &buf)
}

/// The canonical byte string both authentication modes protect
/// (length-prefixed §V.D field list).
pub fn deposit_auth_bytes(
    u: &[u8],
    sealed: &[u8],
    attribute: &str,
    nonce: &[u8],
    sd_id: &str,
    timestamp: u64,
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(
        u.len() + sealed.len() + attribute.len() + nonce.len() + sd_id.len() + 8 + 5 * 4,
    );
    for field in [u, sealed, attribute.as_bytes(), nonce, sd_id.as_bytes()] {
        buf.extend_from_slice(&(field.len() as u32).to_le_bytes());
        buf.extend_from_slice(field);
    }
    buf.extend_from_slice(&timestamp.to_be_bytes());
    buf
}

/// Serializes an IBS deposit signature into the PDU's auth field
/// (`compressed U ‖ compressed V`).
pub fn encode_ibs_signature(ibe: &IbeSystem, sig: &IbsSignature) -> Vec<u8> {
    let f = ibe.pairing().field();
    let mut out = f.point_to_bytes(&sig.u);
    out.extend_from_slice(&f.point_to_bytes(&sig.v));
    out
}

/// Parses an [`encode_ibs_signature`] encoding.
pub fn decode_ibs_signature(ibe: &IbeSystem, bytes: &[u8]) -> Option<IbsSignature> {
    let f = ibe.pairing().field();
    let point_len = 1 + 8 * mws_pairing::FP_LIMBS;
    if bytes.len() != 2 * point_len {
        return None;
    }
    let u = f.point_from_bytes(&bytes[..point_len]).ok()?;
    let v = f.point_from_bytes(&bytes[point_len..]).ok()?;
    Some(IbsSignature { u, v })
}

impl SdAuthenticator {
    /// Creates a shared-key-MAC authenticator over a device registry.
    pub fn new(registry: DeviceRegistry, policy: ReplayPolicy) -> Self {
        Self::with_verifier(registry, policy, DeviceAuthVerifier::Mac)
    }

    /// Creates an authenticator with an explicit verification mode.
    pub fn with_verifier(
        registry: DeviceRegistry,
        policy: ReplayPolicy,
        verifier: DeviceAuthVerifier,
    ) -> Self {
        if let DeviceAuthVerifier::Ibs { ibe, mpk } = &verifier {
            // Pay the Miller-loop precomputation once at construction so the
            // first deposit verification is as fast as the steady state.
            ibe.pairing().warm_caches();
            mpk.prepared(ibe.pairing());
        }
        Self {
            registry,
            replay: ReplayGuard::new(policy),
            verifier,
        }
    }

    /// Mutable access to the registry (registration, disable).
    pub fn registry_mut(&mut self) -> &mut DeviceRegistry {
        &mut self.registry
    }

    /// Read access to the registry.
    pub fn registry(&self) -> &DeviceRegistry {
        &self.registry
    }

    /// Verifies a deposit's authenticator (MAC or IBS, per the configured
    /// mode) and freshness, recording the nonce on success.
    #[allow(clippy::too_many_arguments)]
    pub fn verify(
        &mut self,
        now: u64,
        sd_id: &str,
        timestamp: u64,
        u: &[u8],
        sealed: &[u8],
        attribute: &str,
        nonce: &[u8],
        mac: &[u8],
    ) -> Result<(), SdaReject> {
        self.verify_fresh(now, sd_id, timestamp, u, sealed, attribute, nonce, mac)?;
        self.record_deposit(sd_id, nonce);
        Ok(())
    }

    /// Verifies authenticator + freshness WITHOUT recording the nonce.
    ///
    /// The MWS records via [`Self::record_deposit`] only after the message is
    /// durably stored; recording earlier would make an honest retransmission
    /// after a storage failure look like a replay, losing the deposit.
    #[allow(clippy::too_many_arguments)]
    pub fn verify_fresh(
        &self,
        now: u64,
        sd_id: &str,
        timestamp: u64,
        u: &[u8],
        sealed: &[u8],
        attribute: &str,
        nonce: &[u8],
        mac: &[u8],
    ) -> Result<(), SdaReject> {
        match &self.verifier {
            DeviceAuthVerifier::Mac => {
                let key = self
                    .registry
                    .mac_key(sd_id)
                    .ok_or(SdaReject::UnknownDevice)?;
                let expect = deposit_mac(key, u, sealed, attribute, nonce, sd_id, timestamp);
                if !mws_crypto::ct_eq(&expect, mac) {
                    return Err(SdaReject::BadMac);
                }
            }
            DeviceAuthVerifier::Ibs { ibe, mpk } => {
                // Devices must still be registered (admission + disabling),
                // but no secret key is consulted.
                if self.registry.mac_key(sd_id).is_none() {
                    return Err(SdaReject::UnknownDevice);
                }
                let sig = decode_ibs_signature(ibe, mac).ok_or(SdaReject::BadMac)?;
                let body = deposit_auth_bytes(u, sealed, attribute, nonce, sd_id, timestamp);
                let signing_id = format!("{SD_IDENTITY_PREFIX}{sd_id}");
                ibe.ibs_verify(mpk, signing_id.as_bytes(), &body, &sig)
                    .map_err(|_| SdaReject::BadMac)?;
            }
        }
        if !self.replay.check(now, timestamp, &replay_key(sd_id, nonce)) {
            return Err(SdaReject::Replay);
        }
        Ok(())
    }

    /// Records a successfully stored deposit's nonce so later retransmissions
    /// are flagged as replays.
    pub fn record_deposit(&mut self, sd_id: &str, nonce: &[u8]) {
        self.replay.record(&replay_key(sd_id, nonce));
    }
}

/// Replay key: the device's (id, nonce) pair, unambiguously delimited.
fn replay_key(sd_id: &str, nonce: &[u8]) -> Vec<u8> {
    let mut key = sd_id.as_bytes().to_vec();
    key.push(0);
    key.extend_from_slice(nonce);
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sda() -> SdAuthenticator {
        let mut reg = DeviceRegistry::new();
        reg.register("meter-1", b"secret-key-1");
        SdAuthenticator::new(
            reg,
            ReplayPolicy::Window {
                window: 5,
                cache: 64,
            },
        )
    }

    fn valid_mac(ts: u64, nonce: &[u8]) -> Vec<u8> {
        deposit_mac(b"secret-key-1", b"U", b"C", "ATTR", nonce, "meter-1", ts)
    }

    #[test]
    fn accepts_valid_deposit() {
        let mut sda = sda();
        let mac = valid_mac(10, b"n1");
        sda.verify(10, "meter-1", 10, b"U", b"C", "ATTR", b"n1", &mac)
            .unwrap();
    }

    #[test]
    fn rejects_unknown_and_disabled_devices() {
        let mut sda = sda();
        let mac = valid_mac(10, b"n");
        assert_eq!(
            sda.verify(10, "ghost", 10, b"U", b"C", "ATTR", b"n", &mac),
            Err(SdaReject::UnknownDevice)
        );
        sda.registry_mut().disable("meter-1");
        assert_eq!(
            sda.verify(10, "meter-1", 10, b"U", b"C", "ATTR", b"n", &mac),
            Err(SdaReject::UnknownDevice)
        );
    }

    #[test]
    fn rejects_any_field_tamper() {
        let mut sda = sda();
        let mac = valid_mac(10, b"n1");
        // Each mutated field must break the MAC.
        assert_eq!(
            sda.verify(10, "meter-1", 11, b"U", b"C", "ATTR", b"n1", &mac),
            Err(SdaReject::BadMac),
            "timestamp"
        );
        assert_eq!(
            sda.verify(10, "meter-1", 10, b"X", b"C", "ATTR", b"n1", &mac),
            Err(SdaReject::BadMac),
            "u"
        );
        assert_eq!(
            sda.verify(10, "meter-1", 10, b"U", b"X", "ATTR", b"n1", &mac),
            Err(SdaReject::BadMac),
            "ciphertext"
        );
        assert_eq!(
            sda.verify(10, "meter-1", 10, b"U", b"C", "OTHER", b"n1", &mac),
            Err(SdaReject::BadMac),
            "attribute"
        );
        assert_eq!(
            sda.verify(10, "meter-1", 10, b"U", b"C", "ATTR", b"n2", &mac),
            Err(SdaReject::BadMac),
            "nonce"
        );
    }

    #[test]
    fn field_boundary_confusion_is_impossible() {
        // (A="AB", nonce="C") vs (A="A", nonce="BC") must produce different
        // MACs — guards against naive concatenation ambiguity.
        let m1 = deposit_mac(b"k", b"U", b"C", "AB", b"C", "id", 1);
        let m2 = deposit_mac(b"k", b"U", b"C", "A", b"BC", "id", 1);
        assert_ne!(m1, m2);
    }

    #[test]
    fn rejects_replayed_nonce_and_stale_timestamp() {
        let mut sda = sda();
        let mac = valid_mac(10, b"n1");
        sda.verify(10, "meter-1", 10, b"U", b"C", "ATTR", b"n1", &mac)
            .unwrap();
        assert_eq!(
            sda.verify(10, "meter-1", 10, b"U", b"C", "ATTR", b"n1", &mac),
            Err(SdaReject::Replay),
            "identical resend"
        );
        let stale = valid_mac(1, b"n2");
        assert_eq!(
            sda.verify(100, "meter-1", 1, b"U", b"C", "ATTR", b"n2", &stale),
            Err(SdaReject::Replay),
            "stale timestamp"
        );
    }

    #[test]
    fn ibs_mode_accepts_signed_deposits() {
        use mws_crypto::HmacDrbg;
        use mws_pairing::SecurityLevel;
        let ibe = IbeSystem::named(SecurityLevel::Toy);
        let mut rng = HmacDrbg::from_u64(1);
        let (msk, mpk) = ibe.setup(&mut rng);
        let mut reg = DeviceRegistry::new();
        reg.register("meter-1", b""); // no shared secret needed in IBS mode
        let mut sda = SdAuthenticator::with_verifier(
            reg,
            ReplayPolicy::Off,
            DeviceAuthVerifier::Ibs {
                ibe: ibe.clone(),
                mpk,
            },
        );
        let d_sd = ibe.extract(&msk, b"sd:meter-1");
        let body = deposit_auth_bytes(b"U", b"C", "ATTR", b"n", "meter-1", 5);
        let sig = ibe.ibs_sign(&mut rng, b"sd:meter-1", &d_sd, &body);
        let encoded = encode_ibs_signature(&ibe, &sig);
        sda.verify(5, "meter-1", 5, b"U", b"C", "ATTR", b"n", &encoded)
            .unwrap();
        // A signature from another device's key is rejected.
        let d_other = ibe.extract(&msk, b"sd:meter-2");
        let forged = ibe.ibs_sign(&mut rng, b"sd:meter-1", &d_other, &body);
        assert_eq!(
            sda.verify(
                5,
                "meter-1",
                5,
                b"U",
                b"C",
                "ATTR",
                b"n",
                &encode_ibs_signature(&ibe, &forged)
            ),
            Err(SdaReject::BadMac)
        );
        // Garbage bytes are rejected, as is any field change.
        assert_eq!(
            sda.verify(5, "meter-1", 5, b"U", b"C", "ATTR", b"n", b"junk"),
            Err(SdaReject::BadMac)
        );
        assert_eq!(
            sda.verify(5, "meter-1", 5, b"U", b"C", "OTHER", b"n", &encoded),
            Err(SdaReject::BadMac)
        );
    }

    #[test]
    fn ibs_signature_codec_roundtrip() {
        use mws_crypto::HmacDrbg;
        use mws_pairing::SecurityLevel;
        let ibe = IbeSystem::named(SecurityLevel::Toy);
        let mut rng = HmacDrbg::from_u64(2);
        let (msk, _) = ibe.setup(&mut rng);
        let d = ibe.extract(&msk, b"sd:x");
        let sig = ibe.ibs_sign(&mut rng, b"sd:x", &d, b"body");
        let bytes = encode_ibs_signature(&ibe, &sig);
        assert_eq!(decode_ibs_signature(&ibe, &bytes).unwrap(), sig);
        assert!(decode_ibs_signature(&ibe, &bytes[1..]).is_none());
    }

    #[test]
    fn off_policy_matches_prototype() {
        let mut reg = DeviceRegistry::new();
        reg.register("m", b"k");
        let mut sda = SdAuthenticator::new(reg, ReplayPolicy::Off);
        let mac = deposit_mac(b"k", b"U", b"C", "A", b"n", "m", 0);
        sda.verify(0, "m", 0, b"U", b"C", "A", b"n", &mac).unwrap();
        // Replays sail through — documenting the prototype's gap.
        sda.verify(0, "m", 0, b"U", b"C", "A", b"n", &mac).unwrap();
    }
}
