//! Preregistered metric handles for the protocol hot paths.
//!
//! Looked up once per process and cached, so the per-request cost is a
//! relaxed atomic op. Labels are low-cardinality outcomes only — never
//! identities, plaintext or key material (DESIGN.md §7).

use mws_obs::{metric_name, Counter, Histogram};
use std::sync::OnceLock;

pub(crate) struct CoreStats {
    /// End-to-end deposit handler latency (µs).
    pub deposit_us: Histogram,
    pub deposit_accepted: Counter,
    /// Dedup hits: honest retransmissions answered from the origin index.
    pub deposit_duplicate: Counter,
    pub deposit_rejected: Counter,
    pub deposit_replay: Counter,
    pub deposit_storage_error: Counter,
    /// End-to-end batched-deposit handler latency (µs, whole batch).
    pub deposit_batch_us: Histogram,
    /// Items per DepositBatch PDU (coalescing effectiveness).
    pub deposit_batch_items: Histogram,
    /// End-to-end retrieve handler latency (µs).
    pub retrieve_us: Histogram,
    pub retrieve_served: Counter,
    pub retrieve_rejected: Counter,
    /// Tickets minted by the Token Generator on successful retrieves.
    pub tickets_issued: Counter,
    pub pkg_sessions_opened: Counter,
    pub pkg_auth_rejected: Counter,
    pub pkg_keys_served: Counter,
    pub pkg_keys_rejected: Counter,
    /// Rows served to peers over the cluster replica plane.
    pub replica_rows_served: Counter,
    /// Rows made durable by replica pushes (repair/catch-up writes).
    pub replica_rows_stored: Counter,
    /// Replica-plane requests discarded for a bad MAC.
    pub replica_mac_rejected: Counter,
    /// Rows dropped by replica evict orders (rebalance handover).
    pub replica_rows_evicted: Counter,
}

pub(crate) fn stats() -> &'static CoreStats {
    static STATS: OnceLock<CoreStats> = OnceLock::new();
    STATS.get_or_init(|| {
        let r = mws_obs::registry();
        let deposit = |outcome| {
            r.counter(&metric_name(
                "mws_core_deposits_total",
                &[("outcome", outcome)],
            ))
        };
        let retrieve = |outcome| {
            r.counter(&metric_name(
                "mws_core_retrieves_total",
                &[("outcome", outcome)],
            ))
        };
        let key = |outcome| r.counter(&metric_name("mws_pkg_keys_total", &[("outcome", outcome)]));
        CoreStats {
            deposit_us: r.histogram("mws_core_deposit_us"),
            deposit_accepted: deposit("accepted"),
            deposit_duplicate: deposit("duplicate"),
            deposit_rejected: deposit("rejected"),
            deposit_replay: deposit("replay"),
            deposit_storage_error: deposit("storage_error"),
            deposit_batch_us: r.histogram("mws_core_deposit_batch_us"),
            deposit_batch_items: r.histogram("mws_core_deposit_batch_items"),
            retrieve_us: r.histogram("mws_core_retrieve_us"),
            retrieve_served: retrieve("served"),
            retrieve_rejected: retrieve("rejected"),
            tickets_issued: r.counter("mws_core_tickets_issued_total"),
            pkg_sessions_opened: r.counter("mws_pkg_sessions_opened_total"),
            pkg_auth_rejected: r.counter("mws_pkg_auth_rejected_total"),
            pkg_keys_served: key("served"),
            pkg_keys_rejected: key("rejected"),
            replica_rows_served: r.counter("mws_core_replica_rows_served_total"),
            replica_rows_stored: r.counter("mws_core_replica_rows_stored_total"),
            replica_mac_rejected: r.counter("mws_core_replica_mac_rejected_total"),
            replica_rows_evicted: r.counter("mws_core_replica_rows_evicted_total"),
        }
    })
}
