//! Message Management System (Figure 3) — "the core of the MWS-RC".
//!
//! Owns the Message Database and the Policy Database: stores authenticated
//! deposits, maintains the identity–attribute mapping (Table 1), and serves
//! retrievals by joining the two ("it fetches all those records from the
//! Message Database in which the attribute field matches the corresponding
//! attributes fetched from Policy Database", §V.D).

use crate::policy::AttrPattern;
use mws_store::{
    AttributeId, MessageId, PendingDeposit, PolicyDb, Result as StoreResult, ShardedMessageDb,
    StorageKind, StoredMessage,
};
use std::sync::Arc;

/// The MMS: message store + policy store + pattern grants.
///
/// The message warehouse is the sharded store behind an `Arc`, so the
/// deposit hot path can append + fsync shard WALs *outside* the service
/// lock (see `MwsService`) while this struct keeps exclusive ownership of
/// the policy table and pattern grants.
pub struct MessageManagementSystem {
    messages: Arc<ShardedMessageDb>,
    policy: PolicyDb,
    /// §VIII "enhanced policies": pattern grants expanded lazily at
    /// retrieval time against the attributes actually warehoused.
    patterns: Vec<(String, AttrPattern)>,
}

impl MessageManagementSystem {
    /// Opens the MMS over the given storage backends (single-shard
    /// warehouse, byte-compatible with pre-sharding deployments).
    pub fn open(messages: StorageKind, policy: StorageKind) -> StoreResult<Self> {
        Self::open_sharded(vec![messages], policy)
    }

    /// Opens the MMS with one warehouse shard per entry of `messages`.
    pub fn open_sharded(messages: Vec<StorageKind>, policy: StorageKind) -> StoreResult<Self> {
        Ok(Self {
            messages: Arc::new(ShardedMessageDb::open_with(messages)?),
            policy: PolicyDb::open(policy)?,
            patterns: Vec::new(),
        })
    }

    /// A shared handle to the message warehouse, for depositing outside
    /// the owner's lock.
    pub fn store_handle(&self) -> Arc<ShardedMessageDb> {
        Arc::clone(&self.messages)
    }

    /// Stores an authenticated deposit (no durability point — relay
    /// ingestion; the periodic sync provides the flush cadence).
    #[allow(clippy::too_many_arguments)]
    pub fn store_message(
        &mut self,
        attribute: &str,
        nonce: &[u8],
        u: &[u8],
        algo: u8,
        sealed: &[u8],
        sd_id: &str,
        timestamp: u64,
    ) -> StoreResult<MessageId> {
        self.messages.insert(&PendingDeposit {
            attribute: attribute.to_string(),
            nonce: nonce.to_vec(),
            u: u.to_vec(),
            algo,
            sealed: sealed.to_vec(),
            sd_id: sd_id.to_string(),
            timestamp,
        })
    }

    /// Stores an authenticated deposit idempotently per `(sd_id, nonce)`
    /// origin: a retransmission of an already-warehoused deposit (e.g. the
    /// device never saw the ack) returns the original id with `false`
    /// instead of storing a duplicate. Durable before returning.
    #[allow(clippy::too_many_arguments)]
    pub fn store_message_idempotent(
        &mut self,
        attribute: &str,
        nonce: &[u8],
        u: &[u8],
        algo: u8,
        sealed: &[u8],
        sd_id: &str,
        timestamp: u64,
    ) -> StoreResult<(MessageId, bool)> {
        self.messages.deposit(&PendingDeposit {
            attribute: attribute.to_string(),
            nonce: nonce.to_vec(),
            u: u.to_vec(),
            algo,
            sealed: sealed.to_vec(),
            sd_id: sd_id.to_string(),
            timestamp,
        })
    }

    /// Grants `identity` access to a literal attribute (Table 1 row).
    /// Durable before returning (policy changes are rare, deposits aren't,
    /// so the fsync lives here rather than on the deposit path).
    pub fn grant(&mut self, identity: &str, attribute: &str) -> StoreResult<AttributeId> {
        let aid = self.policy.grant(identity, attribute)?;
        self.policy.sync()?;
        Ok(aid)
    }

    /// Grants by pattern (future-work policy language). Literal patterns
    /// degrade to a plain grant.
    pub fn grant_pattern(&mut self, identity: &str, pattern: AttrPattern) -> StoreResult<()> {
        if pattern.is_literal() {
            self.policy.grant(identity, pattern.source())?;
            self.policy.sync()?;
        } else {
            self.patterns.push((identity.to_string(), pattern));
        }
        Ok(())
    }

    /// Revokes one attribute (requirement iii). Durable before returning.
    pub fn revoke(&mut self, identity: &str, attribute: &str) -> StoreResult<()> {
        // A pattern that would re-derive this grant must go too, otherwise
        // the next retrieval silently re-grants it.
        self.patterns
            .retain(|(id, p)| !(id == identity && p.matches(attribute)));
        self.policy.revoke(identity, attribute)?;
        self.policy.sync()
    }

    /// Revokes everything for an identity. Durable before returning.
    pub fn revoke_identity(&mut self, identity: &str) -> StoreResult<usize> {
        self.patterns.retain(|(id, _)| id != identity);
        let n = self.policy.revoke_identity(identity)?;
        self.policy.sync()?;
        Ok(n)
    }

    /// Expands this identity's pattern grants against the warehoused
    /// attributes, materializing missing Table 1 rows.
    fn expand_patterns(&mut self, identity: &str) -> StoreResult<()> {
        let attrs = self.messages.attributes();
        let mine: Vec<AttrPattern> = self
            .patterns
            .iter()
            .filter(|(id, _)| id == identity)
            .map(|(_, p)| p.clone())
            .collect();
        let mut granted = false;
        for pattern in mine {
            for attr in &attrs {
                if pattern.matches(attr) && !self.policy.has_access(identity, attr) {
                    self.policy.grant(identity, attr)?;
                    granted = true;
                }
            }
        }
        if granted {
            self.policy.sync()?;
        }
        Ok(())
    }

    /// The `(AID, A)` pairs an identity may currently read.
    pub fn attribute_table_for(
        &mut self,
        identity: &str,
    ) -> StoreResult<Vec<(AttributeId, String)>> {
        self.expand_patterns(identity)?;
        Ok(self.policy.attributes_for(identity))
    }

    /// Serves a retrieval: every message (with its AID) the identity may
    /// read, filtered to `timestamp ≥ since`, oldest first. A nonzero
    /// `limit` caps the page size (pagination for large warehouses).
    pub fn retrieve_for(
        &mut self,
        identity: &str,
        since: u64,
        limit: u32,
    ) -> StoreResult<Vec<(StoredMessage, AttributeId)>> {
        let table = self.attribute_table_for(identity)?;
        let mut out: Vec<(StoredMessage, AttributeId)> = Vec::new();
        for (aid, attr) in &table {
            for msg in self.messages.by_attribute_since(attr, since)? {
                out.push((msg, *aid));
            }
        }
        out.sort_by_key(|(m, _)| m.id);
        out.dedup_by_key(|(m, _)| m.id);
        if limit != 0 {
            out.truncate(limit as usize);
        }
        Ok(out)
    }

    /// Retention sweep on the message store.
    pub fn purge_before(&mut self, before: u64) -> StoreResult<usize> {
        self.messages.purge_before(before)
    }

    /// Read access to the policy table (Table 1 regeneration).
    pub fn policy(&self) -> &PolicyDb {
        &self.policy
    }

    /// Read access to the message store.
    pub fn messages(&self) -> &ShardedMessageDb {
        &self.messages
    }

    /// Durability point for both stores (every warehouse shard, then the
    /// policy table).
    pub fn sync(&mut self) -> StoreResult<()> {
        self.messages.sync_all()?;
        self.policy.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mms() -> MessageManagementSystem {
        MessageManagementSystem::open(StorageKind::Memory, StorageKind::Memory).unwrap()
    }

    fn store(m: &mut MessageManagementSystem, attr: &str, ts: u64) -> MessageId {
        m.store_message(attr, b"n", b"u", 3, b"c", "sd", ts)
            .unwrap()
    }

    #[test]
    fn retrieval_joins_policy_and_messages() {
        let mut m = mms();
        store(&mut m, "ELECTRIC-1", 1);
        store(&mut m, "WATER-1", 2);
        store(&mut m, "ELECTRIC-1", 3);
        let aid = m.grant("rc", "ELECTRIC-1").unwrap();
        let got = m.retrieve_for("rc", 0, 0).unwrap();
        assert_eq!(got.len(), 2);
        assert!(got
            .iter()
            .all(|(msg, a)| msg.attribute == "ELECTRIC-1" && *a == aid));
        assert!(got[0].0.id < got[1].0.id);
    }

    #[test]
    fn since_filter_applies() {
        let mut m = mms();
        for ts in 1..=4 {
            store(&mut m, "A", ts);
        }
        m.grant("rc", "A").unwrap();
        assert_eq!(m.retrieve_for("rc", 3, 0).unwrap().len(), 2);
    }

    #[test]
    fn unknown_identity_gets_nothing() {
        let mut m = mms();
        store(&mut m, "A", 1);
        assert!(m.retrieve_for("ghost", 0, 0).unwrap().is_empty());
    }

    #[test]
    fn multi_attribute_identity_dedups() {
        let mut m = mms();
        store(&mut m, "A", 1);
        store(&mut m, "B", 2);
        m.grant("rc", "A").unwrap();
        m.grant("rc", "B").unwrap();
        let got = m.retrieve_for("rc", 0, 0).unwrap();
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn revocation_stops_future_reads() {
        let mut m = mms();
        store(&mut m, "A", 1);
        m.grant("rc", "A").unwrap();
        assert_eq!(m.retrieve_for("rc", 0, 0).unwrap().len(), 1);
        m.revoke("rc", "A").unwrap();
        assert!(m.retrieve_for("rc", 0, 0).unwrap().is_empty());
    }

    #[test]
    fn pattern_grants_cover_future_devices() {
        // Requirement v (dynamic recipients): a pattern grant picks up
        // attributes that appear *after* the grant.
        let mut m = mms();
        m.grant_pattern("rc", AttrPattern::parse("ELECTRIC-**").unwrap())
            .unwrap();
        assert!(m.retrieve_for("rc", 0, 0).unwrap().is_empty());
        store(&mut m, "ELECTRIC-NEW-METER", 5);
        store(&mut m, "WATER-NEW-METER", 6);
        let got = m.retrieve_for("rc", 0, 0).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0.attribute, "ELECTRIC-NEW-METER");
        // The expansion materialized a Table 1 row with a real AID.
        assert!(m.policy().has_access("rc", "ELECTRIC-NEW-METER"));
    }

    #[test]
    fn revoke_kills_matching_patterns_too() {
        let mut m = mms();
        m.grant_pattern("rc", AttrPattern::parse("GAS-**").unwrap())
            .unwrap();
        store(&mut m, "GAS-1", 1);
        assert_eq!(m.retrieve_for("rc", 0, 0).unwrap().len(), 1);
        m.revoke("rc", "GAS-1").unwrap();
        // Without pattern cleanup the next retrieve would re-grant.
        assert!(m.retrieve_for("rc", 0, 0).unwrap().is_empty());
    }

    #[test]
    fn literal_pattern_grant_is_plain_grant() {
        let mut m = mms();
        m.grant_pattern("rc", AttrPattern::parse("PLAIN-ATTR").unwrap())
            .unwrap();
        assert!(m.policy().has_access("rc", "PLAIN-ATTR"));
    }

    #[test]
    fn revoke_identity_sweeps_patterns() {
        let mut m = mms();
        store(&mut m, "X-1", 1);
        m.grant("rc", "X-1").unwrap();
        m.grant_pattern("rc", AttrPattern::parse("Y-**").unwrap())
            .unwrap();
        assert_eq!(m.revoke_identity("rc").unwrap(), 1);
        store(&mut m, "Y-1", 2);
        assert!(m.retrieve_for("rc", 0, 0).unwrap().is_empty());
    }
}
