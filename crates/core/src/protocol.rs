//! End-to-end wiring: the MWS service and a full [`Deployment`].
//!
//! [`MwsService`] is the network-facing warehouse (SDA + MMS + Gatekeeper +
//! Token Generator behind one endpoint, as in Figure 3). [`Deployment`]
//! provisions a complete system — PKG, MWS, devices and clients on one
//! simulated network — and is the entry point used by the examples,
//! integration tests and benchmarks.

use crate::audit::{AuditEvent, AuditLog, AuditRecord};
use crate::clock::{LogicalClock, ReplayPolicy};
use crate::device::{deposit_aad, DeviceCredential, SmartDevice};
use crate::errors::CoreError;
use crate::gatekeeper::Gatekeeper;
use crate::mms::MessageManagementSystem;
use crate::obs::stats;
use crate::pkg_service::{PkgMaster, PkgService};
use crate::policy::AttrPattern;
use crate::registry::DeviceRegistry;
use crate::sda::{DeviceAuthVerifier, SdAuthenticator, SD_IDENTITY_PREFIX};
use crate::token::{TicketContent, TokenGenerator};
use mws_crypto::{ct_eq, Hmac, HmacDrbg, RsaKeyPair, RsaPublicKey, Sha256};
use mws_ibe::{CipherAlgo, IbeSystem};
use mws_net::{Client, FaultConfig, Network};
use mws_pairing::SecurityLevel;
use mws_store::{FaultPlan, PendingDeposit, PolicyRow, ShardedMessageDb, StorageKind};
use mws_wire::pdu::{replica_evict_bytes, replica_push_bytes, replica_rows_bytes};
use mws_wire::{DepositItem, DepositOutcome, Pdu, RelayEntry, WireMessage};
use parking_lot::Mutex;
use rand::RngCore;
use std::collections::HashMap;
use std::sync::Arc;

pub use crate::client::{ReceivingClient, RetrievedMessage};

/// Derives the cluster replica-plane MAC key from the MWS–PKG secret.
/// Every warehouse replica provisions the same secret from the shared
/// deployment seed, so routers and warehouses agree on this key without a
/// distribution step; the label separates it from the secret's ticket and
/// token uses.
pub fn replica_key(mws_pkg_secret: &[u8]) -> Vec<u8> {
    Hmac::<Sha256>::mac(mws_pkg_secret, b"mws-cluster-replica")
}

/// Default page size a [`Pdu::ReplicaPull`] with `max = 0` is served at.
const REPLICA_PULL_DEFAULT_MAX: usize = 512;

/// The warehouse service state.
struct MwsInner {
    sda: SdAuthenticator,
    mms: MessageManagementSystem,
    gatekeeper: Gatekeeper,
    tokens: TokenGenerator,
    clock: LogicalClock,
    rng: HmacDrbg,
    audit: AuditLog,
}

/// The network-facing Message Warehousing Service.
///
/// The deposit hot path is split across two locks: authentication, replay
/// accounting and auditing run under the service lock (`inner`), while the
/// WAL append + fsync runs against the sharded `store` handle under that
/// shard's own lock — so deposits routed to different shards overlap their
/// fsyncs instead of serializing behind one global mutex (DESIGN.md §9).
#[derive(Clone)]
pub struct MwsService {
    inner: Arc<Mutex<MwsInner>>,
    store: Arc<ShardedMessageDb>,
    clock: LogicalClock,
    /// MAC key for the cluster replica plane ([`Pdu::ReplicaPull`] /
    /// [`Pdu::ReplicaPush`]), derived from the MWS–PKG secret.
    replica_key: Vec<u8>,
}

impl MwsService {
    /// Creates the service over a single-shard warehouse.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        registry: DeviceRegistry,
        message_storage: StorageKind,
        policy_storage: StorageKind,
        user_storage: StorageKind,
        mws_pkg_secret: &[u8],
        clock: LogicalClock,
        replay: ReplayPolicy,
        rng_seed: u64,
        device_auth: DeviceAuthVerifier,
    ) -> Result<Self, CoreError> {
        Self::new_sharded(
            registry,
            vec![message_storage],
            policy_storage,
            user_storage,
            mws_pkg_secret,
            clock,
            replay,
            rng_seed,
            device_auth,
        )
    }

    /// Creates the service with one warehouse shard per entry of
    /// `message_storages` (see [`mws_store::shard_kinds`] for deriving
    /// per-shard kinds from a base path).
    #[allow(clippy::too_many_arguments)]
    pub fn new_sharded(
        registry: DeviceRegistry,
        message_storages: Vec<StorageKind>,
        policy_storage: StorageKind,
        user_storage: StorageKind,
        mws_pkg_secret: &[u8],
        clock: LogicalClock,
        replay: ReplayPolicy,
        rng_seed: u64,
        device_auth: DeviceAuthVerifier,
    ) -> Result<Self, CoreError> {
        let mms = MessageManagementSystem::open_sharded(message_storages, policy_storage)?;
        let store = mms.store_handle();
        let replica_key = replica_key(mws_pkg_secret);
        Ok(Self {
            inner: Arc::new(Mutex::new(MwsInner {
                sda: SdAuthenticator::with_verifier(registry, replay.clone(), device_auth),
                mms,
                gatekeeper: Gatekeeper::open(user_storage, replay)?,
                tokens: TokenGenerator::new(mws_pkg_secret),
                clock: clock.clone(),
                rng: HmacDrbg::new(&rng_seed.to_be_bytes(), b"mws-service"),
                audit: AuditLog::new(4096),
            })),
            store,
            clock,
            replica_key,
        })
    }

    /// A bindable service facade.
    pub fn as_service(&self) -> impl mws_net::Service + 'static {
        let this = self.clone();
        move |req: Pdu| this.dispatch(req)
    }

    /// Routes one request. Deposits take the split-lock path; everything
    /// else is handled under the service lock as before.
    fn dispatch(&self, req: Pdu) -> Pdu {
        match req {
            Pdu::DepositRequest {
                sd_id,
                timestamp,
                u,
                algo,
                sealed,
                attribute,
                nonce,
                mac,
            } => {
                let start = std::time::Instant::now();
                let reply = self.handle_deposit(
                    PendingDeposit {
                        attribute,
                        nonce,
                        u,
                        algo,
                        sealed,
                        sd_id,
                        timestamp,
                    },
                    mac,
                );
                stats().deposit_us.record_duration(start.elapsed());
                reply
            }
            Pdu::DepositBatch { sd_id, items } => {
                let start = std::time::Instant::now();
                let reply = self.handle_deposit_batch(sd_id, items);
                stats().deposit_batch_us.record_duration(start.elapsed());
                reply
            }
            Pdu::ReplicaPull {
                attribute,
                after,
                max,
            } => self.handle_replica_pull(&attribute, after, max),
            Pdu::ReplicaPush { rows, mac } => self.handle_replica_push(rows, &mac),
            Pdu::ReplicaEvict {
                attribute,
                epoch,
                mac,
            } => self.handle_replica_evict(&attribute, epoch, &mac),
            other => self.inner.lock().handle(other),
        }
    }

    /// Serves full rows to a cluster peer: one attribute's, or a paged
    /// full scan when `attribute` is empty (node catch-up). The reply
    /// carries attribute strings and origin identities — material the
    /// client-facing protocol deliberately withholds — so it is MAC'd
    /// under the replica key and only useful to a holder of it; the
    /// sealed payloads themselves stay IBE-encrypted either way.
    fn handle_replica_pull(&self, attribute: &str, after: u64, max: u32) -> Pdu {
        let max = if max == 0 {
            REPLICA_PULL_DEFAULT_MAX
        } else {
            max as usize
        };
        let fetched = if attribute.is_empty() {
            let mut all = Vec::new();
            for attr in self.store.attributes() {
                match self.store.by_attribute(&attr) {
                    Ok(rows) => all.extend(rows),
                    Err(_) => return err(500, "replica scan failure"),
                }
            }
            all
        } else {
            match self.store.by_attribute(attribute) {
                Ok(rows) => rows,
                Err(_) => return err(500, "replica scan failure"),
            }
        };
        let mut newer: Vec<_> = fetched.into_iter().filter(|m| m.id >= after).collect();
        newer.sort_unstable_by_key(|m| m.id);
        let done = newer.len() <= max;
        newer.truncate(max);
        let rows: Vec<RelayEntry> = newer
            .into_iter()
            .map(|m| RelayEntry {
                seq: m.id,
                sd_id: m.sd_id,
                timestamp: m.timestamp,
                u: m.u,
                algo: m.algo,
                sealed: m.sealed,
                attribute: m.attribute,
                nonce: m.nonce,
            })
            .collect();
        stats().replica_rows_served.add(rows.len() as u64);
        let mac = Hmac::<Sha256>::mac(&self.replica_key, &replica_rows_bytes(&rows, done));
        Pdu::ReplicaRows { rows, done, mac }
    }

    /// Stores rows a cluster peer pushed (read-repair or catch-up) through
    /// the same durable origin-dedup path a device retransmission takes:
    /// each row fsyncs on its shard before the ack counts it, and a row
    /// already present under its `(sd_id, nonce)` origin is a dedup hit,
    /// not a second copy. The SDA replay guard is deliberately *not*
    /// touched — a later live retransmission of the same deposit must
    /// still converge to the same single row instead of 409ing.
    fn handle_replica_push(&self, rows: Vec<RelayEntry>, mac: &[u8]) -> Pdu {
        let expect = Hmac::<Sha256>::mac(&self.replica_key, &replica_push_bytes(&rows));
        if !ct_eq(mac, &expect) {
            stats().replica_mac_rejected.inc();
            mws_obs::warn!(target: "mws_core", "replica push rejected", reason = "bad mac",);
            return err(401, "replica MAC verification failed");
        }
        let mut stored = 0u32;
        let mut deduped = 0u32;
        for row in rows {
            let pending = PendingDeposit {
                attribute: row.attribute,
                nonce: row.nonce,
                u: row.u,
                algo: row.algo,
                sealed: row.sealed,
                sd_id: row.sd_id,
                timestamp: row.timestamp,
            };
            match self.store.deposit(&pending) {
                Ok((_, true)) => stored += 1,
                Ok((_, false)) => deduped += 1,
                Err(_) => return err(500, "storage failure"),
            }
        }
        stats().replica_rows_stored.add(u64::from(stored));
        if stored > 0 {
            mws_obs::debug!(target: "mws_core", "replica push stored",
                stored = u64::from(stored), deduped = u64::from(deduped),);
        }
        Pdu::ReplicaPushAck { stored, deduped }
    }

    /// Replica handover finalizer: a MAC'd order to drop every row of one
    /// attribute, sent by the rebalance worker once the inheriting
    /// replicas hold the arc. The rows keep existing on R other nodes —
    /// this sweep is what brings a membership change back to *exactly* R
    /// copies instead of leaking stale donors.
    fn handle_replica_evict(&self, attribute: &str, epoch: u64, mac: &[u8]) -> Pdu {
        let expect = Hmac::<Sha256>::mac(&self.replica_key, &replica_evict_bytes(attribute, epoch));
        if !ct_eq(mac, &expect) {
            stats().replica_mac_rejected.inc();
            mws_obs::warn!(target: "mws_core", "replica evict rejected", reason = "bad mac",);
            return err(401, "replica MAC verification failed");
        }
        match self.store.evict_attribute(attribute) {
            Ok(removed) => {
                stats().replica_rows_evicted.add(removed as u64);
                if removed > 0 {
                    mws_obs::debug!(target: "mws_core", "replica evict swept",
                        attribute = attribute.to_string(), removed = removed as u64,
                        epoch = epoch,);
                }
                Pdu::ReplicaEvicted {
                    removed: removed as u64,
                }
            }
            Err(_) => err(500, "storage failure"),
        }
    }

    /// One deposit: verify under the service lock, append + fsync on the
    /// owning shard *outside* it, then record the nonce and audit under the
    /// lock again. The ack is only built after the shard reported the row
    /// durable, and the replay nonce is only recorded after that same
    /// point, so a failed store stays honestly retryable (PR 2 invariant).
    fn handle_deposit(&self, row: PendingDeposit, mac: Vec<u8>) -> Pdu {
        let now = self.clock.now();
        {
            let mut inner = self.inner.lock();
            if let Err(reject) = inner.sda.verify_fresh(
                now,
                &row.sd_id,
                row.timestamp,
                &row.u,
                &row.sealed,
                &row.attribute,
                &row.nonce,
                &mac,
            ) {
                return reject_deposit(&mut inner, now, row.sd_id, &reject);
            }
        }
        let (message_id, stored) = match self.store.deposit(&row) {
            Ok(pair) => pair,
            Err(_) => {
                stats().deposit_storage_error.inc();
                return err(500, "storage failure");
            }
        };
        let mut inner = self.inner.lock();
        inner.sda.record_deposit(&row.sd_id, &row.nonce);
        if stored {
            stats().deposit_accepted.inc();
            inner.audit.record(
                now,
                AuditEvent::DepositAccepted {
                    sd_id: row.sd_id,
                    message_id,
                },
            );
        } else {
            // Honest retransmission answered from the origin index.
            stats().deposit_duplicate.inc();
        }
        mws_obs::debug!(
            target: "mws_core",
            "deposit acked",
            message_id = message_id,
            deduplicated = !stored,
        );
        Pdu::DepositAck { message_id }
    }

    /// One DepositBatch: authenticate every item in a single lock pass,
    /// group-commit the verified rows per shard (one WAL append + one fsync
    /// per touched shard) outside the lock, then record nonces and audit.
    /// The per-item acks in the response are only marked `STORED` /
    /// `DUPLICATE` after the owning shard's fsync returned — batching
    /// changes how rows share a frame, never the durable-before-ack order.
    fn handle_deposit_batch(&self, sd_id: String, items: Vec<DepositItem>) -> Pdu {
        let now = self.clock.now();
        stats().deposit_batch_items.record(items.len() as u64);
        let mut results = vec![
            DepositOutcome {
                status: DepositOutcome::STORAGE_ERROR,
                message_id: 0,
            };
            items.len()
        ];
        let mut verified: Vec<(usize, PendingDeposit)> = Vec::with_capacity(items.len());
        {
            let mut inner = self.inner.lock();
            for (i, item) in items.into_iter().enumerate() {
                match inner.sda.verify_fresh(
                    now,
                    &sd_id,
                    item.timestamp,
                    &item.u,
                    &item.sealed,
                    &item.attribute,
                    &item.nonce,
                    &item.mac,
                ) {
                    Ok(()) => verified.push((
                        i,
                        PendingDeposit {
                            attribute: item.attribute,
                            nonce: item.nonce,
                            u: item.u,
                            algo: item.algo,
                            sealed: item.sealed,
                            sd_id: sd_id.clone(),
                            timestamp: item.timestamp,
                        },
                    )),
                    Err(reject) => {
                        results[i].status = audit_batch_reject(&mut inner, now, &sd_id, &reject);
                    }
                }
            }
        }
        let rows: Vec<PendingDeposit> = verified.iter().map(|(_, row)| row.clone()).collect();
        let outcomes = self.store.deposit_batch(&rows);
        let mut inner = self.inner.lock();
        for ((i, row), outcome) in verified.into_iter().zip(outcomes) {
            match outcome {
                Some((message_id, fresh)) => {
                    inner.sda.record_deposit(&sd_id, &row.nonce);
                    results[i] = DepositOutcome {
                        status: if fresh {
                            DepositOutcome::STORED
                        } else {
                            DepositOutcome::DUPLICATE
                        },
                        message_id,
                    };
                    if fresh {
                        stats().deposit_accepted.inc();
                        inner.audit.record(
                            now,
                            AuditEvent::DepositAccepted {
                                sd_id: sd_id.clone(),
                                message_id,
                            },
                        );
                    } else {
                        stats().deposit_duplicate.inc();
                    }
                }
                None => {
                    // Shard append/fsync failed; nonce NOT recorded, so the
                    // device's retransmission of this item will be accepted.
                    stats().deposit_storage_error.inc();
                }
            }
        }
        drop(inner);
        mws_obs::debug!(
            target: "mws_core",
            "deposit batch acked",
            items = results.len(),
        );
        Pdu::DepositBatchAck { results }
    }

    /// Registers a device MAC key (SDA key management).
    pub fn register_device(&self, sd_id: &str, mac_key: &[u8]) {
        self.inner
            .lock()
            .sda
            .registry_mut()
            .register(sd_id, mac_key);
    }

    /// Disables a device.
    pub fn disable_device(&self, sd_id: &str) -> bool {
        self.inner.lock().sda.registry_mut().disable(sd_id)
    }

    /// Registers an RC.
    pub fn register_client(
        &self,
        rc_id: &str,
        password: &str,
        public_key: &[u8],
    ) -> Result<(), CoreError> {
        Ok(self
            .inner
            .lock()
            .gatekeeper
            .register(rc_id, password, public_key)?)
    }

    /// The stored RSA public key of a registered RC (None if unknown).
    pub fn client_public_key(&self, rc_id: &str) -> Option<Vec<u8>> {
        self.inner
            .lock()
            .gatekeeper
            .user(rc_id)
            .ok()
            .map(|rec| rec.public_key)
    }

    /// Grants a literal attribute.
    pub fn grant(&self, rc_id: &str, attribute: &str) -> Result<(), CoreError> {
        let mut inner = self.inner.lock();
        inner.mms.grant(rc_id, attribute)?;
        let now = inner.clock.now();
        inner.audit.record(
            now,
            AuditEvent::Granted {
                rc_id: rc_id.into(),
                attribute: attribute.into(),
            },
        );
        Ok(())
    }

    /// Grants by pattern (§VIII enhanced policies).
    pub fn grant_pattern(&self, rc_id: &str, pattern: &str) -> Result<(), CoreError> {
        let parsed =
            AttrPattern::parse(pattern).map_err(|_| CoreError::Crypto("invalid pattern"))?;
        self.inner.lock().mms.grant_pattern(rc_id, parsed)?;
        Ok(())
    }

    /// Revokes one attribute (requirement iii).
    pub fn revoke(&self, rc_id: &str, attribute: &str) -> Result<(), CoreError> {
        let mut inner = self.inner.lock();
        inner.mms.revoke(rc_id, attribute)?;
        let now = inner.clock.now();
        inner.audit.record(
            now,
            AuditEvent::Revoked {
                rc_id: rc_id.into(),
                attribute: attribute.into(),
            },
        );
        Ok(())
    }

    /// Revokes an identity entirely.
    pub fn revoke_identity(&self, rc_id: &str) -> Result<usize, CoreError> {
        Ok(self.inner.lock().mms.revoke_identity(rc_id)?)
    }

    /// Applies a batch of edge-verified deposits pulled from a distribution
    /// point (§VIII). The relay puller has already authenticated the batch;
    /// entries go straight into the Message Database. Returns the assigned
    /// warehouse ids.
    pub fn store_relayed(&self, entries: &[mws_wire::RelayEntry]) -> Result<Vec<u64>, CoreError> {
        let mut inner = self.inner.lock();
        let now = inner.clock.now();
        let mut ids = Vec::with_capacity(entries.len());
        for e in entries {
            let id = inner.mms.store_message(
                &e.attribute,
                &e.nonce,
                &e.u,
                e.algo,
                &e.sealed,
                &e.sd_id,
                e.timestamp,
            )?;
            inner.audit.record(
                now,
                AuditEvent::DepositAccepted {
                    sd_id: e.sd_id.clone(),
                    message_id: id,
                },
            );
            ids.push(id);
        }
        Ok(ids)
    }

    /// Retention sweep: drops every warehoused message older than `before`
    /// (ciphertexts only — nothing about them is recoverable afterwards).
    pub fn purge_messages_before(&self, before: u64) -> Result<usize, CoreError> {
        Ok(self.inner.lock().mms.purge_before(before)?)
    }

    /// The current Table 1 rows.
    pub fn policy_table(&self) -> Vec<PolicyRow> {
        self.inner.lock().mms.policy().table()
    }

    /// Messages currently warehoused.
    pub fn message_count(&self) -> usize {
        self.inner.lock().mms.messages().len()
    }

    /// A shared handle to the sharded message warehouse, for inspecting
    /// per-shard state (row counts, metrics) without the service lock.
    pub fn store_handle(&self) -> Arc<ShardedMessageDb> {
        Arc::clone(&self.store)
    }

    /// Audit rejections so far.
    pub fn rejection_count(&self) -> usize {
        self.inner.lock().audit.rejection_count()
    }

    /// Snapshot of all audit records.
    pub fn audit_events(&self) -> Vec<AuditRecord> {
        self.inner.lock().audit.events().cloned().collect()
    }
}

/// Audits and answers a rejected single deposit ("the message is discarded
/// and optionally an alert is sent").
fn reject_deposit(
    inner: &mut MwsInner,
    now: u64,
    sd_id: String,
    reject: &crate::sda::SdaReject,
) -> Pdu {
    inner.audit.record(
        now,
        AuditEvent::DepositRejected {
            sd_id,
            reason: reject.to_string(),
        },
    );
    let code = match reject {
        crate::sda::SdaReject::Replay => {
            stats().deposit_replay.inc();
            409
        }
        _ => {
            stats().deposit_rejected.inc();
            401
        }
    };
    mws_obs::warn!(
        target: "mws_core",
        "deposit rejected",
        code = u64::from(code),
        reason = reject.to_string(),
    );
    err(code, &reject.to_string())
}

/// Audits a rejected batch item and returns its per-item status byte.
fn audit_batch_reject(
    inner: &mut MwsInner,
    now: u64,
    sd_id: &str,
    reject: &crate::sda::SdaReject,
) -> u8 {
    inner.audit.record(
        now,
        AuditEvent::DepositRejected {
            sd_id: sd_id.to_string(),
            reason: reject.to_string(),
        },
    );
    match reject {
        crate::sda::SdaReject::Replay => {
            stats().deposit_replay.inc();
            DepositOutcome::REPLAY
        }
        _ => {
            stats().deposit_rejected.inc();
            DepositOutcome::REJECTED
        }
    }
}

impl MwsInner {
    fn handle(&mut self, req: Pdu) -> Pdu {
        match req {
            Pdu::RetrieveRequest {
                rc_id,
                auth,
                since,
                limit,
            } => {
                let start = std::time::Instant::now();
                let reply = self.handle_retrieve(rc_id, auth, since, limit);
                stats().retrieve_us.record_duration(start.elapsed());
                reply
            }
            Pdu::HealthRequest => Pdu::HealthResponse {
                role: "mms".into(),
                ready: true,
                detail: format!("{} messages warehoused", self.mms.messages().len()),
            },
            Pdu::StatsRequest => Pdu::StatsResponse {
                role: "mms".into(),
                text: mws_obs::registry().exposition(),
            },
            _ => err(400, "unexpected PDU at MWS"),
        }
    }

    fn handle_retrieve(&mut self, rc_id: String, auth: Vec<u8>, since: u64, limit: u32) -> Pdu {
        let now = self.clock.now();
        let rec = match self.gatekeeper.verify(now, &rc_id, &auth) {
            Ok(rec) => rec,
            Err(reject) => {
                self.audit.record(
                    now,
                    AuditEvent::RetrieveRejected {
                        rc_id,
                        reason: reject.to_string(),
                    },
                );
                stats().retrieve_rejected.inc();
                let code = match reject {
                    crate::gatekeeper::GkReject::Replay => 409,
                    _ => 401,
                };
                mws_obs::warn!(
                    target: "mws_core",
                    "retrieve rejected",
                    code = u64::from(code),
                    reason = reject.to_string(),
                );
                return err(code, &reject.to_string());
            }
        };
        let Ok(rsa_pub) = RsaPublicKey::from_bytes(&rec.public_key) else {
            return err(500, "corrupt client public key");
        };
        let table = match self.mms.attribute_table_for(&rc_id) {
            Ok(t) => t,
            Err(_) => return err(500, "policy failure"),
        };
        let session_key = TokenGenerator::fresh_session_key(&mut self.rng);
        let ticket = self.tokens.build_ticket(
            &mut self.rng,
            &TicketContent {
                rc_id: rc_id.clone(),
                session_key: session_key.clone(),
                issued_at: now,
                table: table.clone(),
            },
        );
        let Ok(token) = TokenGenerator::build_token(&mut self.rng, &rsa_pub, &session_key, &ticket)
        else {
            return err(500, "token construction failed");
        };
        let rows = match self.mms.retrieve_for(&rc_id, since, limit) {
            Ok(rows) => rows,
            Err(_) => return err(500, "retrieval failure"),
        };
        let messages: Vec<WireMessage> = rows
            .into_iter()
            .map(|(m, aid)| WireMessage {
                message_id: m.id,
                aad: deposit_aad(&m.attribute, &m.nonce, &m.sd_id, m.timestamp),
                u: m.u,
                algo: m.algo,
                sealed: m.sealed,
                aid,
                nonce: m.nonce,
                timestamp: m.timestamp,
            })
            .collect();
        stats().retrieve_served.inc();
        stats().tickets_issued.inc();
        mws_obs::debug!(
            target: "mws_core",
            "retrieve served",
            count = messages.len(),
        );
        self.audit.record(
            now,
            AuditEvent::RetrieveServed {
                rc_id,
                count: messages.len(),
            },
        );
        Pdu::RetrieveResponse { token, messages }
    }
}

fn err(code: u16, detail: &str) -> Pdu {
    Pdu::Error {
        code,
        detail: detail.to_string(),
    }
}

/// How smart devices authenticate deposits (see `sda`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceAuthMode {
    /// Per-device shared MAC keys (§V.B).
    Mac,
    /// Cha–Cheon identity-based signatures (§VIII).
    Ibs,
}

/// Deployment-wide configuration.
#[derive(Clone, Debug)]
pub struct DeploymentConfig {
    /// Pairing parameter set.
    pub level: SecurityLevel,
    /// Symmetric cipher for the hybrid layer (D1).
    pub algo: CipherAlgo,
    /// Replay policy for MWS and PKG.
    pub replay: ReplayPolicy,
    /// Storage backend factory (memory or a directory of WAL files).
    pub storage_dir: Option<std::path::PathBuf>,
    /// RSA modulus bits for RC keypairs.
    pub rsa_bits: u32,
    /// Deployment master seed (all randomness derives from it).
    pub seed: u64,
    /// `Some((t, n))` runs the PKG over a threshold-shared master (§VIII).
    pub threshold: Option<(u32, u32)>,
    /// Device deposit authentication: shared-key MAC (the paper's design)
    /// or identity-based signatures (§VIII future work).
    pub device_auth: DeviceAuthMode,
    /// PKG session lifetime in logical ticks.
    pub session_ttl: u64,
    /// Fault injection on the MWS endpoint.
    pub mws_fault: FaultConfig,
    /// Fault injection on the PKG endpoint.
    pub pkg_fault: FaultConfig,
    /// Injected-failure schedule for the message store (chaos testing);
    /// the caller keeps a clone of the plan to steer it. Applies to every
    /// shard; use [`Self::message_shard_faults`] for per-shard plans.
    pub message_store_faults: Option<FaultPlan>,
    /// Warehouse shard count (DESIGN.md §9). `1` reproduces the unsharded
    /// layout bit-for-bit, including WAL file names.
    pub message_shards: usize,
    /// Per-shard-index injected-failure schedules (chaos testing of shard
    /// recovery isolation). Indices outside `0..message_shards` are ignored.
    pub message_shard_faults: Vec<(usize, FaultPlan)>,
}

impl DeploymentConfig {
    /// Fast deterministic defaults for tests: toy curve, AES-128, memory
    /// storage, 512-bit RSA, hardened replay policy.
    pub fn test_default() -> Self {
        Self {
            level: SecurityLevel::Toy,
            algo: CipherAlgo::Aes128,
            replay: ReplayPolicy::standard(),
            storage_dir: None,
            rsa_bits: 512,
            seed: 42,
            threshold: None,
            device_auth: DeviceAuthMode::Mac,
            session_ttl: 1000,
            mws_fault: FaultConfig::default(),
            pkg_fault: FaultConfig::default(),
            message_store_faults: None,
            message_shards: 1,
            message_shard_faults: Vec::new(),
        }
    }

    fn storage(&self, name: &str) -> StorageKind {
        let base = match &self.storage_dir {
            None => StorageKind::Memory,
            Some(dir) => StorageKind::File(dir.join(format!("{name}.wal"))),
        };
        match (&self.message_store_faults, name) {
            (Some(plan), "messages") => base.with_faults(plan.clone()),
            _ => base,
        }
    }

    /// Per-shard message storage kinds: the base layout from
    /// [`Self::storage`], striped `message_shards` ways, with any per-shard
    /// fault plans attached to their shard index.
    fn message_storages(&self) -> Vec<StorageKind> {
        let mut kinds =
            mws_store::shard_kinds(&self.storage("messages"), self.message_shards.max(1));
        for (idx, plan) in &self.message_shard_faults {
            if let Some(kind) = kinds.get_mut(*idx) {
                *kind = kind.clone().with_faults(plan.clone());
            }
        }
        kinds
    }
}

/// A fully provisioned system: PKG + MWS on a network, plus the
/// provisioning records needed to mint device and client handles.
pub struct Deployment {
    config: DeploymentConfig,
    network: Network,
    clock: LogicalClock,
    ibe: IbeSystem,
    msk: mws_ibe::MasterSecret,
    mpk: mws_ibe::MasterPublic,
    mws: MwsService,
    pkg: PkgService,
    rng: HmacDrbg,
    mws_pkg_secret: Vec<u8>,
    device_keys: HashMap<String, DeviceCredential>,
    client_keys: HashMap<String, RsaKeyPair>,
}

impl Deployment {
    /// Provisions a complete deployment.
    pub fn new(config: DeploymentConfig) -> Self {
        let clock = LogicalClock::new();
        let network = Network::new();
        let mut rng = HmacDrbg::new(&config.seed.to_be_bytes(), b"mws-deployment");
        let ibe = IbeSystem::named(config.level);
        let (msk, mpk) = ibe.setup(&mut rng);
        let master = match config.threshold {
            None => PkgMaster::Single(msk.clone()),
            Some((t, n)) => {
                let shares = ibe
                    .share_master(&mut rng, &msk, t, n)
                    .expect("valid threshold shape");
                PkgMaster::Threshold {
                    shares,
                    t: t as usize,
                }
            }
        };
        let mut mws_pkg_secret = vec![0u8; 32];
        rng.fill_bytes(&mut mws_pkg_secret);

        let pkg = PkgService::new(
            ibe.clone(),
            master,
            mpk.clone(),
            &mws_pkg_secret,
            clock.clone(),
            config.replay.clone(),
            rng.next_u64(),
            config.session_ttl,
        );
        network.bind_with("pkg", pkg.as_service(), config.pkg_fault.clone());

        let device_auth = match config.device_auth {
            DeviceAuthMode::Mac => DeviceAuthVerifier::Mac,
            DeviceAuthMode::Ibs => DeviceAuthVerifier::Ibs {
                ibe: ibe.clone(),
                mpk: mpk.clone(),
            },
        };
        let mws = MwsService::new_sharded(
            DeviceRegistry::new(),
            config.message_storages(),
            config.storage("policy"),
            config.storage("users"),
            &mws_pkg_secret,
            clock.clone(),
            config.replay.clone(),
            rng.next_u64(),
            device_auth,
        )
        .expect("storage open");
        network.bind_with("mws", mws.as_service(), config.mws_fault.clone());

        Self {
            config,
            network,
            clock,
            ibe,
            msk,
            mpk,
            mws,
            pkg,
            rng,
            mws_pkg_secret,
            device_keys: HashMap::new(),
            client_keys: HashMap::new(),
        }
    }

    /// Registers a smart device: in MAC mode a fresh shared key is
    /// generated and installed; in IBS mode the PKG-side master extracts the
    /// device's signing key `d_SD` (and the MWS only records admission).
    pub fn register_device(&mut self, sd_id: &str) {
        let credential = match self.config.device_auth {
            DeviceAuthMode::Mac => {
                let mut key = vec![0u8; 32];
                self.rng.fill_bytes(&mut key);
                self.mws.register_device(sd_id, &key);
                DeviceCredential::MacKey(key)
            }
            DeviceAuthMode::Ibs => {
                let signing_id = format!("{SD_IDENTITY_PREFIX}{sd_id}");
                let d_sd = self.ibe.extract(&self.msk, signing_id.as_bytes());
                self.mws.register_device(sd_id, &[]); // admission only
                DeviceCredential::IbsKey(d_sd)
            }
        };
        self.device_keys.insert(sd_id.to_string(), credential);
    }

    /// Registers a receiving client with initial attribute grants.
    ///
    /// Idempotent across restarts of a durable deployment: all key material
    /// derives deterministically from the deployment seed, so replaying the
    /// same provisioning sequence against reloaded storage reattaches the
    /// identical keypair (verified against the stored record) instead of
    /// failing on the duplicate.
    pub fn register_client(&mut self, rc_id: &str, password: &str, attributes: &[&str]) {
        let rsa =
            RsaKeyPair::generate(&mut self.rng, self.config.rsa_bits).expect("configured key size");
        match self
            .mws
            .register_client(rc_id, password, &rsa.public.to_bytes())
        {
            Ok(()) => {}
            Err(_) => {
                // Already registered (reloaded from durable storage): the
                // regenerated key must match the stored one.
                let stored = self
                    .mws
                    .client_public_key(rc_id)
                    .expect("duplicate implies stored record");
                assert_eq!(
                    stored,
                    rsa.public.to_bytes(),
                    "re-registration with diverging key material for {rc_id}"
                );
            }
        }
        for attr in attributes {
            self.mws.grant(rc_id, attr).expect("grant");
        }
        self.client_keys.insert(rc_id.to_string(), rsa);
    }

    /// Mints a device handle (bootstraps parameters from the PKG).
    pub fn device(&mut self, sd_id: &str) -> SmartDevice {
        let mws = self.network.client("mws");
        let pkg = self.network.client("pkg");
        self.device_with(sd_id, mws, &pkg)
            .expect("bootstrap against live PKG")
    }

    /// Mints a device handle over explicit transports — e.g. `mws-server`
    /// TCP clients pointed at remote MMS and PKG daemons — instead of the
    /// deployment's in-process bus. Fails if the PKG is unreachable during
    /// parameter bootstrap.
    pub fn device_with(
        &mut self,
        sd_id: &str,
        mws: Client,
        pkg: &Client,
    ) -> Result<SmartDevice, CoreError> {
        let credential = self
            .device_keys
            .get(sd_id)
            .expect("device registered")
            .clone();
        SmartDevice::bootstrap(
            sd_id,
            credential,
            self.config.algo,
            self.clock.clone(),
            self.rng.next_u64(),
            mws,
            pkg,
        )
    }

    /// Mints a client handle.
    pub fn client(&mut self, rc_id: &str, password: &str) -> ReceivingClient {
        let mws = self.network.client("mws");
        let pkg = self.network.client("pkg");
        self.client_with(rc_id, password, mws, pkg)
    }

    /// Mints a client handle over explicit transports (see
    /// [`Self::device_with`]). In the four-server topology the `mws` client
    /// points at the Gatekeeper front door, which authenticates and relays
    /// to the warehouse.
    pub fn client_with(
        &mut self,
        rc_id: &str,
        password: &str,
        mws: Client,
        pkg: Client,
    ) -> ReceivingClient {
        let rsa = self
            .client_keys
            .get(rc_id)
            .expect("client registered")
            .clone();
        ReceivingClient::new(
            rc_id,
            password,
            rsa,
            self.ibe.clone(),
            self.clock.clone(),
            self.rng.next_u64(),
            mws,
            pkg,
        )
    }

    /// The warehouse admin handle.
    pub fn mws(&self) -> &MwsService {
        &self.mws
    }

    /// The PKG handle.
    pub fn pkg(&self) -> &PkgService {
        &self.pkg
    }

    /// The deployment clock.
    pub fn clock(&self) -> &LogicalClock {
        &self.clock
    }

    /// The underlying network (metrics, custom clients).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The shared IBE system.
    pub fn ibe(&self) -> &IbeSystem {
        &self.ibe
    }

    /// The deployment master seed.
    pub fn seed(&self) -> u64 {
        self.config.seed
    }

    /// Master public parameters. Transport-level IBS verification
    /// (DESIGN.md §12) needs them on every daemon; like all provisioning
    /// they are seed-deterministic, so every deployment of the same seed
    /// verifies the same endpoint signatures.
    pub fn master_public(&self) -> &mws_ibe::MasterPublic {
        &self.mpk
    }

    /// Extracts the IBS signing key for a transport endpoint identity
    /// (e.g. `"mws/gatekeeper"`). This is the PKG-side extraction the
    /// paper performs for devices, reused to give each daemon a
    /// transport credential without any extra key distribution.
    pub fn extract_transport_key(&self, identity: &str) -> mws_ibe::UserPrivateKey {
        self.ibe.extract(&self.msk, identity.as_bytes())
    }

    /// The cluster replica-plane MAC key (see [`replica_key`]). Seed-
    /// deterministic like all provisioning: every replica deployment of
    /// the same seed derives the same key, which is what lets a cluster
    /// router authenticate the repair plane against all of them.
    pub fn replica_key(&self) -> Vec<u8> {
        replica_key(&self.mws_pkg_secret)
    }

    /// MACs a [`Pdu::ClusterJoin`](mws_wire::Pdu::ClusterJoin) order for
    /// `node` against ring `epoch` with this deployment's replica key —
    /// the operator-side half of the membership admin plane. Any
    /// deployment of the cluster's seed produces the same MAC, so a
    /// control tool needs only the seed, never a key file.
    pub fn cluster_join_mac(&self, node: &str, epoch: u64) -> Vec<u8> {
        Hmac::<Sha256>::mac(
            &self.replica_key(),
            &mws_wire::cluster_join_bytes(node, epoch),
        )
    }

    /// MACs a [`Pdu::ClusterDrain`](mws_wire::Pdu::ClusterDrain) order —
    /// see [`cluster_join_mac`](Self::cluster_join_mac).
    pub fn cluster_drain_mac(&self, node: &str, epoch: u64) -> Vec<u8> {
        Hmac::<Sha256>::mac(
            &self.replica_key(),
            &mws_wire::cluster_drain_bytes(node, epoch),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deployment() -> Deployment {
        Deployment::new(DeploymentConfig::test_default())
    }

    #[test]
    fn end_to_end_single_message() {
        let mut dep = deployment();
        dep.register_device("meter-1");
        dep.register_client("utility", "pw", &["ELECTRIC-APT9"]);
        let mut meter = dep.device("meter-1");
        let id = meter.deposit("ELECTRIC-APT9", b"kwh=42.7").unwrap();
        let mut rc = dep.client("utility", "pw");
        let msgs = rc.retrieve_and_decrypt(0).unwrap();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].message_id, id);
        assert_eq!(msgs[0].plaintext, b"kwh=42.7");
    }

    #[test]
    fn unauthorized_attribute_invisible() {
        let mut dep = deployment();
        dep.register_device("meter-1");
        dep.register_client("water-co", "pw", &["WATER-APT9"]);
        let mut meter = dep.device("meter-1");
        meter.deposit("ELECTRIC-APT9", b"secret").unwrap();
        meter.deposit("WATER-APT9", b"visible").unwrap();
        let mut rc = dep.client("water-co", "pw");
        let msgs = rc.retrieve_and_decrypt(0).unwrap();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].plaintext, b"visible");
    }

    #[test]
    fn wrong_password_rejected_at_gatekeeper() {
        let mut dep = deployment();
        dep.register_client("rc", "right", &["A"]);
        let mut rc = dep.client("rc", "wrong");
        let err = rc.retrieve_and_decrypt(0).unwrap_err();
        assert!(matches!(
            err,
            CoreError::Remote {
                code: crate::ErrorCode::AuthFailed,
                ..
            }
        ));
    }

    #[test]
    fn forged_deposit_rejected_and_audited() {
        let mut dep = deployment();
        dep.register_device("meter-1");
        dep.register_client("rc", "pw", &["A"]);
        let mut meter = dep.device("meter-1");
        let mut pdu = meter.compose_deposit("A", b"payload");
        if let Pdu::DepositRequest { sealed, .. } = &mut pdu {
            sealed[0] ^= 1; // MWS-side tamper
        }
        let reply = dep.network().client("mws").call(&pdu).unwrap();
        assert!(matches!(reply, Pdu::Error { code: 401, .. }));
        assert_eq!(dep.mws().rejection_count(), 1);
        assert_eq!(dep.mws().message_count(), 0, "discarded, not stored");
    }

    #[test]
    fn deposit_replay_rejected() {
        let mut dep = deployment();
        dep.register_device("meter-1");
        dep.register_client("rc", "pw", &["A"]);
        let mut meter = dep.device("meter-1");
        let pdu = meter.compose_deposit("A", b"payload");
        let mws = dep.network().client("mws");
        assert!(matches!(mws.call(&pdu).unwrap(), Pdu::DepositAck { .. }));
        assert!(matches!(
            mws.call(&pdu).unwrap(),
            Pdu::Error { code: 409, .. }
        ));
    }

    #[test]
    fn deposit_retries_through_injected_storage_failure() {
        // A failed store write returns 500 WITHOUT recording the nonce, so
        // the device's retransmission of the identical frame succeeds
        // instead of bouncing off the replay guard.
        let plan = FaultPlan::default();
        let mut dep = Deployment::new(DeploymentConfig {
            message_store_faults: Some(plan.clone()),
            ..DeploymentConfig::test_default()
        });
        dep.register_device("m");
        dep.register_client("rc", "pw", &["A"]);
        let mut meter = dep.device("m");
        plan.fail_append(plan.appends());
        let id = meter.deposit_reliable("A", b"durable reading", 3).unwrap();
        assert!(id.is_some(), "acked after retry");
        assert_eq!(dep.mws().message_count(), 1, "stored exactly once");
        let mut rc = dep.client("rc", "pw");
        let msgs = rc.retrieve_and_decrypt(0).unwrap();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].plaintext, b"durable reading");
    }

    #[test]
    fn batched_deposit_end_to_end_on_a_sharded_warehouse() {
        let mut dep = Deployment::new(DeploymentConfig {
            message_shards: 4,
            ..DeploymentConfig::test_default()
        });
        dep.register_device("m");
        dep.register_client("rc", "pw", &["A", "B", "C"]);
        let mut meter = dep.device("m");
        let outcomes = meter
            .deposit_batch(&[
                ("A", b"one".as_slice()),
                ("B", b"two".as_slice()),
                ("C", b"three".as_slice()),
            ])
            .unwrap();
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes.iter().all(|o| o.status == DepositOutcome::STORED));
        assert_eq!(dep.mws().message_count(), 3);
        // Every batched item decrypts like a single deposit would.
        let mut rc = dep.client("rc", "pw");
        let msgs = rc.retrieve_and_decrypt(0).unwrap();
        assert_eq!(msgs.len(), 3);
        let mut plain: Vec<&[u8]> = msgs.iter().map(|m| m.plaintext.as_slice()).collect();
        plain.sort_unstable();
        assert_eq!(plain, vec![b"one".as_slice(), b"three", b"two"]);
    }

    #[test]
    fn batch_mixes_statuses_per_item() {
        let mut dep = deployment();
        dep.register_device("m");
        dep.register_client("rc", "pw", &["A"]);
        let mut meter = dep.device("m");
        let mut pdu = meter
            .compose_deposit_batch(&[("A", b"good".as_slice()), ("A", b"tampered".as_slice())]);
        if let Pdu::DepositBatch { items, .. } = &mut pdu {
            items[1].sealed[0] ^= 1; // in-flight tamper on item 1 only
            let dup = items[0].clone();
            items.push(dup); // same origin as item 0, inside one batch
        }
        let reply = dep.network().client("mws").call(&pdu).unwrap();
        let Pdu::DepositBatchAck { results } = reply else {
            panic!("expected batch ack");
        };
        assert_eq!(results[0].status, DepositOutcome::STORED);
        assert_eq!(results[1].status, DepositOutcome::REJECTED);
        assert_eq!(results[2].status, DepositOutcome::DUPLICATE);
        assert_eq!(results[2].message_id, results[0].message_id);
        assert_eq!(dep.mws().message_count(), 1, "tampered item discarded");
        assert_eq!(dep.mws().rejection_count(), 1);
        // Retransmitting the whole batch now trips the replay guard.
        let reply = dep.network().client("mws").call(&pdu).unwrap();
        let Pdu::DepositBatchAck { results } = reply else {
            panic!("expected batch ack");
        };
        assert_eq!(results[0].status, DepositOutcome::REPLAY);
    }

    #[test]
    fn sharded_deployment_serves_single_deposits_too() {
        let mut dep = Deployment::new(DeploymentConfig {
            message_shards: 3,
            ..DeploymentConfig::test_default()
        });
        dep.register_device("m");
        dep.register_client("rc", "pw", &["X", "Y"]);
        let mut meter = dep.device("m");
        let a = meter.deposit("X", b"one").unwrap();
        let b = meter.deposit("Y", b"two").unwrap();
        assert_ne!(a, b, "ids unique across shards");
        let mut rc = dep.client("rc", "pw");
        assert_eq!(rc.retrieve_and_decrypt(0).unwrap().len(), 2);
    }

    #[test]
    fn health_pdu_served_by_mws_and_pkg() {
        let mut dep = deployment();
        dep.register_device("m");
        dep.register_client("rc", "pw", &["A"]);
        dep.device("m").deposit("A", b"x").unwrap();
        let mws = dep.network().client("mws");
        match mws.call(&Pdu::HealthRequest).unwrap() {
            Pdu::HealthResponse { role, ready, .. } => {
                assert_eq!(role, "mms");
                assert!(ready);
            }
            other => panic!("unexpected reply {other:?}"),
        }
        let pkg = dep.network().client("pkg");
        match pkg.call(&Pdu::HealthRequest).unwrap() {
            Pdu::HealthResponse { role, ready, .. } => {
                assert_eq!(role, "pkg");
                assert!(ready);
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn revocation_blocks_future_messages_only() {
        let mut dep = deployment();
        dep.register_device("m");
        dep.register_client("c-services", "pw", &["ELECTRIC-APT"]);
        let mut meter = dep.device("m");
        meter.deposit("ELECTRIC-APT", b"before").unwrap();
        let mut rc = dep.client("c-services", "pw");
        assert_eq!(rc.retrieve_and_decrypt(0).unwrap().len(), 1);
        // Revoke, deposit more: the RC must see nothing new.
        dep.mws().revoke("c-services", "ELECTRIC-APT").unwrap();
        meter.deposit("ELECTRIC-APT", b"after").unwrap();
        assert_eq!(rc.retrieve_and_decrypt(0).unwrap().len(), 0);
    }

    #[test]
    fn threshold_pkg_deployment_works() {
        let mut dep = Deployment::new(DeploymentConfig {
            threshold: Some((2, 3)),
            ..DeploymentConfig::test_default()
        });
        dep.register_device("m");
        dep.register_client("rc", "pw", &["A"]);
        let mut meter = dep.device("m");
        meter.deposit("A", b"via threshold pkg").unwrap();
        let mut rc = dep.client("rc", "pw");
        let msgs = rc.retrieve_and_decrypt(0).unwrap();
        assert_eq!(msgs[0].plaintext, b"via threshold pkg");
    }

    #[test]
    fn every_cipher_algo_end_to_end() {
        for algo in [
            CipherAlgo::Des,
            CipherAlgo::TripleDes,
            CipherAlgo::Aes128,
            CipherAlgo::Aes256,
            CipherAlgo::ChaCha20,
        ] {
            let mut dep = Deployment::new(DeploymentConfig {
                algo,
                ..DeploymentConfig::test_default()
            });
            dep.register_device("m");
            dep.register_client("rc", "pw", &["A"]);
            let mut meter = dep.device("m");
            meter.deposit("A", b"payload").unwrap();
            let mut rc = dep.client("rc", "pw");
            assert_eq!(
                rc.retrieve_and_decrypt(0).unwrap()[0].plaintext,
                b"payload",
                "{algo:?}"
            );
        }
    }

    #[test]
    fn segmented_deposit_selective_visibility() {
        let mut dep = deployment();
        dep.register_device("m");
        dep.register_client("billing", "pw", &["USAGE-APT"]);
        dep.register_client("ops", "pw", &["ERRORS-APT"]);
        let mut meter = dep.device("m");
        meter
            .deposit_segmented(&[
                ("USAGE-APT", b"total=12kWh".as_slice()),
                ("ERRORS-APT", b"err=none".as_slice()),
            ])
            .unwrap();
        let mut billing = dep.client("billing", "pw");
        let got = billing.retrieve_and_decrypt(0).unwrap();
        assert_eq!(got.len(), 1);
        let frame = crate::segmentation::SegmentFrame::parse(&got[0].plaintext).unwrap();
        assert_eq!(frame.payload, b"total=12kWh");
        assert_eq!(frame.total, 2, "billing knows a part is elsewhere");
        let mut ops = dep.client("ops", "pw");
        let got = ops.retrieve_and_decrypt(0).unwrap();
        let frame = crate::segmentation::SegmentFrame::parse(&got[0].plaintext).unwrap();
        assert_eq!(frame.payload, b"err=none");
    }

    #[test]
    fn ibs_device_auth_end_to_end() {
        // §VIII: deposits signed with identity-based signatures instead of
        // shared MAC keys — the MWS verifies with public parameters only.
        let mut dep = Deployment::new(DeploymentConfig {
            device_auth: DeviceAuthMode::Ibs,
            ..DeploymentConfig::test_default()
        });
        dep.register_device("meter-1");
        dep.register_client("rc", "pw", &["A"]);
        let mut meter = dep.device("meter-1");
        meter.deposit("A", b"signed reading").unwrap();
        let mut rc = dep.client("rc", "pw");
        assert_eq!(
            rc.retrieve_and_decrypt(0).unwrap()[0].plaintext,
            b"signed reading"
        );
        // Tampering still caught — now by signature verification.
        let mut pdu = meter.compose_deposit("A", b"x");
        if let Pdu::DepositRequest { attribute, .. } = &mut pdu {
            *attribute = "B".into();
        }
        let reply = dep.network().client("mws").call(&pdu).unwrap();
        assert!(matches!(reply, Pdu::Error { code: 401, .. }));
        // A MAC-mode authenticator (32 bytes) is not a valid signature.
        let mut pdu = meter.compose_deposit("A", b"y");
        if let Pdu::DepositRequest { mac, .. } = &mut pdu {
            *mac = vec![0u8; 32];
        }
        let reply = dep.network().client("mws").call(&pdu).unwrap();
        assert!(matches!(reply, Pdu::Error { code: 401, .. }));
    }

    #[test]
    fn pattern_grant_covers_new_devices() {
        let mut dep = deployment();
        dep.register_client("c-services", "pw", &[]);
        dep.mws()
            .grant_pattern("c-services", "ELECTRIC-**")
            .unwrap();
        dep.register_device("new-meter");
        let mut meter = dep.device("new-meter");
        meter
            .deposit("ELECTRIC-BRAND-NEW", b"first reading")
            .unwrap();
        let mut rc = dep.client("c-services", "pw");
        let msgs = rc.retrieve_and_decrypt(0).unwrap();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].plaintext, b"first reading");
    }

    #[test]
    fn since_filter_supports_incremental_polling() {
        let mut dep = deployment();
        dep.register_device("m");
        dep.register_client("rc", "pw", &["A"]);
        let mut meter = dep.device("m");
        meter.deposit("A", b"one").unwrap();
        dep.clock().advance(5);
        meter.deposit("A", b"two").unwrap();
        let mut rc = dep.client("rc", "pw");
        let all = rc.retrieve_and_decrypt(0).unwrap();
        assert_eq!(all.len(), 2);
        let newer = rc.retrieve_and_decrypt(5).unwrap();
        assert_eq!(newer.len(), 1);
        assert_eq!(newer[0].plaintext, b"two");
    }

    #[test]
    fn retention_sweep_through_service() {
        let mut dep = deployment();
        dep.register_device("m");
        dep.register_client("rc", "pw", &["A"]);
        let mut meter = dep.device("m");
        meter.deposit("A", b"old").unwrap();
        dep.clock().advance(10);
        meter.deposit("A", b"new").unwrap();
        assert_eq!(dep.mws().purge_messages_before(5).unwrap(), 1);
        let mut rc = dep.client("rc", "pw");
        let got = rc.retrieve_and_decrypt(0).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].plaintext, b"new");
    }

    #[test]
    fn table1_shape_reproduced_through_service() {
        let mut dep = deployment();
        dep.register_client("IDRC1", "p1", &["A1", "A2"]);
        dep.register_client("IDRC2", "p2", &["A1"]);
        dep.register_client("IDRC3", "p3", &["A3"]);
        dep.register_client("IDRC4", "p4", &["A4"]);
        let table = dep.mws().policy_table();
        assert_eq!(table.len(), 5);
        let aids: Vec<u64> = table.iter().map(|r| r.attribute_id).collect();
        assert_eq!(aids, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn mws_cannot_decrypt_stored_messages() {
        // The core confidentiality claim: the warehouse sees only
        // ciphertext. We check that the stored payload does not contain the
        // plaintext and that without the PKG's key no decryption path exists.
        let mut dep = deployment();
        dep.register_device("m");
        dep.register_client("rc", "pw", &["A"]);
        let mut meter = dep.device("m");
        let secret = b"very-secret-reading-000".to_vec();
        meter.deposit("A", &secret).unwrap();
        let events = dep.mws().audit_events();
        assert!(!events.is_empty());
        // Inspect the raw stored bytes via a retrieval at the wire level.
        let mut rc = dep.client("rc", "pw");
        let (_, wire_msgs) = rc.retrieve(0).unwrap();
        let sealed = &wire_msgs[0].sealed;
        assert!(!sealed.windows(secret.len()).any(|w| w == secret.as_slice()));
    }

    #[test]
    fn replica_plane_round_trips_between_seed_replicas() {
        // Two deployments from one seed = two cluster nodes: same device
        // keys, same replica key. Rows pulled from one must push into the
        // other durably, idempotently, and survive a later live
        // retransmission of the same deposit.
        let mut a = deployment();
        let mut b = deployment();
        for dep in [&mut a, &mut b] {
            dep.register_device("m");
            dep.register_client("rc", "pw", &["A"]);
        }
        assert_eq!(a.replica_key(), b.replica_key(), "seed-deterministic key");
        let mut meter = a.device("m");
        let pdu_one = meter.compose_deposit("A", b"one");
        let mws_a_direct = a.network().client("mws");
        assert!(matches!(
            mws_a_direct.call(&pdu_one).unwrap(),
            Pdu::DepositAck { .. }
        ));
        meter.deposit("A", b"two").unwrap();

        let mws_a = a.network().client("mws");
        let pull = Pdu::ReplicaPull {
            attribute: String::new(),
            after: 0,
            max: 0,
        };
        let Pdu::ReplicaRows { rows, done, mac } = mws_a.call(&pull).unwrap() else {
            panic!("expected replica rows");
        };
        assert_eq!(rows.len(), 2);
        assert!(done);
        let expect = Hmac::<Sha256>::mac(&a.replica_key(), &replica_rows_bytes(&rows, done));
        assert_eq!(mac, expect, "rows are MAC'd under the replica key");

        // Push into B: both rows fresh, then both dedup on a second push.
        let mws_b = b.network().client("mws");
        let mac = Hmac::<Sha256>::mac(&b.replica_key(), &replica_push_bytes(&rows));
        let push = Pdu::ReplicaPush {
            rows: rows.clone(),
            mac,
        };
        let Pdu::ReplicaPushAck { stored, deduped } = mws_b.call(&push).unwrap() else {
            panic!("expected push ack");
        };
        assert_eq!((stored, deduped), (2, 0));
        assert_eq!(b.mws().message_count(), 2);
        let Pdu::ReplicaPushAck { stored, deduped } = mws_b.call(&push).unwrap() else {
            panic!("expected push ack");
        };
        assert_eq!((stored, deduped), (0, 2), "push is idempotent");

        // The replicated rows decrypt end-to-end on the receiving node.
        let mut rc = b.client("rc", "pw");
        let msgs = rc.retrieve_and_decrypt(0).unwrap();
        let mut plain: Vec<&[u8]> = msgs.iter().map(|m| m.plaintext.as_slice()).collect();
        plain.sort_unstable();
        assert_eq!(plain, vec![b"one".as_slice(), b"two"]);

        // A tampered MAC is rejected before anything is stored.
        let bad = Pdu::ReplicaPush {
            rows: rows.clone(),
            mac: vec![0; 32],
        };
        assert!(matches!(
            mws_b.call(&bad).unwrap(),
            Pdu::Error { code: 401, .. }
        ));

        // The device retransmitting its original deposit to B (same nonce
        // the replica push already carried) still converges: the push
        // never touched B's replay guard, so the deposit verifies fresh
        // and answers from the origin-dedup index — one row, one ack.
        assert!(matches!(
            mws_b.call(&pdu_one).unwrap(),
            Pdu::DepositAck { .. }
        ));
        assert_eq!(b.mws().message_count(), 2, "retransmission deduped");
    }

    #[test]
    fn replica_pull_pages_with_cursor() {
        let mut dep = deployment();
        dep.register_device("m");
        dep.register_client("rc", "pw", &["A"]);
        let mut meter = dep.device("m");
        for i in 0..5u8 {
            meter.deposit("A", &[i]).unwrap();
        }
        let mws = dep.network().client("mws");
        let mut after = 0;
        let mut seen = Vec::new();
        loop {
            let Pdu::ReplicaRows { rows, done, .. } = mws
                .call(&Pdu::ReplicaPull {
                    attribute: "A".into(),
                    after,
                    max: 2,
                })
                .unwrap()
            else {
                panic!("expected replica rows");
            };
            assert!(rows.len() <= 2, "page size respected");
            if let Some(last) = rows.last() {
                after = last.seq + 1;
            }
            seen.extend(rows);
            if done {
                break;
            }
        }
        assert_eq!(seen.len(), 5);
        assert!(seen.windows(2).all(|w| w[0].seq < w[1].seq), "id order");
    }
}
