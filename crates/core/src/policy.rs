//! Attribute patterns — the paper's §VIII "enhanced policies" (XACML-style)
//! future work, scoped to what the MWS needs.
//!
//! Attribute strings are dash-separated segments
//! (`ELECTRIC-APT.COMPLEX.NAME-SV-CA`, §V.B). A pattern grants a whole
//! family of attributes: `*` matches exactly one segment, a trailing `**`
//! matches any remainder. The MMS expands pattern grants against the
//! attributes actually present in the warehouse at retrieval time, so an RC
//! with `ELECTRIC-**` automatically gains access to meters that register
//! after the grant (requirement v: dynamic recipients).

/// One pattern segment.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Seg {
    Literal(String),
    Wild,
    WildRest,
}

/// A parsed attribute pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttrPattern {
    segments: Vec<Seg>,
    source: String,
}

/// Pattern parse errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternError {
    /// Empty pattern or empty segment.
    Empty,
    /// `**` somewhere other than the final segment.
    MisplacedWildRest,
}

impl core::fmt::Display for PatternError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PatternError::Empty => write!(f, "empty pattern or segment"),
            PatternError::MisplacedWildRest => write!(f, "'**' must be the final segment"),
        }
    }
}

impl std::error::Error for PatternError {}

impl AttrPattern {
    /// Parses a pattern like `ELECTRIC-*-SV-CA` or `WATER-**`.
    pub fn parse(pattern: &str) -> Result<Self, PatternError> {
        if pattern.is_empty() {
            return Err(PatternError::Empty);
        }
        let raw: Vec<&str> = pattern.split('-').collect();
        let mut segments = Vec::with_capacity(raw.len());
        for (i, s) in raw.iter().enumerate() {
            let seg = match *s {
                "" => return Err(PatternError::Empty),
                "*" => Seg::Wild,
                "**" => {
                    if i != raw.len() - 1 {
                        return Err(PatternError::MisplacedWildRest);
                    }
                    Seg::WildRest
                }
                lit => Seg::Literal(lit.to_string()),
            };
            segments.push(seg);
        }
        Ok(Self {
            segments,
            source: pattern.to_string(),
        })
    }

    /// The original pattern text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// True when the pattern contains no wildcards (it is a plain attribute).
    pub fn is_literal(&self) -> bool {
        self.segments.iter().all(|s| matches!(s, Seg::Literal(_)))
    }

    /// Does `attribute` match?
    pub fn matches(&self, attribute: &str) -> bool {
        let parts: Vec<&str> = attribute.split('-').collect();
        let mut pi = 0;
        for (ai, part) in parts.iter().enumerate() {
            match self.segments.get(pi) {
                None => return false, // attribute longer than pattern
                Some(Seg::WildRest) => return true,
                Some(Seg::Wild) => {
                    let _ = ai;
                    pi += 1;
                }
                Some(Seg::Literal(lit)) => {
                    if lit != part {
                        return false;
                    }
                    pi += 1;
                }
            }
        }
        // Attribute exhausted: pattern must be exhausted too, or end in `**`.
        pi == self.segments.len()
            || (pi == self.segments.len() - 1 && self.segments[pi] == Seg::WildRest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_patterns() {
        let p = AttrPattern::parse("ELECTRIC-APT9-SV-CA").unwrap();
        assert!(p.is_literal());
        assert!(p.matches("ELECTRIC-APT9-SV-CA"));
        assert!(!p.matches("ELECTRIC-APT9-SV"));
        assert!(!p.matches("ELECTRIC-APT9-SV-CA-EXTRA"));
        assert!(!p.matches("WATER-APT9-SV-CA"));
    }

    #[test]
    fn single_segment_wildcard() {
        let p = AttrPattern::parse("ELECTRIC-*-SV-CA").unwrap();
        assert!(!p.is_literal());
        assert!(p.matches("ELECTRIC-APT1-SV-CA"));
        assert!(p.matches("ELECTRIC-APT2-SV-CA"));
        assert!(!p.matches("ELECTRIC-APT1-X-SV-CA"), "* is one segment");
        assert!(!p.matches("ELECTRIC-SV-CA"));
    }

    #[test]
    fn trailing_wild_rest() {
        let p = AttrPattern::parse("WATER-**").unwrap();
        assert!(p.matches("WATER-APT1"));
        assert!(p.matches("WATER-APT1-SV-CA"));
        assert!(p.matches("WATER"), "** matches zero segments");
        assert!(!p.matches("GAS-APT1"));
    }

    #[test]
    fn parse_errors() {
        assert_eq!(AttrPattern::parse(""), Err(PatternError::Empty));
        assert_eq!(AttrPattern::parse("A--B"), Err(PatternError::Empty));
        assert_eq!(
            AttrPattern::parse("A-**-B"),
            Err(PatternError::MisplacedWildRest)
        );
    }

    #[test]
    fn mixed_wildcards() {
        let p = AttrPattern::parse("*-APT9-**").unwrap();
        assert!(p.matches("ELECTRIC-APT9"));
        assert!(p.matches("WATER-APT9-SV-CA"));
        assert!(!p.matches("APT9-X"));
    }
}
