//! Offline stub of the `rand` 0.8 API surface used by this workspace.

use std::fmt;

/// Stub of `rand::Error`.
pub struct Error(Box<dyn std::error::Error + Send + Sync>);

impl Error {
    pub fn new<E: Into<Box<dyn std::error::Error + Send + Sync>>>(err: E) -> Self {
        Error(err.into())
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rand::Error({:?})", self.0)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for Error {}

/// Stub of `rand::RngCore`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// Stub of `rand::CryptoRng`.
pub trait CryptoRng {}

impl<R: CryptoRng + ?Sized> CryptoRng for &mut R {}

/// Stub of `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(mut state: u64) -> Self {
        // SplitMix64 expansion, as the real implementation does.
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    use super::{Error, RngCore, SeedableRng};

    /// Stub of `rand::rngs::StdRng`: xoshiro256**-style deterministic PRNG.
    /// Not the real StdRng stream — deterministic per seed, which is all the
    /// workspace's tests require.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // Avoid the all-zero state.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }
}

/// Stub of `rand::random` (process-global, seeded from the system clock).
pub fn random<T: FromRandom>() -> T {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ (d.as_secs() << 20))
        .unwrap_or(0x5eed);
    let mut rng = <rngs::StdRng as SeedableRng>::seed_from_u64(nanos);
    T::from_random(&mut rng)
}

/// Helper trait backing the stub [`random`].
pub trait FromRandom {
    fn from_random<R: RngCore>(rng: &mut R) -> Self;
}

impl FromRandom for u64 {
    fn from_random<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRandom for u32 {
    fn from_random<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
