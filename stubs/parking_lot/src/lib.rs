//! Offline stub of the `parking_lot` 0.12 API surface used by this
//! workspace: poison-ignoring `Mutex`/`RwLock` over `std::sync`.

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Poison-ignoring wrapper over [`std::sync::Mutex`].
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

/// Poison-ignoring wrapper over [`std::sync::RwLock`].
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }
}
