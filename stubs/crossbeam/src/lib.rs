//! Offline stub of the `crossbeam` 0.8 API surface used by this workspace:
//! MPMC channels (`channel::{bounded, unbounded}`) built on
//! `std::sync::{Mutex, Condvar}`.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        /// Signalled when an item arrives or the side counts change.
        on_recv: Condvar,
        /// Signalled when capacity frees up (bounded channels).
        on_send: Condvar,
        cap: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned when sending into a channel with no receivers.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned when the channel is empty and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Non-blocking receive failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Timed receive failure.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// Sending half (cloneable).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half (cloneable — MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// A bounded MPMC channel; `send` blocks while full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            on_recv: Condvar::new(),
            on_send: Condvar::new(),
            cap,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Wake receivers blocked on an empty queue so they observe
                // the disconnect.
                let _guard = self.shared.queue.lock().unwrap();
                self.shared.on_recv.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                let _guard = self.shared.queue.lock().unwrap();
                self.shared.on_send.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.shared.queue.lock().unwrap();
            loop {
                if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                match self.shared.cap {
                    Some(cap) if queue.len() >= cap => {
                        queue = self.shared.on_send.wait(queue).unwrap();
                    }
                    _ => break,
                }
            }
            queue.push_back(value);
            drop(queue);
            self.shared.on_recv.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap();
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    self.shared.on_send.notify_one();
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self.shared.on_recv.wait(queue).unwrap();
            }
        }

        /// Messages currently queued (racy by nature, like the real API).
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap().len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap();
            if let Some(value) = queue.pop_front() {
                drop(queue);
                self.shared.on_send.notify_one();
                return Ok(value);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.queue.lock().unwrap();
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    self.shared.on_send.notify_one();
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (q, _timed_out) = self
                    .shared
                    .on_recv
                    .wait_timeout(queue, deadline - now)
                    .unwrap();
                queue = q;
            }
        }
    }
}
