//! Offline stub of the `bytes` 1.x API surface used by this workspace.

/// Read cursor over a byte container.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dest: &mut [u8]) {
        assert!(self.remaining() >= dest.len(), "buffer underflow");
        let n = dest.len();
        dest.copy_from_slice(&self.chunk()[..n]);
        self.advance(n);
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

/// Write cursor over a growable byte container.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// Immutable byte buffer with a read cursor.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
            pos: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end");
        self.pos += cnt;
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}
