//! Empty offline resolution stub — see stubs/README.md.
