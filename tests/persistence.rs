//! Integration: durable storage — the warehouse survives a full restart
//! (the paper's prototype lost everything not in its flat files; here the
//! WAL-backed tables reload and the deterministic provisioning lets the
//! same deployment be reconstructed bit-for-bit).

use mws::core::{Deployment, DeploymentConfig};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mws-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(dir: &std::path::Path) -> DeploymentConfig {
    DeploymentConfig {
        storage_dir: Some(dir.to_path_buf()),
        ..DeploymentConfig::test_default()
    }
}

/// Replays the identical provisioning sequence; with the same seed, all key
/// material is identical, so the rebuilt deployment can serve the old state.
fn provision(dep: &mut Deployment) {
    dep.register_device("meter-1");
    dep.register_client("rc", "pw", &["ELECTRIC-APT"]);
}

#[test]
fn messages_survive_restart() {
    let dir = temp_dir("msgs");

    // First life: deposit two messages.
    {
        let mut dep = Deployment::new(config(&dir));
        provision(&mut dep);
        let mut meter = dep.device("meter-1");
        meter.deposit("ELECTRIC-APT", b"before restart 1").unwrap();
        meter.deposit("ELECTRIC-APT", b"before restart 2").unwrap();
        assert_eq!(dep.mws().message_count(), 2);
    }

    // Second life: same seed, same directory.
    {
        let mut dep = Deployment::new(config(&dir));
        assert_eq!(dep.mws().message_count(), 2, "messages reloaded from WAL");
        // Provisioning repeats the identical rng draws, so the device and
        // client key material matches the first life exactly.
        provision(&mut dep);
        let mut rc = dep.client("rc", "pw");
        let msgs = rc.retrieve_and_decrypt(0).unwrap();
        assert_eq!(msgs.len(), 2);
        assert_eq!(msgs[0].plaintext, b"before restart 1");
        assert_eq!(msgs[1].plaintext, b"before restart 2");
    }

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn policy_and_users_survive_restart() {
    let dir = temp_dir("policy");
    {
        let mut dep = Deployment::new(config(&dir));
        provision(&mut dep);
        dep.mws().grant("rc", "EXTRA-ATTR").unwrap();
        assert_eq!(dep.mws().policy_table().len(), 2);
    }
    {
        let dep = Deployment::new(config(&dir));
        let table = dep.mws().policy_table();
        assert_eq!(table.len(), 2, "grants reloaded");
        assert!(table.iter().any(|r| r.attribute == "EXTRA-ATTR"));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn revocations_survive_restart() {
    let dir = temp_dir("revoke");
    {
        let mut dep = Deployment::new(config(&dir));
        provision(&mut dep);
        dep.mws().revoke("rc", "ELECTRIC-APT").unwrap();
    }
    {
        let dep = Deployment::new(config(&dir));
        assert!(dep.mws().policy_table().is_empty(), "revocation is durable");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
