//! Integration: requirement iii (access-rights revocation), including the
//! scenario narrated in §III — C-Services discontinues service for the
//! apartment complex.

use mws::core::{Deployment, DeploymentConfig};

#[test]
fn c_services_discontinues_service() {
    let mut dep = Deployment::new(DeploymentConfig::test_default());
    let attrs = ["ELECTRIC-APTX", "WATER-APTX", "GAS-APTX"];
    dep.register_device("e-meter");
    dep.register_device("w-meter");
    dep.register_device("g-meter");
    dep.register_client("C-Services", "pw", &attrs);

    let mut e = dep.device("e-meter");
    let mut w = dep.device("w-meter");
    let mut g = dep.device("g-meter");
    e.deposit("ELECTRIC-APTX", b"e1").unwrap();
    w.deposit("WATER-APTX", b"w1").unwrap();
    g.deposit("GAS-APTX", b"g1").unwrap();

    let mut rc = dep.client("C-Services", "pw");
    assert_eq!(rc.retrieve_and_decrypt(0).unwrap().len(), 3);

    // Contract ends: sweep every grant at once.
    assert_eq!(dep.mws().revoke_identity("C-Services").unwrap(), 3);

    // Devices keep depositing, oblivious.
    e.deposit("ELECTRIC-APTX", b"e2").unwrap();
    w.deposit("WATER-APTX", b"w2").unwrap();

    assert_eq!(rc.retrieve_and_decrypt(0).unwrap().len(), 0);
    assert!(dep.mws().policy_table().is_empty());
}

#[test]
fn revoked_rc_cannot_reuse_old_keys_for_new_messages() {
    // The nonce mechanism: a private key sI is bound to (A, nonce) of one
    // message. Holding old keys gives no access to new deposits.
    let mut dep = Deployment::new(DeploymentConfig::test_default());
    dep.register_device("sd");
    dep.register_client("rc", "pw", &["A"]);
    let mut sd = dep.device("sd");
    sd.deposit("A", b"old message").unwrap();

    // RC legitimately fetches the key for message 0 and keeps it.
    let mut rc = dep.client("rc", "pw");
    let (token, messages) = rc.retrieve(0).unwrap();
    let session = rc.open_pkg_session(&token).unwrap();
    let old_key = rc
        .fetch_key(&session, messages[0].aid, &messages[0].nonce)
        .unwrap();
    assert_eq!(
        rc.decrypt_message(&messages[0], &old_key).unwrap(),
        b"old message"
    );

    // Revocation, then a new deposit.
    dep.mws().revoke("rc", "A").unwrap();
    sd.deposit("A", b"new message").unwrap();

    // The RC can't even list the new message…
    assert!(rc.retrieve_and_decrypt(0).unwrap().is_empty());

    // …and even if the warehouse leaked the new ciphertext wholesale, the
    // hoarded key (bound to the old nonce) cannot decrypt it. Simulate the
    // leak by re-granting a *different* RC and stealing its wire view.
    dep.register_client("other", "pw2", &["A"]);
    let mut other = dep.client("other", "pw2");
    let (_, leaked) = other.retrieve(0).unwrap();
    let new_msg = leaked
        .iter()
        .find(|m| m.nonce != messages[0].nonce)
        .unwrap();
    assert!(rc.decrypt_message(new_msg, &old_key).is_err());
}

#[test]
fn regrant_restores_access_to_everything() {
    let mut dep = Deployment::new(DeploymentConfig::test_default());
    dep.register_device("sd");
    dep.register_client("rc", "pw", &["A"]);
    let mut sd = dep.device("sd");
    sd.deposit("A", b"one").unwrap();
    dep.mws().revoke("rc", "A").unwrap();
    sd.deposit("A", b"two").unwrap();
    let mut rc = dep.client("rc", "pw");
    assert!(rc.retrieve_and_decrypt(0).unwrap().is_empty());
    // Policy change back: both messages become readable (the paper scopes
    // revocation to *access*, not to cryptographic erasure of history).
    dep.mws().grant("rc", "A").unwrap();
    let got = rc.retrieve_and_decrypt(0).unwrap();
    assert_eq!(got.len(), 2);
}

#[test]
fn revocation_of_one_attribute_preserves_others() {
    let mut dep = Deployment::new(DeploymentConfig::test_default());
    dep.register_device("sd");
    dep.register_client("rc", "pw", &["KEEP", "DROP"]);
    let mut sd = dep.device("sd");
    sd.deposit("KEEP", b"keep-1").unwrap();
    sd.deposit("DROP", b"drop-1").unwrap();
    dep.mws().revoke("rc", "DROP").unwrap();
    let mut rc = dep.client("rc", "pw");
    let got = rc.retrieve_and_decrypt(0).unwrap();
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].plaintext, b"keep-1");
}
