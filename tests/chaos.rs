//! Seed-deterministic chaos suite: the deposit → ticket → key-issue →
//! retrieve flow under injected faults at every layer.
//!
//! Faults are drawn from seeded DRBGs only — the same seed replays the
//! same schedule bit-for-bit, so any failure here reproduces exactly by
//! re-running with `MWS_CHAOS_SEED=<printed seed>`. Every assertion
//! message carries the seed.
//!
//! Invariants exercised across all scenarios:
//!
//! 1. **No acknowledged deposit is ever lost** — an ack implies the
//!    message is durably warehoused, through drops, resets, duplicate
//!    delivery, torn WAL appends, failed fsyncs and daemon restarts.
//! 2. **No message is delivered twice to one RC** — retransmissions and
//!    duplicate frames never create duplicate warehouse rows.
//! 3. **Convergence** — once faults stop, a clean retrieval returns the
//!    exact acked set, and a second retrieval agrees with the first.
//! 4. **Confidentiality under faults** — the warehouse never holds
//!    plaintext, corrupted paths included.

use mws_core::protocol::{Deployment, DeploymentConfig, MwsService};
use mws_net::{BusTransport, Client, FaultConfig, FaultyTransport, NetError};
use mws_server::{
    ChaosConfig, ChaosProxy, ClientConfig, IbsAuth, SecureClientSettings, SecureSettings,
    ServerConfig, ServerCore, TcpClient, TcpServer, ID_CLIENT, ID_MMS,
};
use mws_store::FaultPlan;
use mws_wire::secure::SessionConfig;
use mws_wire::Pdu;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// The pinned seed schedule, or the single seed from `MWS_CHAOS_SEED`
/// (how `scripts/chaos.sh` reproduces a failure).
fn seeds() -> Vec<u64> {
    // Honor MWS_LOG during reproduction runs: a pinned seed plus
    // `MWS_LOG=debug` prints every structured event (with trace ids) to
    // stderr alongside the failure.
    mws_obs::init_from_env();
    match std::env::var("MWS_CHAOS_SEED") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .expect("MWS_CHAOS_SEED must be an unsigned integer")],
        Err(_) => vec![3, 17, 91],
    }
}

/// Dumps the process-wide metrics registry when a scenario panics (so the
/// snapshot rides along with the failure output), and at the end of any
/// run pinned with `MWS_CHAOS_SEED` (the reproduction workflow): request
/// counts, retry/breaker counters and latency quantiles for the run.
struct StatsDumpGuard {
    scenario: &'static str,
    seed: u64,
}

impl Drop for StatsDumpGuard {
    fn drop(&mut self) {
        if std::thread::panicking() || std::env::var_os("MWS_CHAOS_SEED").is_some() {
            eprintln!(
                "---- metrics snapshot ({} seed {}) ----\n{}---- end snapshot ----",
                self.scenario,
                self.seed,
                mws_obs::registry().exposition()
            );
        }
    }
}

fn chaos_dir(tag: &str, seed: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mws-chaos-{tag}-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create chaos dir");
    dir
}

/// A TCP client tuned for chaos runs: fast retries, no breaker (the fault
/// schedules intentionally produce long failure bursts).
fn chaos_tcp_client(addr: SocketAddr, seed: u64) -> TcpClient {
    TcpClient::with_config(
        addr,
        ClientConfig {
            request_timeout: Duration::from_millis(500),
            attempts: 3,
            backoff: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(20),
            breaker_threshold: 0,
            seed,
            ..ClientConfig::default()
        },
    )
}

/// Final-state checks shared by every scenario: the clean retrieval must
/// hold exactly the acked payloads, each message exactly once, and a
/// repeat retrieval must agree (convergence).
fn assert_converged(dep: &mut Deployment, rc_id: &str, pw: &str, acked: &[Vec<u8>], seed: u64) {
    let mut rc = dep.client(rc_id, pw);
    let msgs = rc
        .retrieve_and_decrypt(0)
        .unwrap_or_else(|e| panic!("seed {seed}: clean retrieval failed: {e}"));
    let mut ids: Vec<u64> = msgs.iter().map(|m| m.message_id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(
        ids.len(),
        msgs.len(),
        "seed {seed}: a message was delivered twice to one RC"
    );
    let mut got: Vec<Vec<u8>> = msgs.iter().map(|m| m.plaintext.clone()).collect();
    let mut want: Vec<Vec<u8>> = acked.to_vec();
    got.sort();
    want.sort();
    assert_eq!(
        got, want,
        "seed {seed}: retrieved plaintexts != acknowledged deposits"
    );
    // Once faults stop the system is stable: a second retrieval agrees.
    let again = rc
        .retrieve_and_decrypt(0)
        .unwrap_or_else(|e| panic!("seed {seed}: repeat retrieval failed: {e}"));
    assert_eq!(
        again.len(),
        msgs.len(),
        "seed {seed}: final state not stable across retrievals"
    );
}

/// The warehouse's stored bytes must never contain a deposit's plaintext,
/// even after the message crossed a faulty path.
fn assert_ciphertext_only(dep: &mut Deployment, rc_id: &str, pw: &str, secret: &[u8], seed: u64) {
    let mut rc = dep.client(rc_id, pw);
    let (_, wire_msgs) = rc
        .retrieve(0)
        .unwrap_or_else(|e| panic!("seed {seed}: wire retrieval failed: {e}"));
    for m in &wire_msgs {
        assert!(
            !m.sealed.windows(secret.len()).any(|w| w == secret),
            "seed {seed}: warehoused bytes contain plaintext"
        );
    }
}

// ---------------------------------------------------------------------------
// Scenario A: lossy bus — drops, duplicate delivery, mid-exchange resets.
// ---------------------------------------------------------------------------

#[test]
fn bus_faults_lose_no_acked_deposit() {
    for seed in seeds() {
        let _dump = StatsDumpGuard {
            scenario: "bus-faults",
            seed,
        };
        let mut dep = Deployment::new(DeploymentConfig {
            seed,
            ..DeploymentConfig::test_default()
        });
        dep.register_device("meter-1");
        dep.register_client("rc", "pw", &["A"]);
        // The device's path to the warehouse is lossy in every way the
        // fault model knows; the PKG path stays clean (bootstrap).
        let faulty = Arc::new(FaultyTransport::new(
            BusTransport::new(dep.network().clone(), "mws").into_dyn(),
            FaultConfig {
                drop_rate: 0.2,
                duplicate_rate: 0.15,
                reset_rate: 0.15,
                seed,
                ..FaultConfig::default()
            },
        ));
        let pkg = dep.network().client("pkg");
        let mut meter = dep
            .device_with("meter-1", Client::from_transport(faulty.clone()), &pkg)
            .unwrap_or_else(|e| panic!("seed {seed}: bootstrap failed: {e}"));
        let wire_before = faulty.metrics();
        let mut acked = Vec::new();
        for i in 0..12 {
            let payload = format!("reading-{i}").into_bytes();
            let id = meter
                .deposit_reliable("A", &payload, 64)
                .unwrap_or_else(|e| panic!("seed {seed}: deposit {i} never acked: {e}"));
            // `None` means a 409: the warehouse holds it, the ack was lost.
            let _ = id;
            acked.push(payload);
        }
        // What the lossy link did during the deposit phase alone, as a
        // snapshot delta rather than hand-subtracted counters.
        let wire = faulty.metrics().delta(&wire_before);
        assert!(
            wire.requests >= acked.len() as u64,
            "seed {seed}: every ack rode at least one delivered request"
        );
        assert!(
            wire.dropped + wire.duplicates + wire.resets > 0,
            "seed {seed}: the schedule at these rates must inject faults"
        );
        assert_eq!(
            dep.mws().message_count(),
            acked.len(),
            "seed {seed}: duplicate frames must not create duplicate rows"
        );
        assert_converged(&mut dep, "rc", "pw", &acked, seed);
        assert_ciphertext_only(&mut dep, "rc", "pw", b"reading-0", seed);
    }
}

// ---------------------------------------------------------------------------
// Scenario B: real sockets through the chaos proxy — stalls, truncation,
// resets between a TcpClient and a live daemon. Runs against BOTH server
// cores explicitly: the epoll event loop must survive mid-frame
// truncation and stalled writes exactly like the threaded core.
// ---------------------------------------------------------------------------

/// Both cores on Linux, threaded only elsewhere (where `EventLoop`
/// would silently alias it).
fn chaos_cores() -> &'static [ServerCore] {
    if cfg!(target_os = "linux") {
        &[ServerCore::EventLoop, ServerCore::Threaded]
    } else {
        &[ServerCore::Threaded]
    }
}

#[test]
fn tcp_chaos_proxy_loses_no_acked_deposit() {
    for core in chaos_cores() {
        for seed in seeds() {
            tcp_chaos_proxy_scenario(*core, seed);
        }
    }
}

fn tcp_chaos_proxy_scenario(core: ServerCore, seed: u64) {
    {
        let _dump = StatsDumpGuard {
            scenario: "tcp-chaos-proxy",
            seed,
        };
        let mut dep = Deployment::new(DeploymentConfig {
            seed,
            ..DeploymentConfig::test_default()
        });
        dep.register_device("meter-1");
        dep.register_client("rc", "pw", &["A"]);
        let mms = {
            let service = dep.mws().clone();
            TcpServer::spawn(
                ServerConfig {
                    core,
                    ..ServerConfig::default()
                },
                || service.as_service(),
            )
            .expect("bind mms")
        };
        let mut proxy = ChaosProxy::spawn(
            mms.local_addr(),
            ChaosConfig {
                stall_rate: 0.1,
                truncate_rate: 0.1,
                reset_rate: 0.1,
                stall: Duration::from_millis(20),
                seed,
            },
        )
        .expect("spawn chaos proxy");
        let pkg = dep.network().client("pkg");
        let mut meter = dep
            .device_with(
                "meter-1",
                chaos_tcp_client(proxy.local_addr(), seed).into_client(),
                &pkg,
            )
            .unwrap_or_else(|e| panic!("seed {seed}: bootstrap failed: {e}"));
        let mut acked = Vec::new();
        for i in 0..10 {
            let payload = format!("tcp-reading-{i}").into_bytes();
            meter
                .deposit_reliable("A", &payload, 64)
                .unwrap_or_else(|e| panic!("seed {seed}: deposit {i} never acked: {e}"));
            acked.push(payload);
        }
        assert_eq!(
            dep.mws().message_count(),
            acked.len(),
            "seed {seed}: retransmissions must not create duplicate rows"
        );
        assert_converged(&mut dep, "rc", "pw", &acked, seed);
        proxy.shutdown();
        drop(mms);
    }
}

// ---------------------------------------------------------------------------
// Scenario S: secure sessions through the chaos proxy — the IBS-authenticated
// handshake and the AES-GCM record stream (DESIGN.md §12) under truncation,
// resets and stalls, on BOTH cores. Faults land anywhere, including inside
// the three-message handshake itself (a truncated HELLO/ACCEPT/FINISH must
// surface as a clean transport error the client retries through, never a
// hang or a half-established session), and a tiny rekey interval forces
// mid-session key ratchets between the faults.
// ---------------------------------------------------------------------------

#[test]
fn secure_session_chaos_loses_no_acked_deposit() {
    for core in chaos_cores() {
        for seed in seeds() {
            secure_chaos_scenario(*core, seed);
        }
    }
}

fn secure_chaos_scenario(core: ServerCore, seed: u64) {
    let _dump = StatsDumpGuard {
        scenario: "secure-chaos",
        seed,
    };
    let mut dep = Deployment::new(DeploymentConfig {
        seed,
        ..DeploymentConfig::test_default()
    });
    dep.register_device("meter-1");
    dep.register_client("rc", "pw", &["A"]);
    // rekey_every=4 makes every multi-deposit session ratchet its keys
    // several times mid-run; both sides must stay in lockstep across
    // retransmissions and reconnects.
    let session = SessionConfig { rekey_every: 4 };
    let service = dep.mws().clone();
    let mms = TcpServer::spawn(
        ServerConfig {
            core,
            secure: Some(Arc::new(SecureSettings {
                auth: Arc::new(IbsAuth::from_deployment(&dep, ID_MMS)),
                session: session.clone(),
                handshake_timeout: Duration::from_secs(2),
            })),
            ..ServerConfig::default()
        },
        || service.as_service(),
    )
    .expect("bind mms");
    let mut proxy = ChaosProxy::spawn(
        mms.local_addr(),
        ChaosConfig {
            stall_rate: 0.1,
            truncate_rate: 0.1,
            reset_rate: 0.1,
            stall: Duration::from_millis(20),
            seed,
        },
    )
    .expect("spawn chaos proxy");
    let device_link = TcpClient::with_config(
        proxy.local_addr(),
        ClientConfig {
            request_timeout: Duration::from_millis(500),
            attempts: 3,
            backoff: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(20),
            breaker_threshold: 0,
            seed,
            secure: Some(Arc::new(SecureClientSettings {
                auth: Arc::new(IbsAuth::from_deployment(&dep, ID_CLIENT)),
                expect_peer: Some(ID_MMS.into()),
                session,
            })),
            ..ClientConfig::default()
        },
    )
    .into_client();
    let pkg = dep.network().client("pkg");
    let mut meter = dep
        .device_with("meter-1", device_link, &pkg)
        .unwrap_or_else(|e| panic!("seed {seed}: secure bootstrap failed: {e}"));
    let mut acked = Vec::new();
    for i in 0..10 {
        let payload = format!("secure-reading-{i}").into_bytes();
        meter
            .deposit_reliable("A", &payload, 64)
            .unwrap_or_else(|e| panic!("seed {seed}: secure deposit {i} never acked: {e}"));
        acked.push(payload);
    }
    assert_eq!(
        dep.mws().message_count(),
        acked.len(),
        "seed {seed}: retransmissions over secure sessions must not duplicate rows"
    );
    assert_converged(&mut dep, "rc", "pw", &acked, seed);
    assert_ciphertext_only(&mut dep, "rc", "pw", b"secure-reading-0", seed);
    proxy.shutdown();
    drop(mms);
}

// ---------------------------------------------------------------------------
// Scenario C: storage faults — failed appends, torn WAL appends and fsync
// errors under a durable deployment, with recovery on reopen.
// ---------------------------------------------------------------------------

#[test]
fn store_faults_fail_closed_and_recover_on_reopen() {
    for seed in seeds() {
        let _dump = StatsDumpGuard {
            scenario: "store-faults",
            seed,
        };
        let dir = chaos_dir("store", seed);
        let plan = FaultPlan::default();
        let config = DeploymentConfig {
            seed,
            storage_dir: Some(dir.clone()),
            message_store_faults: Some(plan.clone()),
            ..DeploymentConfig::test_default()
        };
        let mut acked = Vec::new();
        {
            let mut dep = Deployment::new(config.clone());
            dep.register_device("meter-1");
            dep.register_client("rc", "pw", &["A"]);
            let mut meter = dep.device("meter-1");
            // Schedule one of each storage fault across the next deposits:
            // a clean failure, a torn (partially written) append, and a
            // failed fsync. Every one must surface as a 500 the device
            // retries through — never as a lost ack.
            let base = plan.appends();
            plan.fail_append(base);
            plan.tear_append(base + 2);
            let sync_base = plan.syncs();
            plan.fail_sync(sync_base + 3);
            for i in 0..6 {
                let payload = format!("durable-{i}").into_bytes();
                meter
                    .deposit_reliable("A", &payload, 16)
                    .unwrap_or_else(|e| panic!("seed {seed}: deposit {i} never acked: {e}"));
                acked.push(payload);
            }
            assert_eq!(
                dep.mws().message_count(),
                acked.len(),
                "seed {seed}: retries through 500s must not duplicate rows"
            );
            assert_converged(&mut dep, "rc", "pw", &acked, seed);
        }
        // Crash-restart: reopen the same WALs with the same provisioning
        // sequence. Torn appends must have been discarded, acked rows kept.
        let mut dep = Deployment::new(DeploymentConfig {
            message_store_faults: None,
            ..config
        });
        dep.register_device("meter-1");
        dep.register_client("rc", "pw", &["A"]);
        assert_eq!(
            dep.mws().message_count(),
            acked.len(),
            "seed {seed}: reopen lost acked deposits (or resurrected torn ones)"
        );
        assert_converged(&mut dep, "rc", "pw", &acked, seed);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------------
// Scenario D: the combined schedule — daemon kill/restart mid-flow, with
// transport drops AND a torn WAL append in the same run.
// ---------------------------------------------------------------------------

/// Minimal supervisor: owns the MMS daemon's port, kills it mid-flow and
/// restarts a fresh daemon (new process state, same address) on demand.
struct Supervisor {
    addr: SocketAddr,
    server: Option<TcpServer>,
}

impl Supervisor {
    fn start(service: MwsService) -> Self {
        let server =
            TcpServer::spawn(ServerConfig::default(), || service.as_service()).expect("bind mms");
        Self {
            addr: server.local_addr(),
            server: Some(server),
        }
    }

    /// SIGKILL equivalent: tears the daemon down, connections and all.
    fn kill(&mut self) {
        if let Some(mut s) = self.server.take() {
            s.shutdown();
        }
    }

    /// Brings a restarted daemon up on the same address (retrying while
    /// the OS releases the port).
    fn restart(&mut self, service: MwsService) {
        assert!(self.server.is_none(), "kill before restart");
        for _ in 0..100 {
            let svc = service.clone();
            match TcpServer::spawn(ServerConfig::listen(&self.addr.to_string()), || {
                svc.as_service()
            }) {
                Ok(s) => {
                    self.server = Some(s);
                    return;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        panic!("port {} never came back", self.addr);
    }
}

#[test]
fn daemon_restart_with_drops_and_torn_append_converges() {
    for seed in seeds() {
        let _dump = StatsDumpGuard {
            scenario: "daemon-restart",
            seed,
        };
        let dir = chaos_dir("restart", seed);
        let plan = FaultPlan::default();
        let config = DeploymentConfig {
            seed,
            storage_dir: Some(dir.clone()),
            message_store_faults: Some(plan.clone()),
            ..DeploymentConfig::test_default()
        };
        let drops = FaultConfig {
            drop_rate: 0.25,
            seed,
            ..FaultConfig::default()
        };
        let mut acked: Vec<Vec<u8>> = Vec::new();
        let (saved_frame, saved_id, pre_kill_composes);
        let mut supervisor;
        {
            let mut dep = Deployment::new(config.clone());
            dep.register_device("meter-1");
            dep.register_client("rc", "pw", &["A"]);
            supervisor = Supervisor::start(dep.mws().clone());
            // Transport: real TCP to the daemon, wrapped in seeded drops.
            let lossy = FaultyTransport::new(
                Arc::new(chaos_tcp_client(supervisor.addr, seed)),
                drops.clone(),
            );
            let pkg = dep.network().client("pkg");
            let mut meter = dep
                .device_with("meter-1", Client::from_transport(lossy.into_dyn()), &pkg)
                .unwrap_or_else(|e| panic!("seed {seed}: bootstrap failed: {e}"));
            // One torn WAL append lands mid-schedule.
            plan.tear_append(plan.appends() + 1);
            for i in 0..4 {
                let payload = format!("pre-kill-{i}").into_bytes();
                meter
                    .deposit_reliable("A", &payload, 64)
                    .unwrap_or_else(|e| panic!("seed {seed}: deposit {i} never acked: {e}"));
                acked.push(payload);
            }
            // One deposit whose exact frame we keep: after the restart the
            // device may retransmit it (it never saw the ack, say).
            let pdu = meter.compose_deposit("A", b"pre-kill-held");
            let clean = chaos_tcp_client(supervisor.addr, seed).into_client();
            let id = match clean
                .call_with_retry(&pdu, 16)
                .unwrap_or_else(|e| panic!("seed {seed}: held deposit failed: {e}"))
            {
                Pdu::DepositAck { message_id } => message_id,
                other => panic!("seed {seed}: expected ack, got {other:?}"),
            };
            acked.push(b"pre-kill-held".to_vec());
            saved_frame = pdu;
            saved_id = id;
            pre_kill_composes = 5; // 4 reliable deposits + 1 held frame
                                   // Kill the daemon mid-flow and drop the whole first process
                                   // state (replay guard, caches — everything in memory).
            supervisor.kill();
        }
        // ---- restart: same seed, same storage, fresh process ----
        let mut dep = Deployment::new(DeploymentConfig {
            message_store_faults: None,
            ..config
        });
        dep.register_device("meter-1");
        dep.register_client("rc", "pw", &["A"]);
        assert_eq!(
            dep.mws().message_count(),
            acked.len(),
            "seed {seed}: restart lost acked deposits"
        );
        supervisor.restart(dep.mws().clone());
        // The device retransmits the held frame. The restarted warehouse
        // has no replay cache, but the origin index (rebuilt from the WAL)
        // answers with the ORIGINAL id instead of storing a second copy.
        let clean = chaos_tcp_client(supervisor.addr, seed).into_client();
        match clean
            .call_with_retry(&saved_frame, 16)
            .unwrap_or_else(|e| panic!("seed {seed}: post-restart resend failed: {e}"))
        {
            Pdu::DepositAck { message_id } => assert_eq!(
                message_id, saved_id,
                "seed {seed}: resend after restart must dedup to the original id"
            ),
            other => panic!("seed {seed}: expected idempotent ack, got {other:?}"),
        }
        // The same physical device carries on: fast-forward its nonce
        // stream past the deposits it already sent, then keep depositing
        // through the lossy link.
        let lossy = FaultyTransport::new(Arc::new(chaos_tcp_client(supervisor.addr, seed)), drops);
        let pkg = dep.network().client("pkg");
        let mut meter = dep
            .device_with("meter-1", Client::from_transport(lossy.into_dyn()), &pkg)
            .unwrap_or_else(|e| panic!("seed {seed}: post-restart bootstrap failed: {e}"));
        for _ in 0..pre_kill_composes {
            let _ = meter.compose_deposit("A", b"nonce-fast-forward");
        }
        for i in 0..3 {
            let payload = format!("post-restart-{i}").into_bytes();
            meter
                .deposit_reliable("A", &payload, 64)
                .unwrap_or_else(|e| panic!("seed {seed}: post-restart deposit {i}: {e}"));
            acked.push(payload);
        }
        assert_eq!(
            dep.mws().message_count(),
            acked.len(),
            "seed {seed}: duplicates after restart"
        );
        assert_converged(&mut dep, "rc", "pw", &acked, seed);
        assert_ciphertext_only(&mut dep, "rc", "pw", b"pre-kill-held", seed);
        supervisor.kill();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------------
// Scenario F: per-shard recovery isolation — a torn WAL append on shard 1
// while one DepositBatch carries items for shards 0 AND 1. The shard-0
// half of the batch must land durably, the shard-1 half must fail closed
// (no nonce recorded, honest retransmission accepted), and a restart must
// recover each shard independently.
// ---------------------------------------------------------------------------

#[test]
fn torn_batch_on_one_shard_leaves_the_other_shard_untouched() {
    use mws_store::ShardRouter;
    use mws_wire::DepositOutcome;

    /// Mines an attribute string the 2-way router sends to `shard`.
    fn attr_on_shard(router: &ShardRouter, shard: usize, tag: &str) -> String {
        (0u32..)
            .map(|salt| format!("{tag}-{salt}"))
            .find(|a| router.route(a) == shard)
            .expect("router covers both residues")
    }

    for seed in seeds() {
        let _dump = StatsDumpGuard {
            scenario: "torn-shard-batch",
            seed,
        };
        let dir = chaos_dir("shard-batch", seed);
        let plan = FaultPlan::default();
        let config = DeploymentConfig {
            seed,
            storage_dir: Some(dir.clone()),
            message_shards: 2,
            // The fault plan rides ONLY on shard 1's WAL; shard 0 is clean.
            message_shard_faults: vec![(1, plan.clone())],
            ..DeploymentConfig::test_default()
        };
        let router = ShardRouter::new(2);
        let attr0 = attr_on_shard(&router, 0, "CHAOS-S0");
        let attr1 = attr_on_shard(&router, 1, "CHAOS-S1");
        let mut acked: Vec<Vec<u8>> = Vec::new();
        {
            let mut dep = Deployment::new(config.clone());
            dep.register_device("meter-1");
            dep.register_client("rc", "pw", &[&attr0, &attr1]);
            let mut meter = dep.device("meter-1");

            // A clean cross-shard batch first: both shards take one group
            // commit, which also advances shard 1's append counter.
            let outcomes = meter
                .deposit_batch(&[(&attr0, b"clean-0".as_slice()), (&attr1, b"clean-1")])
                .unwrap_or_else(|e| panic!("seed {seed}: clean batch failed: {e}"));
            assert!(
                outcomes.iter().all(|o| o.status == DepositOutcome::STORED),
                "seed {seed}: clean batch must store on both shards"
            );
            acked.push(b"clean-0".to_vec());
            acked.push(b"clean-1".to_vec());

            // Tear shard 1's NEXT append mid-write, then send one batch
            // whose items split across both shards.
            plan.tear_append(plan.appends());
            let pdu = meter
                .compose_deposit_batch(&[(&attr0, b"split-0".as_slice()), (&attr1, b"split-1")]);
            let mws = dep.network().client("mws");
            let results = match mws.call(&pdu) {
                Ok(Pdu::DepositBatchAck { results }) => results,
                other => panic!("seed {seed}: batch not acked: {other:?}"),
            };
            assert_eq!(
                results[0].status,
                DepositOutcome::STORED,
                "seed {seed}: shard 0 item must commit despite shard 1's torn append"
            );
            assert_eq!(
                results[1].status,
                DepositOutcome::STORAGE_ERROR,
                "seed {seed}: shard 1 item must fail closed on the torn append"
            );
            acked.push(b"split-0".to_vec());

            // Honest retransmission of the identical frame: the stored
            // item answers REPLAY (nonce recorded after durability), the
            // failed item's nonce was never recorded, so it stores now.
            let results = match mws.call(&pdu) {
                Ok(Pdu::DepositBatchAck { results }) => results,
                other => panic!("seed {seed}: resend not acked: {other:?}"),
            };
            assert_eq!(
                results[0].status,
                DepositOutcome::REPLAY,
                "seed {seed}: resending a stored item must not store twice"
            );
            assert_eq!(
                results[1].status,
                DepositOutcome::STORED,
                "seed {seed}: the failed item's retransmission must be accepted"
            );
            acked.push(b"split-1".to_vec());

            assert_eq!(
                dep.mws().message_count(),
                acked.len(),
                "seed {seed}: exactly the acked items are warehoused"
            );
            assert_converged(&mut dep, "rc", "pw", &acked, seed);
        }
        // Crash-restart over the same shard WALs, faults off: shard 1's
        // torn frame must be discarded by ITS recovery alone, shard 0's
        // rows must be untouched, and the union must be the acked set.
        let mut dep = Deployment::new(DeploymentConfig {
            message_shard_faults: Vec::new(),
            ..config
        });
        dep.register_device("meter-1");
        dep.register_client("rc", "pw", &[&attr0, &attr1]);
        assert_eq!(
            dep.mws().message_count(),
            acked.len(),
            "seed {seed}: reopen lost acked rows (or resurrected the torn batch)"
        );
        let store = dep.mws().store_handle();
        assert_eq!(
            store.shard_len(0),
            2,
            "seed {seed}: shard 0 must recover exactly its two rows"
        );
        assert_eq!(
            store.shard_len(1),
            2,
            "seed {seed}: shard 1 must recover exactly its two rows"
        );
        assert_converged(&mut dep, "rc", "pw", &acked, seed);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------------
// Scenario E: health/readiness PDUs served by all three daemons, and the
// circuit breaker protecting a client from a dead one.
// ---------------------------------------------------------------------------

#[test]
fn all_three_daemons_answer_health_over_tcp() {
    let mut dep = Deployment::new(DeploymentConfig::test_default());
    dep.register_client("rc", "pw", &["A"]);
    let mms = {
        let service = dep.mws().clone();
        TcpServer::spawn(ServerConfig::default(), || service.as_service()).expect("bind mms")
    };
    let pkg = {
        let service = dep.pkg().clone();
        TcpServer::spawn(ServerConfig::default(), || service.as_service()).expect("bind pkg")
    };
    let gatekeeper = {
        let upstream = TcpClient::new(mms.local_addr()).into_client();
        let front = mws_server::GatekeeperFrontdoor::new(
            dep.clock().clone(),
            mws_core::clock::ReplayPolicy::standard(),
            upstream,
        );
        TcpServer::spawn(ServerConfig::default(), || front.as_service()).expect("bind gatekeeper")
    };
    for (server, role) in [(&mms, "mms"), (&pkg, "pkg"), (&gatekeeper, "gatekeeper")] {
        let client = TcpClient::new(server.local_addr()).into_client();
        match client.call(&Pdu::HealthRequest).unwrap() {
            Pdu::HealthResponse {
                role: got, ready, ..
            } => {
                assert_eq!(got, role);
                assert!(ready, "{role} must report ready");
            }
            other => panic!("{role}: unexpected health reply {other:?}"),
        }
    }
    drop((mms, pkg, gatekeeper));
}

#[test]
fn circuit_breaker_fails_fast_then_recovers_when_daemon_returns() {
    for seed in seeds() {
        let _dump = StatsDumpGuard {
            scenario: "circuit-breaker",
            seed,
        };
        // A daemon that exists, dies, and comes back; the client's breaker
        // must fail fast while it is down and heal afterwards.
        let dep = Deployment::new(DeploymentConfig {
            seed,
            ..DeploymentConfig::test_default()
        });
        let mut supervisor = Supervisor::start(dep.mws().clone());
        let client = TcpClient::with_config(
            supervisor.addr,
            ClientConfig {
                request_timeout: Duration::from_millis(200),
                attempts: 1,
                backoff: Duration::from_millis(2),
                breaker_threshold: 2,
                breaker_cooldown: Duration::from_millis(30),
                seed,
                ..ClientConfig::default()
            },
        )
        .into_client();
        assert!(client.call(&Pdu::HealthRequest).is_ok());
        supervisor.kill();
        // Consecutive failures trip the breaker...
        let mut saw_circuit_open = false;
        for _ in 0..20 {
            match client.call(&Pdu::HealthRequest) {
                Err(NetError::CircuitOpen) => {
                    saw_circuit_open = true;
                    break;
                }
                Err(_) => {}
                Ok(_) => panic!("seed {seed}: dead daemon answered"),
            }
        }
        assert!(saw_circuit_open, "seed {seed}: breaker never opened");
        // ...the daemon returns, and within a bounded number of half-open
        // probes the client is healthy again.
        supervisor.restart(dep.mws().clone());
        let recovered = (0..200).any(|_| {
            std::thread::sleep(Duration::from_millis(10));
            client.call(&Pdu::HealthRequest).is_ok()
        });
        assert!(recovered, "seed {seed}: breaker never closed again");
        supervisor.kill();
    }
}

// ---------------------------------------------------------------------------
// Scenario L: kill-mid-burst at high connection count — an event-loop
// warehouse holding a large idle fleet is torn down while a device is
// mid-burst through the chaos proxy. Every acknowledged deposit must be
// warehoused, shutdown must join every thread with hundreds of
// connections open, and every idle socket must observe the close.
// ---------------------------------------------------------------------------

#[test]
fn event_core_kill_mid_burst_with_idle_fleet_loses_no_acked_deposit() {
    use std::io::Read as _;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    const IDLE_FLEET: usize = 500;
    for seed in seeds() {
        let _dump = StatsDumpGuard {
            scenario: "event-kill-mid-burst",
            seed,
        };
        let mut dep = Deployment::new(DeploymentConfig {
            seed,
            ..DeploymentConfig::test_default()
        });
        dep.register_device("meter-1");
        dep.register_client("rc", "pw", &["A"]);
        let service = dep.mws().clone();
        let mut mms = TcpServer::spawn(
            ServerConfig {
                core: ServerCore::EventLoop,
                workers: 2,
                read_poll: Duration::from_millis(5),
                ..ServerConfig::default()
            },
            || service.as_service(),
        )
        .expect("bind mms");
        let addr = mms.local_addr();

        // The mostly-idle fleet: hundreds of devices connected and silent.
        let idle: Vec<std::net::TcpStream> = (0..IDLE_FLEET)
            .map(|_| std::net::TcpStream::connect(addr).expect("idle connect"))
            .collect();

        // One device bursts deposits through stalls and mid-frame
        // truncation while the fleet sits on the same event loop.
        let mut proxy = ChaosProxy::spawn(
            addr,
            ChaosConfig {
                stall_rate: 0.1,
                truncate_rate: 0.1,
                reset_rate: 0.05,
                stall: Duration::from_millis(10),
                seed,
            },
        )
        .expect("spawn chaos proxy");
        let pkg = dep.network().client("pkg");
        let mut meter = dep
            .device_with(
                "meter-1",
                chaos_tcp_client(proxy.local_addr(), seed).into_client(),
                &pkg,
            )
            .unwrap_or_else(|e| panic!("seed {seed}: bootstrap failed: {e}"));

        let acked = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let acked_final = std::thread::scope(|scope| {
            let burst_acked = acked.clone();
            let burst_stop = stop.clone();
            let burster = scope.spawn(move || {
                for i in 0u64.. {
                    if burst_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let payload = format!("burst-{i}").into_bytes();
                    match meter.deposit_reliable("A", &payload, 10) {
                        Ok(_) => {
                            burst_acked.fetch_add(1, Ordering::Relaxed);
                        }
                        // The kill landed under this deposit: no ack, so no
                        // durability claim to check for it. Stop bursting.
                        Err(_) => break,
                    }
                }
            });
            // Let the burst make progress, then kill the daemon mid-flight
            // with the whole fleet still connected. Shutdown itself is the
            // assertion that every loop/worker thread joins while hundreds
            // of connections are open and frames are in the pipe.
            let deadline = std::time::Instant::now() + Duration::from_secs(20);
            while acked.load(Ordering::Relaxed) < 5 && std::time::Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
            assert!(
                acked.load(Ordering::Relaxed) >= 5,
                "seed {seed}: burst never got going through the chaos proxy"
            );
            mms.shutdown();
            stop.store(true, Ordering::Relaxed);
            burster.join().expect("burster thread");
            acked.load(Ordering::Relaxed)
        });

        // No acked deposit may be lost in the kill. (The count can exceed
        // `acked_final` — a deposit stored whose ack died in the proxy is
        // warehoused but unacknowledged, which is the safe direction.)
        assert!(
            dep.mws().message_count() as u64 >= acked_final,
            "seed {seed}: kill lost acked deposits ({} warehoused < {acked_final} acked)",
            dep.mws().message_count()
        );

        // Teardown really closed the fleet: every idle socket sees EOF (or
        // a reset), never a hang.
        for mut s in idle {
            s.set_read_timeout(Some(Duration::from_secs(5)))
                .expect("idle read timeout");
            let mut buf = [0u8; 1];
            match s.read(&mut buf) {
                Ok(0) => {}
                Ok(_) => panic!("seed {seed}: idle connection received bytes at teardown"),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    panic!("seed {seed}: teardown left an idle connection open")
                }
                // A reset is a legitimate close observation (unread FIN
                // queue data, RST-on-close).
                Err(_) => {}
            }
        }
        proxy.shutdown();
    }
}
