//! Integration: the deployment option matrix — every combination of
//! device-auth mode, threshold PKG, replay policy and parameter level must
//! run the full protocol correctly.

use mws::core::clock::ReplayPolicy;
use mws::core::protocol::DeviceAuthMode;
use mws::core::{Deployment, DeploymentConfig};
use mws::ibe::CipherAlgo;
use mws::net::{FaultConfig, LatencyModel};
use mws::pairing::SecurityLevel;

fn exercise(mut dep: Deployment, tag: &str) {
    dep.register_device("m");
    dep.register_client("rc", "pw", &["ATTR-X"]);
    let mut meter = dep.device("m");
    meter.deposit("ATTR-X", b"payload-1").unwrap();
    dep.clock().advance(1);
    meter.deposit("ATTR-X", b"payload-2").unwrap();
    let mut rc = dep.client("rc", "pw");
    let msgs = rc.retrieve_and_decrypt(0).unwrap();
    assert_eq!(msgs.len(), 2, "{tag}");
    assert_eq!(msgs[0].plaintext, b"payload-1", "{tag}");
    assert_eq!(msgs[1].plaintext, b"payload-2", "{tag}");
}

#[test]
fn auth_mode_times_threshold_matrix() {
    for device_auth in [DeviceAuthMode::Mac, DeviceAuthMode::Ibs] {
        for threshold in [None, Some((2, 3)), Some((1, 1)), Some((3, 3))] {
            let config = DeploymentConfig {
                device_auth,
                threshold,
                ..DeploymentConfig::test_default()
            };
            exercise(
                Deployment::new(config),
                &format!("auth={device_auth:?} threshold={threshold:?}"),
            );
        }
    }
}

#[test]
fn replay_policy_matrix() {
    for replay in [
        ReplayPolicy::Off,
        ReplayPolicy::standard(),
        ReplayPolicy::Window {
            window: 1,
            cache: 4,
        },
    ] {
        let config = DeploymentConfig {
            replay: replay.clone(),
            ..DeploymentConfig::test_default()
        };
        exercise(Deployment::new(config), &format!("replay={replay:?}"));
    }
}

#[test]
fn light_parameters_end_to_end() {
    // One pass at the larger (integration-grade) curve.
    let config = DeploymentConfig {
        level: SecurityLevel::Light,
        algo: CipherAlgo::ChaCha20,
        ..DeploymentConfig::test_default()
    };
    exercise(Deployment::new(config), "light");
}

#[test]
fn modeled_wan_latency_accumulates() {
    let config = DeploymentConfig {
        mws_fault: FaultConfig {
            latency: LatencyModel::WAN,
            ..Default::default()
        },
        pkg_fault: FaultConfig {
            latency: LatencyModel {
                base_us: 5_000,
                per_byte_ns: 100,
            },
            ..Default::default()
        },
        ..DeploymentConfig::test_default()
    };
    let mut dep = Deployment::new(config);
    dep.register_device("m");
    dep.register_client("rc", "pw", &["A"]);
    let mut meter = dep.device("m");
    meter.deposit("A", b"x").unwrap();
    let mut rc = dep.client("rc", "pw");
    rc.retrieve_and_decrypt(0).unwrap();
    let mws = dep.network().metrics("mws").unwrap();
    let pkg = dep.network().metrics("pkg").unwrap();
    // Each request crosses two legs; the deposit + retrieve hit the MWS,
    // bootstrap/params + auth + key fetch hit the PKG.
    assert!(
        mws.virtual_us >= 2 * 10_000 * mws.requests,
        "mws virtual clock"
    );
    assert!(
        pkg.virtual_us >= 2 * 5_000 * pkg.requests,
        "pkg virtual clock"
    );
    // The modeled time is bookkeeping, not wall time: the test itself ran
    // far faster than the ~60 modeled milliseconds.
}

#[test]
fn durable_plus_threshold_plus_ibs() {
    // The kitchen sink: durable storage + threshold PKG + IBS deposits.
    let dir = std::env::temp_dir().join(format!("mws-matrix-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let config = DeploymentConfig {
        storage_dir: Some(dir.clone()),
        threshold: Some((2, 3)),
        device_auth: DeviceAuthMode::Ibs,
        ..DeploymentConfig::test_default()
    };
    exercise(Deployment::new(config.clone()), "kitchen-sink");
    // Restart: messages survive.
    let dep = Deployment::new(config);
    assert_eq!(dep.mws().message_count(), 2);
    std::fs::remove_dir_all(&dir).unwrap();
}
