//! Cluster chaos: the 3-node / R=2 / W=2 warehouse under node kills and
//! socket-level chaos, driven through the real TCP front door.
//!
//! Same reproduction contract as `tests/chaos.rs`: every fault schedule is
//! drawn from seeded DRBGs, `MWS_CHAOS_SEED=<printed seed>` replays a
//! failure bit-for-bit, and every assertion message carries the seed.
//!
//! Cluster invariants on top of the single-node suite's:
//!
//! 1. **Zero quorum-acked loss** — a deposit acked by the front door
//!    survives killing *any* one node, because W = 2 put it on two.
//! 2. **Availability through the kill** — deposits keep acking while a
//!    node is down (sloppy quorum walks past the corpse).
//! 3. **Catch-up on restart** — a returning node is backfilled with every
//!    row whose replica set names it before it rejoins.
//! 4. **Merged reads stay exactly-once** — fan-out retrieval through the
//!    front door returns each acked payload exactly once, never a
//!    replica-induced duplicate.

use mws_cluster::{ClusterConfig, ClusterNode, ClusterRouter, HashRing, DEFAULT_VNODES};
use mws_core::clock::ReplayPolicy;
use mws_core::protocol::{Deployment, DeploymentConfig, MwsService};
use mws_server::{
    ChaosConfig, ChaosProxy, ClientConfig, ClusterFrontdoor, ServerConfig, TcpClient, TcpServer,
};
use mws_wire::Pdu;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// The pinned seed schedule, or the single seed from `MWS_CHAOS_SEED`.
fn seeds() -> Vec<u64> {
    mws_obs::init_from_env();
    match std::env::var("MWS_CHAOS_SEED") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .expect("MWS_CHAOS_SEED must be an unsigned integer")],
        Err(_) => vec![3, 17, 91],
    }
}

/// Metrics snapshot on panic or pinned-seed runs (see `tests/chaos.rs`).
struct StatsDumpGuard {
    scenario: &'static str,
    seed: u64,
}

impl Drop for StatsDumpGuard {
    fn drop(&mut self) {
        if std::thread::panicking() || std::env::var_os("MWS_CHAOS_SEED").is_some() {
            eprintln!(
                "---- metrics snapshot ({} seed {}) ----\n{}---- end snapshot ----",
                self.scenario,
                self.seed,
                mws_obs::registry().exposition()
            );
        }
    }
}

/// A TCP client tuned for chaos runs: fast retries, no breaker.
fn chaos_tcp_client(addr: SocketAddr, seed: u64) -> TcpClient {
    TcpClient::with_config(
        addr,
        ClientConfig {
            request_timeout: Duration::from_millis(500),
            attempts: 3,
            backoff: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(20),
            breaker_threshold: 0,
            seed,
            ..ClientConfig::default()
        },
    )
}

/// Minimal supervisor over one warehouse node's TCP listener (same shape
/// as the single-daemon chaos suite's).
struct Supervisor {
    addr: SocketAddr,
    server: Option<TcpServer>,
}

impl Supervisor {
    fn start(service: MwsService) -> Self {
        let server =
            TcpServer::spawn(ServerConfig::default(), || service.as_service()).expect("bind node");
        Self {
            addr: server.local_addr(),
            server: Some(server),
        }
    }

    fn kill(&mut self) {
        if let Some(mut s) = self.server.take() {
            s.shutdown();
        }
    }

    fn restart(&mut self, service: MwsService) {
        assert!(self.server.is_none(), "kill before restart");
        for _ in 0..100 {
            let svc = service.clone();
            match TcpServer::spawn(ServerConfig::listen(&self.addr.to_string()), || {
                svc.as_service()
            }) {
                Ok(s) => {
                    self.server = Some(s);
                    return;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        panic!("port {} never came back", self.addr);
    }
}

/// Attributes spread across the ring so a kill actually hits some
/// replica sets and misses others.
const ATTRS: [&str; 6] = [
    "CHAOS-A", "CHAOS-B", "CHAOS-C", "CHAOS-D", "CHAOS-E", "CHAOS-F",
];

fn node_names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("node-{i}")).collect()
}

/// Three same-seed warehouse deployments — three `mws-mmsd` processes in
/// the daemon picture — each on its own TCP listener.
fn three_nodes(seed: u64) -> (Vec<Deployment>, Vec<Supervisor>) {
    let deps: Vec<Deployment> = (0..3)
        .map(|_| {
            let mut dep = Deployment::new(DeploymentConfig {
                seed,
                ..DeploymentConfig::test_default()
            });
            dep.register_device("meter-1");
            dep.register_client("rc", "pw", &ATTRS);
            dep
        })
        .collect();
    let sups: Vec<Supervisor> = deps
        .iter()
        .map(|d| Supervisor::start(d.mws().clone()))
        .collect();
    (deps, sups)
}

/// A cluster front door (R = 2, W = 2) over the supervised nodes, bound
/// on its own TCP listener. `addr_of` lets a scenario splice a chaos
/// proxy in front of one node.
fn front_door(
    deps: &[Deployment],
    seed: u64,
    addr_of: impl Fn(usize) -> SocketAddr,
) -> (Arc<ClusterRouter>, ClusterFrontdoor, TcpServer) {
    front_door_with(deps, seed, addr_of, ClusterConfig::new(2, 2), None)
}

/// [`front_door`] with the consistency knobs exposed: scenario I runs
/// W = 1 with WAL-backed hinted handoff, the membership scenarios keep
/// the default R = W = 2.
fn front_door_with(
    deps: &[Deployment],
    seed: u64,
    addr_of: impl Fn(usize) -> SocketAddr,
    cfg: ClusterConfig,
    hint_dir: Option<std::path::PathBuf>,
) -> (Arc<ClusterRouter>, ClusterFrontdoor, TcpServer) {
    let nodes = deps
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let pool = (0..2)
                .map(|_| chaos_tcp_client(addr_of(i), seed).into_client())
                .collect();
            ClusterNode::new(format!("node-{i}"), pool)
        })
        .collect();
    let router = ClusterRouter::new(nodes, cfg, deps[0].replica_key());
    if let Some(dir) = hint_dir {
        router.enable_hints(Some(dir));
    }
    router.set_attribute_names(
        deps[0]
            .mws()
            .policy_table()
            .into_iter()
            .map(|row| (row.attribute_id, row.attribute)),
    );
    let front = ClusterFrontdoor::new(
        deps[0].clock().clone(),
        ReplayPolicy::standard(),
        router.clone(),
    );
    front.register(
        "rc",
        "pw",
        &deps[0].mws().client_public_key("rc").expect("registered"),
    );
    let server = {
        let f = front.clone();
        TcpServer::spawn(ServerConfig::default(), move || f.as_service()).expect("bind front door")
    };
    (router, front, server)
}

/// Retrieves through the front door and checks the merged view: every
/// acked payload exactly once, unique remapped ids, stable on repeat.
fn assert_cluster_converged(
    deps: &mut [Deployment],
    front_addr: SocketAddr,
    acked: &[Vec<u8>],
    seed: u64,
) {
    let pkg = deps[0].network().client("pkg");
    let door = chaos_tcp_client(front_addr, seed).into_client();
    let mut rc = deps[0].client_with("rc", "pw", door, pkg);
    let msgs = rc
        .retrieve_and_decrypt(0)
        .unwrap_or_else(|e| panic!("seed {seed}: merged retrieval failed: {e}"));
    let mut ids: Vec<u64> = msgs.iter().map(|m| m.message_id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(
        ids.len(),
        msgs.len(),
        "seed {seed}: replica fan-out delivered a message twice"
    );
    let mut got: Vec<Vec<u8>> = msgs.iter().map(|m| m.plaintext.clone()).collect();
    let mut want: Vec<Vec<u8>> = acked.to_vec();
    got.sort();
    want.sort();
    assert_eq!(
        got, want,
        "seed {seed}: merged retrieval != quorum-acked deposits"
    );
    let again = rc
        .retrieve_and_decrypt(0)
        .unwrap_or_else(|e| panic!("seed {seed}: repeat merged retrieval failed: {e}"));
    assert_eq!(
        again.len(),
        msgs.len(),
        "seed {seed}: merged view not stable across retrievals"
    );
}

/// One quorum-acked deposit through the front door, recorded in the
/// oracle (`acked`) and the per-attribute tally.
fn deposit_through(
    meter: &mut mws_core::device::SmartDevice,
    acked: &mut Vec<Vec<u8>>,
    per_attr: &mut [usize],
    i: usize,
    tag: &str,
    seed: u64,
) {
    let attr = ATTRS[i % ATTRS.len()];
    let payload = format!("{tag}-{i}").into_bytes();
    meter
        .deposit_reliable(attr, &payload, 64)
        .unwrap_or_else(|e| panic!("seed {seed}: {tag} deposit {i} never acked: {e}"));
    acked.push(payload);
    per_attr[i % ATTRS.len()] += 1;
}

/// The exactly-R audit: every attribute's rows sit on precisely the
/// R = 2 replicas `ring` assigns it — full counts there, zero anywhere
/// else — so the cluster holds exactly two copies of every acked row,
/// never fewer (loss) and never more (stale donors past a handover).
fn assert_exactly_r(
    deps: &[Deployment],
    ring: &HashRing,
    per_attr: &[usize],
    acked: usize,
    seed: u64,
    what: &str,
) {
    for (k, attr) in ATTRS.iter().enumerate() {
        let home = ring.replicas(attr, 2);
        for (i, dep) in deps.iter().enumerate() {
            let have = dep
                .mws()
                .store_handle()
                .by_attribute(attr)
                .expect("scan")
                .len();
            let want = if home.contains(&i) { per_attr[k] } else { 0 };
            assert_eq!(
                have, want,
                "seed {seed}: {what}: node-{i} holds {have} rows of {attr}, want {want}"
            );
        }
    }
    let total: usize = deps.iter().map(|d| d.mws().message_count()).sum();
    assert_eq!(
        total,
        acked * 2,
        "seed {seed}: {what}: total copies != exactly R per acked row"
    );
}

// ---------------------------------------------------------------------------
// Scenario G: kill any node mid-traffic, keep depositing, restart it, and
// require catch-up before it rejoins — with zero quorum-acked loss.
// ---------------------------------------------------------------------------

#[test]
fn killing_any_node_mid_traffic_loses_no_acked_deposit() {
    for seed in seeds() {
        let _dump = StatsDumpGuard {
            scenario: "cluster-kill-node",
            seed,
        };
        let (mut deps, mut sups) = three_nodes(seed);
        let addrs: Vec<SocketAddr> = sups.iter().map(|s| s.addr).collect();
        let (router, _front, front_srv) = front_door(&deps, seed, |i| addrs[i]);
        let pkg = deps[0].network().client("pkg");
        let mut meter = deps[0]
            .device_with(
                "meter-1",
                chaos_tcp_client(front_srv.local_addr(), seed).into_client(),
                &pkg,
            )
            .unwrap_or_else(|e| panic!("seed {seed}: bootstrap failed: {e}"));
        let mut acked: Vec<Vec<u8>> = Vec::new();
        let mut per_attr = vec![0usize; ATTRS.len()];
        let deposit = |meter: &mut mws_core::device::SmartDevice,
                       acked: &mut Vec<Vec<u8>>,
                       per_attr: &mut Vec<usize>,
                       i: usize,
                       tag: &str| {
            let attr = ATTRS[i % ATTRS.len()];
            let payload = format!("{tag}-{i}").into_bytes();
            meter
                .deposit_reliable(attr, &payload, 64)
                .unwrap_or_else(|e| panic!("seed {seed}: {tag} deposit {i} never acked: {e}"));
            acked.push(payload);
            per_attr[i % ATTRS.len()] += 1;
        };
        for i in 0..6 {
            deposit(&mut meter, &mut acked, &mut per_attr, i, "pre");
        }
        // The seed picks the victim, so the pinned schedule kills each of
        // the three nodes across the default seed set.
        let victim = (seed as usize) % 3;
        sups[victim].kill();
        router.probe_once(); // the router notices the corpse
        assert!(
            !router.node_states()[victim].1,
            "seed {seed}: probe must mark the killed node down"
        );
        // Mid-kill traffic: the sloppy quorum keeps acking with W = 2.
        for i in 6..12 {
            deposit(&mut meter, &mut acked, &mut per_attr, i, "down");
        }
        // Every ack so far is durable on two *live* nodes.
        let live_rows: usize = deps
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != victim)
            .map(|(_, d)| d.mws().message_count())
            .sum();
        assert!(
            live_rows >= acked.len() * 2 - deps[victim].mws().message_count().min(acked.len()),
            "seed {seed}: surviving nodes hold fewer copies than W promised"
        );
        // Restart and let the prober's up-transition trigger catch-up.
        sups[victim].restart(deps[victim].mws().clone());
        router.probe_once();
        assert!(
            router.node_states()[victim].1,
            "seed {seed}: restarted node must rejoin"
        );
        // Catch-up contract: every row whose replica set names the
        // restarted node is now on it — including rows acked while it was
        // dead. The test rebuilds the same ring to know which those are.
        let ring = HashRing::new(&node_names(3), DEFAULT_VNODES);
        let store = deps[victim].mws().store_handle();
        for (k, attr) in ATTRS.iter().enumerate() {
            if !ring.replicas(attr, 2).contains(&victim) {
                continue;
            }
            let have = store.by_attribute(attr).expect("scan").len();
            assert_eq!(
                have, per_attr[k],
                "seed {seed}: node {victim} missing {attr} rows after catch-up"
            );
        }
        assert_cluster_converged(&mut deps, front_srv.local_addr(), &acked, seed);
        drop(front_srv);
        for s in &mut sups {
            s.kill();
        }
    }
}

// ---------------------------------------------------------------------------
// Scenario H: one node behind a chaos proxy — stalls, truncation, resets
// on its replica link. Quorum writes keep acking and nothing acked is
// lost, even though one replica's socket misbehaves the whole run.
// ---------------------------------------------------------------------------

#[test]
fn chaos_proxy_on_one_replica_link_loses_no_acked_deposit() {
    for seed in seeds() {
        let _dump = StatsDumpGuard {
            scenario: "cluster-chaos-link",
            seed,
        };
        let (mut deps, mut sups) = three_nodes(seed);
        let mut proxy = ChaosProxy::spawn(
            sups[1].addr,
            ChaosConfig {
                stall_rate: 0.15,
                truncate_rate: 0.1,
                reset_rate: 0.1,
                stall: Duration::from_millis(20),
                seed,
            },
        )
        .expect("spawn chaos proxy");
        let addrs: Vec<SocketAddr> = sups.iter().map(|s| s.addr).collect();
        let proxied = proxy.local_addr();
        let (router, _front, front_srv) =
            front_door(&deps, seed, |i| if i == 1 { proxied } else { addrs[i] });
        let pkg = deps[0].network().client("pkg");
        let mut meter = deps[0]
            .device_with(
                "meter-1",
                chaos_tcp_client(front_srv.local_addr(), seed).into_client(),
                &pkg,
            )
            .unwrap_or_else(|e| panic!("seed {seed}: bootstrap failed: {e}"));
        let mut acked: Vec<Vec<u8>> = Vec::new();
        for i in 0..12 {
            let attr = ATTRS[i % ATTRS.len()];
            let payload = format!("flaky-{i}").into_bytes();
            meter
                .deposit_reliable(attr, &payload, 64)
                .unwrap_or_else(|e| panic!("seed {seed}: deposit {i} never acked: {e}"));
            acked.push(payload);
        }
        // W = 2 durable copies per ack, possibly 3 where the sloppy walk
        // extended past a stalled call; client retries never duplicate.
        let total: usize = deps.iter().map(|d| d.mws().message_count()).sum();
        assert!(
            (acked.len() * 2..=acked.len() * 3).contains(&total),
            "seed {seed}: {total} copies for {} acked rows is outside [2x, 3x]",
            acked.len()
        );
        // A probe round lets the router re-admit the flaky node if a
        // failed call benched it, then the merged view must be complete.
        router.probe_once();
        assert_cluster_converged(&mut deps, front_srv.local_addr(), &acked, seed);
        proxy.shutdown();
        drop(front_srv);
        for s in &mut sups {
            s.kill();
        }
    }
}

// ---------------------------------------------------------------------------
// Scenario I: crash + hinted handoff. W = 1 with WAL-backed hints: a
// replica dies, deposits keep acking off one copy while the dead node's
// copies queue as hints, and the prober's up-transition replays them —
// converging every acked row to exactly R copies on exactly the ring
// replicas, with no overflow copy parked on a third node.
// ---------------------------------------------------------------------------

#[test]
fn crash_and_hint_replay_converges_to_exactly_r_copies() {
    for seed in seeds() {
        let _dump = StatsDumpGuard {
            scenario: "cluster-hint-replay",
            seed,
        };
        let (mut deps, mut sups) = three_nodes(seed);
        let addrs: Vec<SocketAddr> = sups.iter().map(|s| s.addr).collect();
        let hint_dir =
            std::env::temp_dir().join(format!("mws-chaos-hints-{seed}-{}", std::process::id()));
        let (router, _front, front_srv) = front_door_with(
            &deps,
            seed,
            |i| addrs[i],
            ClusterConfig::new(2, 1),
            Some(hint_dir.clone()),
        );
        let pkg = deps[0].network().client("pkg");
        let mut meter = deps[0]
            .device_with(
                "meter-1",
                chaos_tcp_client(front_srv.local_addr(), seed).into_client(),
                &pkg,
            )
            .unwrap_or_else(|e| panic!("seed {seed}: bootstrap failed: {e}"));
        let mut acked: Vec<Vec<u8>> = Vec::new();
        let mut per_attr = vec![0usize; ATTRS.len()];
        for i in 0..6 {
            deposit_through(&mut meter, &mut acked, &mut per_attr, i, "pre", seed);
        }
        // Hints only queue for a *preferred replica* that is down, and
        // ring placement is seed-independent — so the seed picks the
        // victim among nodes that actually replicate some attribute.
        let ring = HashRing::new(&node_names(3), DEFAULT_VNODES);
        let holders: Vec<usize> = (0..3)
            .filter(|i| ATTRS.iter().any(|a| ring.replicas(a, 2).contains(i)))
            .collect();
        let victim = holders[(seed as usize) % holders.len()];
        let victim_name = format!("node-{victim}");
        sups[victim].kill();
        router.probe_once();
        assert!(
            !router.node_states()[victim].1,
            "seed {seed}: probe must mark the killed node down"
        );
        // W = 1 keeps acking off the surviving replica; every copy owed
        // to the corpse lands in its durable hint queue instead.
        for i in 6..12 {
            deposit_through(&mut meter, &mut acked, &mut per_attr, i, "down", seed);
        }
        let board = router.hint_board().expect("hints enabled");
        assert!(
            board.pending(&victim_name) > 0,
            "seed {seed}: down-phase deposits must queue hints for the corpse"
        );
        // Restart; the prober's up-transition replays the queue.
        sups[victim].restart(deps[victim].mws().clone());
        router.probe_once();
        assert!(
            router.node_states()[victim].1,
            "seed {seed}: restarted node must rejoin"
        );
        assert_eq!(
            board.pending(&victim_name),
            0,
            "seed {seed}: hint replay must drain the queue"
        );
        assert_exactly_r(&deps, &ring, &per_attr, acked.len(), seed, "hint replay");
        assert_cluster_converged(&mut deps, front_srv.local_addr(), &acked, seed);
        drop(front_srv);
        for s in &mut sups {
            s.kill();
        }
        std::fs::remove_dir_all(&hint_dir).ok();
    }
}

// ---------------------------------------------------------------------------
// Scenario J: live join under traffic. A fourth same-seed warehouse
// joins through the front door's authenticated ClusterJoin while
// deposits flow; the arc transfer streams the remapped history and the
// evict finalizer drops the departed donors' copies — ending at exactly
// R copies of every acked row on exactly the grown ring's replicas.
// ---------------------------------------------------------------------------

#[test]
fn live_join_under_traffic_ends_at_exactly_r_copies() {
    for seed in seeds() {
        let _dump = StatsDumpGuard {
            scenario: "cluster-live-join",
            seed,
        };
        let (mut deps, mut sups) = three_nodes(seed);
        let addrs: Vec<SocketAddr> = sups.iter().map(|s| s.addr).collect();
        let (router, _front, front_srv) = front_door(&deps, seed, |i| addrs[i]);
        // The joining warehouse: same seed, own listener, not yet routed.
        let mut dep3 = Deployment::new(DeploymentConfig {
            seed,
            ..DeploymentConfig::test_default()
        });
        dep3.register_device("meter-1");
        dep3.register_client("rc", "pw", &ATTRS);
        let mut sup3 = Supervisor::start(dep3.mws().clone());
        let addr3 = sup3.addr;
        router.set_node_factory(move |name| {
            let pool = (0..2)
                .map(|_| chaos_tcp_client(addr3, seed).into_client())
                .collect();
            ClusterNode::new(name, pool)
        });
        let pkg = deps[0].network().client("pkg");
        let mut meter = deps[0]
            .device_with(
                "meter-1",
                chaos_tcp_client(front_srv.local_addr(), seed).into_client(),
                &pkg,
            )
            .unwrap_or_else(|e| panic!("seed {seed}: bootstrap failed: {e}"));
        let mut acked: Vec<Vec<u8>> = Vec::new();
        let mut per_attr = vec![0usize; ATTRS.len()];
        for i in 0..6 {
            deposit_through(&mut meter, &mut acked, &mut per_attr, i, "pre", seed);
        }
        // The join order arrives over TCP like any operator command.
        let door = chaos_tcp_client(front_srv.local_addr(), seed).into_client();
        let epoch = router.epoch();
        let reply = door
            .call(&Pdu::ClusterJoin {
                node: "node-3".into(),
                epoch,
                mac: deps[0].cluster_join_mac("node-3", epoch),
            })
            .unwrap_or_else(|e| panic!("seed {seed}: join order failed: {e}"));
        assert!(
            matches!(reply, Pdu::ClusterAdminAck { .. }),
            "seed {seed}: join refused: {reply:?}"
        );
        // Traffic keeps flowing while the arc transfer streams history.
        for i in 6..12 {
            deposit_through(&mut meter, &mut acked, &mut per_attr, i, "mid-join", seed);
        }
        assert!(
            router.wait_rebalance(Duration::from_secs(30)),
            "seed {seed}: arc transfer never finished"
        );
        deps.push(dep3);
        let ring = HashRing::new(&node_names(4), DEFAULT_VNODES);
        assert_exactly_r(&deps, &ring, &per_attr, acked.len(), seed, "join");
        assert_cluster_converged(&mut deps, front_srv.local_addr(), &acked, seed);
        drop(front_srv);
        sup3.kill();
        for s in &mut sups {
            s.kill();
        }
    }
}

// ---------------------------------------------------------------------------
// Scenario K: live drain under traffic. One warehouse leaves through the
// authenticated ClusterDrain while deposits flow; it donates its arcs,
// the survivors inherit them, and the evict finalizer empties the
// leaver — zero acked loss, exactly R copies, all on the shrunk ring.
// ---------------------------------------------------------------------------

#[test]
fn live_drain_under_traffic_ends_at_exactly_r_copies() {
    for seed in seeds() {
        let _dump = StatsDumpGuard {
            scenario: "cluster-live-drain",
            seed,
        };
        let (mut deps, mut sups) = three_nodes(seed);
        let addrs: Vec<SocketAddr> = sups.iter().map(|s| s.addr).collect();
        let (router, _front, front_srv) = front_door(&deps, seed, |i| addrs[i]);
        let pkg = deps[0].network().client("pkg");
        let mut meter = deps[0]
            .device_with(
                "meter-1",
                chaos_tcp_client(front_srv.local_addr(), seed).into_client(),
                &pkg,
            )
            .unwrap_or_else(|e| panic!("seed {seed}: bootstrap failed: {e}"));
        let mut acked: Vec<Vec<u8>> = Vec::new();
        let mut per_attr = vec![0usize; ATTRS.len()];
        for i in 0..6 {
            deposit_through(&mut meter, &mut acked, &mut per_attr, i, "pre", seed);
        }
        // The seed picks the leaver, so the pinned schedule drains each
        // of the three nodes across the default seed set.
        let leaver = (seed as usize) % 3;
        let door = chaos_tcp_client(front_srv.local_addr(), seed).into_client();
        let epoch = router.epoch();
        let node = format!("node-{leaver}");
        let reply = door
            .call(&Pdu::ClusterDrain {
                node: node.clone(),
                epoch,
                mac: deps[0].cluster_drain_mac(&node, epoch),
            })
            .unwrap_or_else(|e| panic!("seed {seed}: drain order failed: {e}"));
        assert!(
            matches!(reply, Pdu::ClusterAdminAck { .. }),
            "seed {seed}: drain refused: {reply:?}"
        );
        // Traffic keeps flowing; the shrunk ring routes around the leaver.
        for i in 6..12 {
            deposit_through(&mut meter, &mut acked, &mut per_attr, i, "mid-drain", seed);
        }
        assert!(
            router.wait_rebalance(Duration::from_secs(30)),
            "seed {seed}: drain transfer never finished"
        );
        // R = 2 over the two survivors: both replicate every attribute,
        // and the handover emptied the leaver entirely.
        for (k, attr) in ATTRS.iter().enumerate() {
            for (i, dep) in deps.iter().enumerate() {
                let have = dep
                    .mws()
                    .store_handle()
                    .by_attribute(attr)
                    .expect("scan")
                    .len();
                let want = if i == leaver { 0 } else { per_attr[k] };
                assert_eq!(
                    have, want,
                    "seed {seed}: drain: node-{i} holds {have} rows of {attr}, want {want}"
                );
            }
        }
        assert_eq!(
            deps[leaver].mws().message_count(),
            0,
            "seed {seed}: drained node must hand off and drop every arc"
        );
        let total: usize = deps.iter().map(|d| d.mws().message_count()).sum();
        assert_eq!(
            total,
            acked.len() * 2,
            "seed {seed}: drain: total copies != exactly R per acked row"
        );
        assert_cluster_converged(&mut deps, front_srv.local_addr(), &acked, seed);
        drop(front_srv);
        for s in &mut sups {
            s.kill();
        }
    }
}
