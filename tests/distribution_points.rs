//! Integration: §VIII distribution points — devices deposit at a regional
//! ingest site, the central warehouse pulls batches, receiving clients read
//! from the center. End-to-end confidentiality is unchanged: the edge never
//! holds anything decryptable either.

use mws::core::clock::ReplayPolicy;
use mws::core::device::{DeviceCredential, SmartDevice};
use mws::core::registry::DeviceRegistry;
use mws::core::relay::{IngestPoint, RelayPuller};
use mws::core::sda::DeviceAuthVerifier;
use mws::core::{Deployment, DeploymentConfig};
use mws::ibe::CipherAlgo;

/// Builds a central deployment plus one edge site on the same network.
fn setup() -> (Deployment, IngestPoint, Vec<u8>) {
    let mut dep = Deployment::new(DeploymentConfig::test_default());
    dep.register_client("rc", "pw", &["ELECTRIC-WEST"]);

    // The edge site with its own device registry.
    let mut registry = DeviceRegistry::new();
    registry.register("edge-meter", b"edge-device-key");
    let relay_key = b"site-west<->center".to_vec();
    let point = IngestPoint::new(
        "site-west",
        registry,
        DeviceAuthVerifier::Mac,
        &relay_key,
        dep.clock().clone(),
        ReplayPolicy::Off,
    );
    dep.network().bind("ingest-west", point.as_service());
    (dep, point, relay_key)
}

/// A device provisioned against the edge endpoint.
fn edge_device(dep: &Deployment) -> SmartDevice {
    SmartDevice::bootstrap(
        "edge-meter",
        DeviceCredential::MacKey(b"edge-device-key".to_vec()),
        CipherAlgo::Aes128,
        dep.clock().clone(),
        77,
        dep.network().client("ingest-west"),
        &dep.network().client("pkg"),
    )
    .unwrap()
}

#[test]
fn edge_to_center_to_client() {
    let (mut dep, point, relay_key) = setup();
    let mut meter = edge_device(&dep);
    meter.deposit("ELECTRIC-WEST", b"west reading 1").unwrap();
    meter.deposit("ELECTRIC-WEST", b"west reading 2").unwrap();
    assert_eq!(point.buffered(), 2);
    assert_eq!(dep.mws().message_count(), 0, "not yet pulled");

    // The center drains the site.
    let mut puller = RelayPuller::new(dep.network().client("ingest-west"), &relay_key);
    let batch = puller.pull(100).unwrap();
    let ids = dep.mws().store_relayed(&batch).unwrap();
    assert_eq!(ids.len(), 2);
    assert_eq!(dep.mws().message_count(), 2);

    // The RC reads from the center, oblivious to the topology.
    let mut rc = dep.client("rc", "pw");
    let msgs = rc.retrieve_and_decrypt(0).unwrap();
    assert_eq!(msgs.len(), 2);
    assert_eq!(msgs[0].plaintext, b"west reading 1");
    assert_eq!(msgs[1].plaintext, b"west reading 2");
}

#[test]
fn incremental_pulls_deliver_each_message_once() {
    let (mut dep, _point, relay_key) = setup();
    let mut meter = edge_device(&dep);
    let mut puller = RelayPuller::new(dep.network().client("ingest-west"), &relay_key);

    for round in 0..3 {
        meter
            .deposit("ELECTRIC-WEST", format!("round {round}").as_bytes())
            .unwrap();
        let batch = puller.pull(100).unwrap();
        assert_eq!(batch.len(), 1, "round {round}");
        dep.mws().store_relayed(&batch).unwrap();
    }
    assert_eq!(dep.mws().message_count(), 3);
    let mut rc = dep.client("rc", "pw");
    assert_eq!(rc.retrieve_and_decrypt(0).unwrap().len(), 3);
}

#[test]
fn tampered_batch_never_reaches_the_warehouse() {
    let (dep, _point, _relay_key) = setup();
    let mut meter = edge_device(&dep);
    meter.deposit("ELECTRIC-WEST", b"x").unwrap();
    // Puller configured with the wrong key models a MITM re-signing attempt.
    let mut puller = RelayPuller::new(dep.network().client("ingest-west"), b"attacker-key");
    assert!(puller.pull(100).is_err());
    assert_eq!(dep.mws().message_count(), 0);
}

#[test]
fn edge_site_rejects_unknown_devices() {
    let (dep, point, _) = setup();
    // A device with a key the site does not know.
    let rogue = SmartDevice::bootstrap(
        "rogue-meter",
        DeviceCredential::MacKey(b"rogue-key".to_vec()),
        CipherAlgo::Aes128,
        dep.clock().clone(),
        78,
        dep.network().client("ingest-west"),
        &dep.network().client("pkg"),
    )
    .unwrap();
    let mut rogue = rogue;
    assert!(rogue.deposit("ELECTRIC-WEST", b"evil").is_err());
    assert_eq!(point.buffered(), 0);
}
