//! Property-based end-to-end tests: for arbitrary payloads, attribute
//! shapes and policy populations, every deposited message is decrypted
//! exactly by the RCs whose grants cover it — and by nobody else.

use mws::core::{Deployment, DeploymentConfig};
use proptest::prelude::*;

fn attr_name() -> impl Strategy<Value = String> {
    // Dash-separated segments from a tiny alphabet, like the paper's
    // ELECTRIC-<APT>-SV-CA shapes.
    prop::collection::vec(
        prop_oneof![Just("EL"), Just("WA"), Just("GA"), Just("X1")],
        1..4,
    )
    .prop_map(|segs| segs.join("-"))
}

proptest! {
    // Each case provisions a full deployment with pairing crypto; keep the
    // counts modest but meaningful.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn roundtrip_arbitrary_payloads(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..600), 1..5),
        attr in attr_name(),
    ) {
        let mut dep = Deployment::new(DeploymentConfig::test_default());
        dep.register_device("sd");
        dep.register_client("rc", "pw", &[attr.as_str()]);
        let mut sd = dep.device("sd");
        for p in &payloads {
            sd.deposit(&attr, p).unwrap();
        }
        let mut rc = dep.client("rc", "pw");
        let got = rc.retrieve_and_decrypt(0).unwrap();
        prop_assert_eq!(got.len(), payloads.len());
        for (m, p) in got.iter().zip(payloads.iter()) {
            prop_assert_eq!(&m.plaintext, p);
        }
    }

    #[test]
    fn visibility_matches_grants_exactly(
        grants in prop::collection::vec(any::<bool>(), 4),
        deposits in prop::collection::vec(0usize..4, 1..8),
    ) {
        let attrs = ["AT-0", "AT-1", "AT-2", "AT-3"];
        let mut dep = Deployment::new(DeploymentConfig::test_default());
        dep.register_device("sd");
        let granted: Vec<&str> = attrs
            .iter()
            .zip(grants.iter())
            .filter(|(_, &g)| g)
            .map(|(a, _)| *a)
            .collect();
        dep.register_client("rc", "pw", &granted);
        let mut sd = dep.device("sd");
        for &idx in &deposits {
            sd.deposit(attrs[idx], format!("m-{idx}").as_bytes()).unwrap();
        }
        let expected = deposits.iter().filter(|&&i| grants[i]).count();
        let mut rc = dep.client("rc", "pw");
        let got = rc.retrieve_and_decrypt(0).unwrap();
        prop_assert_eq!(got.len(), expected);
        // Every decrypted payload corresponds to a granted attribute.
        for m in &got {
            let text = String::from_utf8(m.plaintext.clone()).unwrap();
            let idx: usize = text.strip_prefix("m-").unwrap().parse().unwrap();
            prop_assert!(grants[idx]);
        }
    }

    #[test]
    fn wire_tamper_never_yields_plaintext(
        payload in prop::collection::vec(any::<u8>(), 1..200),
        flip_byte in any::<u16>(),
    ) {
        use mws::wire::Pdu;
        let mut dep = Deployment::new(DeploymentConfig::test_default());
        dep.register_device("sd");
        dep.register_client("rc", "pw", &["A"]);
        let mut sd = dep.device("sd");
        let pdu = sd.compose_deposit("A", &payload);
        // Tamper with one byte of the sealed body before it reaches the MWS.
        let Pdu::DepositRequest { mut sealed, sd_id, timestamp, u, algo, attribute, nonce, mac } = pdu else {
            unreachable!()
        };
        let pos = (flip_byte as usize) % sealed.len();
        sealed[pos] ^= 1;
        let tampered = Pdu::DepositRequest { sd_id, timestamp, u, algo, sealed, attribute, nonce, mac };
        let reply = dep.network().client("mws").call(&tampered).unwrap();
        // The SDA's MAC catches it at the door.
        let rejected = matches!(reply, Pdu::Error { code: 401, .. });
        prop_assert!(rejected);
        let mut rc = dep.client("rc", "pw");
        prop_assert!(rc.retrieve_and_decrypt(0).unwrap().is_empty());
    }
}
