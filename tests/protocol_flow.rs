//! Integration: the exact §V.D protocol sequence (Figures 2 and 4),
//! exercised phase by phase at the PDU level rather than through the
//! convenience pipeline.

use mws::core::{Deployment, DeploymentConfig};
use mws::wire::Pdu;

fn deployment() -> Deployment {
    Deployment::new(DeploymentConfig::test_default())
}

#[test]
fn figure4_pdu_sequence_phase_by_phase() {
    let mut dep = deployment();
    dep.register_device("sd-1");
    dep.register_client("rc-1", "pw", &["ATTR-X"]);

    // ---- Phase SD–MWS ----
    let mut sd = dep.device("sd-1");
    let deposit = sd.compose_deposit("ATTR-X", b"payload-1");
    // The deposit PDU carries exactly the §V.D fields.
    let Pdu::DepositRequest {
        ref sd_id,
        ref u,
        ref attribute,
        ref nonce,
        ref mac,
        ..
    } = deposit
    else {
        panic!("expected DepositRequest");
    };
    assert_eq!(sd_id, "sd-1");
    assert_eq!(attribute, "ATTR-X");
    assert!(!u.is_empty() && !nonce.is_empty() && mac.len() == 32);

    let reply = dep.network().client("mws").call(&deposit).unwrap();
    let Pdu::DepositAck { message_id } = reply else {
        panic!("expected DepositAck, got {reply:?}");
    };

    // ---- Phase MWS–RC ----
    let mut rc = dep.client("rc-1", "pw");
    let (token, messages) = rc.retrieve(0).unwrap();
    assert_eq!(messages.len(), 1);
    let msg = &messages[0];
    assert_eq!(msg.message_id, message_id);
    // The RC-visible row is rP ‖ C ‖ (AID ‖ Nonce): attribute only as AID.
    assert_eq!(msg.aid, 1);
    assert_eq!(&msg.nonce, nonce);
    assert!(!token.is_empty());

    // ---- Phase RC–PKG ----
    let session = rc.open_pkg_session(&token).unwrap();
    let sk = rc.fetch_key(&session, msg.aid, &msg.nonce).unwrap();
    let plaintext = rc.decrypt_message(msg, &sk).unwrap();
    assert_eq!(plaintext, b"payload-1");
}

#[test]
fn key_served_once_per_session() {
    // "It handles RC revocation and makes sure that a private key can only
    // be used once" — the PKG refuses to re-serve (AID, nonce) in a session.
    let mut dep = deployment();
    dep.register_device("sd");
    dep.register_client("rc", "pw", &["A"]);
    let mut sd = dep.device("sd");
    sd.deposit("A", b"m").unwrap();
    let mut rc = dep.client("rc", "pw");
    let (token, messages) = rc.retrieve(0).unwrap();
    let session = rc.open_pkg_session(&token).unwrap();
    let msg = &messages[0];
    rc.fetch_key(&session, msg.aid, &msg.nonce).unwrap();
    let err = rc.fetch_key(&session, msg.aid, &msg.nonce).unwrap_err();
    assert!(matches!(
        err,
        mws::core::CoreError::Remote {
            code: mws::core::ErrorCode::Replay,
            ..
        }
    ));
    // A fresh session (fresh retrieval/token) can fetch again.
    let (token2, _) = rc.retrieve(0).unwrap();
    let session2 = rc.open_pkg_session(&token2).unwrap();
    rc.fetch_key(&session2, msg.aid, &msg.nonce).unwrap();
}

#[test]
fn pkg_rejects_aid_outside_ticket() {
    // An RC cannot ask for keys of attributes it was not mapped to, even
    // with a valid session: the AID must be inside its own ticket.
    let mut dep = deployment();
    dep.register_device("sd");
    dep.register_client("rc-a", "pw", &["A"]);
    dep.register_client("rc-b", "pw", &["B"]);
    let mut sd = dep.device("sd");
    sd.deposit("A", b"for a").unwrap();
    sd.deposit("B", b"for b").unwrap();

    // rc-b learns (by observing traffic shapes, say) that AID 1 exists.
    let mut rc_b = dep.client("rc-b", "pw");
    let (token, messages) = rc_b.retrieve(0).unwrap();
    assert_eq!(messages.len(), 1, "rc-b only sees B's message");
    let session = rc_b.open_pkg_session(&token).unwrap();
    let err = rc_b.fetch_key(&session, 1, b"whatever").unwrap_err();
    assert!(matches!(
        err,
        mws::core::CoreError::Remote {
            code: mws::core::ErrorCode::Forbidden,
            ..
        }
    ));
    assert_eq!(dep.pkg().rejection_count(), 1);
}

#[test]
fn paged_retrieval_covers_everything_once() {
    let mut dep = deployment();
    dep.register_device("sd");
    dep.register_client("rc", "pw", &["A"]);
    let mut sd = dep.device("sd");
    for i in 0..7u32 {
        dep.clock().advance(1);
        sd.deposit("A", format!("m{i}").as_bytes()).unwrap();
    }
    let mut rc = dep.client("rc", "pw");
    // Page through with limit 3, resuming by timestamp, deduping by id.
    let mut seen = std::collections::BTreeSet::new();
    let mut since = 0u64;
    loop {
        let (_, page) = rc.retrieve_page(since, 3).unwrap();
        let fresh: Vec<_> = page.iter().filter(|m| seen.insert(m.message_id)).collect();
        if fresh.is_empty() {
            break;
        }
        since = fresh.iter().map(|m| m.timestamp).max().unwrap();
    }
    assert_eq!(seen.len(), 7, "every message seen exactly once");
}

#[test]
fn pkg_sessions_expire() {
    let mut dep = Deployment::new(DeploymentConfig {
        session_ttl: 10,
        ..DeploymentConfig::test_default()
    });
    dep.register_device("sd");
    dep.register_client("rc", "pw", &["A"]);
    let mut sd = dep.device("sd");
    sd.deposit("A", b"m").unwrap();
    let mut rc = dep.client("rc", "pw");
    let (token, messages) = rc.retrieve(0).unwrap();
    let session = rc.open_pkg_session(&token).unwrap();
    dep.clock().advance(50); // long past the TTL
    let err = rc
        .fetch_key(&session, messages[0].aid, &messages[0].nonce)
        .unwrap_err();
    assert!(matches!(
        err,
        mws::core::CoreError::Remote {
            code: mws::core::ErrorCode::NotFound,
            ..
        }
    ));
}

#[test]
fn stolen_token_useless_without_rsa_key() {
    // The token is bound to the RC's RSA keypair: a different registered
    // client cannot open a captured token.
    let mut dep = deployment();
    dep.register_device("sd");
    dep.register_client("victim", "pw1", &["A"]);
    dep.register_client("thief", "pw2", &["B"]);
    let mut sd = dep.device("sd");
    sd.deposit("A", b"sensitive").unwrap();
    let mut victim = dep.client("victim", "pw1");
    let (token, _) = victim.retrieve(0).unwrap();
    // The thief replays the victim's token on their own session.
    let mut thief = dep.client("thief", "pw2");
    assert!(thief.open_pkg_session(&token).is_err());
}

#[test]
fn protocol_survives_lossy_network_with_retries() {
    use mws::net::{FaultConfig, NetError};
    let mut dep = Deployment::new(DeploymentConfig {
        mws_fault: FaultConfig {
            drop_rate: 0.3,
            seed: 11,
            ..Default::default()
        },
        ..DeploymentConfig::test_default()
    });
    dep.register_device("sd");
    dep.register_client("rc", "pw", &["A"]);
    let mut sd = dep.device("sd");
    // Deposits may be dropped; the composing path is deterministic so a
    // retried PDU is a *replay* by design — the MWS must ack exactly one.
    let pdu = sd.compose_deposit("A", b"lossy");
    let mws = dep.network().client("mws");
    let mut delivered = 0;
    for _ in 0..50 {
        match mws.call(&pdu) {
            Ok(Pdu::DepositAck { .. }) => delivered += 1,
            Ok(Pdu::Error { code: 409, .. }) => {} // replay guard caught resend
            Ok(other) => panic!("unexpected {other:?}"),
            Err(NetError::Dropped) => {}
            Err(e) => panic!("unexpected {e}"),
        }
    }
    assert_eq!(delivered, 1, "exactly-once storage despite retries");
    assert_eq!(dep.mws().message_count(), 1);
}
