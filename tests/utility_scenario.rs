//! Integration: the Figure 1 utility value-chain access matrix, asserted.

use mws::core::{Deployment, DeploymentConfig};

const E: &str = "ELECTRIC-APTC-SV-CA";
const W: &str = "WATER-APTC-SV-CA";
const G: &str = "GAS-APTC-SV-CA";

fn scenario() -> Deployment {
    let mut dep = Deployment::new(DeploymentConfig::test_default());
    for m in ["em", "wm", "gm"] {
        dep.register_device(m);
    }
    dep.register_client("C-Services", "pw1", &[E, W, G]);
    dep.register_client("Electric&Gas", "pw2", &[E, G]);
    dep.register_client("Water&Resources", "pw3", &[W]);
    let mut em = dep.device("em");
    let mut wm = dep.device("wm");
    let mut gm = dep.device("gm");
    em.deposit(E, b"kWh=1").unwrap();
    wm.deposit(W, b"m3=2").unwrap();
    gm.deposit(G, b"thm=3").unwrap();
    dep
}

#[test]
fn figure1_access_matrix() {
    let mut dep = scenario();
    let mut counts = Vec::new();
    for (rc, pw) in [
        ("C-Services", "pw1"),
        ("Electric&Gas", "pw2"),
        ("Water&Resources", "pw3"),
    ] {
        let mut client = dep.client(rc, pw);
        counts.push((rc, client.retrieve_and_decrypt(0).unwrap().len()));
    }
    assert_eq!(
        counts,
        vec![
            ("C-Services", 3),
            ("Electric&Gas", 2),
            ("Water&Resources", 1)
        ]
    );
}

#[test]
fn water_company_cannot_read_electric_payloads() {
    let mut dep = scenario();
    let mut wr = dep.client("Water&Resources", "pw3");
    let msgs = wr.retrieve_and_decrypt(0).unwrap();
    assert_eq!(msgs.len(), 1);
    assert_eq!(msgs[0].plaintext, b"m3=2");
}

#[test]
fn depositor_does_not_know_recipient_identities() {
    // The defining property of the model (§I): the device encrypts to an
    // attribute before *any* RC holds that grant; a company joining later
    // (requirement v) still reads the message.
    let mut dep = Deployment::new(DeploymentConfig::test_default());
    dep.register_device("meter");
    let mut meter = dep.device("meter");
    meter
        .deposit(E, b"deposited before anyone could read it")
        .unwrap();

    // An energy-management company joins afterwards.
    dep.register_client("EnergyMgmt", "pw", &[E]);
    let mut newcomer = dep.client("EnergyMgmt", "pw");
    let msgs = newcomer.retrieve_and_decrypt(0).unwrap();
    assert_eq!(msgs.len(), 1);
    assert_eq!(msgs[0].plaintext, b"deposited before anyone could read it");
}

#[test]
fn consumer_monitoring_via_pattern_grant() {
    // "the energy consumer to monitor detailed resource usage" — one tenant
    // gets a pattern over their own apartment across meter classes.
    let mut dep = Deployment::new(DeploymentConfig::test_default());
    dep.register_device("em");
    dep.register_device("wm");
    dep.register_client("tenant-9", "pw", &[]);
    dep.mws().grant_pattern("tenant-9", "*-APT9-SV-CA").unwrap();
    let mut em = dep.device("em");
    let mut wm = dep.device("wm");
    em.deposit("ELECTRIC-APT9-SV-CA", b"mine-e").unwrap();
    em.deposit("ELECTRIC-APT8-SV-CA", b"not-mine").unwrap();
    wm.deposit("WATER-APT9-SV-CA", b"mine-w").unwrap();
    let mut tenant = dep.client("tenant-9", "pw");
    let mut got: Vec<Vec<u8>> = tenant
        .retrieve_and_decrypt(0)
        .unwrap()
        .into_iter()
        .map(|m| m.plaintext)
        .collect();
    got.sort();
    assert_eq!(got, vec![b"mine-e".to_vec(), b"mine-w".to_vec()]);
}
