//! Adversarial integration tests for the paper's security requirements
//! (§III.i message confidentiality, §III.ii message integrity).
//!
//! The threat model: an honest-but-curious (or actively tampering) MWS, and
//! registered-but-unauthorized RCs.

use mws::core::{Deployment, DeploymentConfig};
use mws::wire::Pdu;

#[test]
fn warehouse_never_sees_plaintext_bytes() {
    // Requirement i: inspect every byte the MWS ever received and verify
    // the plaintext (and the symmetric key material) never crossed the wire.
    let mut dep = Deployment::new(DeploymentConfig::test_default());
    dep.register_device("sd");
    dep.register_client("rc", "pw", &["A"]);
    let secret = b"PLAINTEXT-SENTINEL-0123456789".to_vec();
    let mut sd = dep.device("sd");
    let pdu = sd.compose_deposit("A", &secret);
    // Everything the MWS receives is this frame.
    let frame = mws::wire::encode_envelope(&pdu);
    assert!(
        !frame.windows(secret.len()).any(|w| w == secret.as_slice()),
        "plaintext must not appear in the deposit frame"
    );
    // Deliver it; then confirm the authorized RC still decrypts correctly,
    // i.e. the sentinel truly was in this ciphertext.
    let reply = dep.network().client("mws").call(&pdu).unwrap();
    assert!(matches!(reply, Pdu::DepositAck { .. }));
    let mut rc = dep.client("rc", "pw");
    assert_eq!(rc.retrieve_and_decrypt(0).unwrap()[0].plaintext, secret);
}

#[test]
fn malicious_mws_cannot_swap_message_attributes() {
    // Requirement ii, end-to-end flavor: a tampering warehouse that re-files
    // a ciphertext under a different attribute (so an unauthorized RC would
    // receive it with *its own* AID) produces a message the RC cannot
    // decrypt — the key is derived from the true attribute, and the AAD
    // binds the true header.
    let mut dep = Deployment::new(DeploymentConfig::test_default());
    dep.register_device("sd");
    dep.register_client("rc-a", "pw", &["A"]);
    dep.register_client("rc-b", "pw", &["B"]);
    let mut sd = dep.device("sd");
    sd.deposit("A", b"for A's readers only").unwrap();
    sd.deposit("B", b"b message").unwrap();

    // rc-b retrieves; simulate the malicious swap by handing rc-b A's
    // ciphertext fields under rc-b's B-attribute AID.
    let mut rc_a = dep.client("rc-a", "pw");
    let mut rc_b = dep.client("rc-b", "pw");
    let (_, a_msgs) = rc_a.retrieve(0).unwrap();
    let (token_b, b_msgs) = rc_b.retrieve(0).unwrap();
    let mut forged = a_msgs[0].clone();
    forged.aid = b_msgs[0].aid; // re-filed under B's AID

    let session = rc_b.open_pkg_session(&token_b).unwrap();
    // The PKG will extract a key for attribute B with A's nonce…
    let sk = rc_b.fetch_key(&session, forged.aid, &forged.nonce).unwrap();
    // …which cannot decrypt A's ciphertext.
    assert!(rc_b.decrypt_message(&forged, &sk).is_err());
}

#[test]
fn stored_header_tamper_detected_end_to_end() {
    // The AAD hardening delta: even though the MWS re-serializes headers,
    // any change to nonce/origin/timestamp breaks decryption at the RC.
    let mut dep = Deployment::new(DeploymentConfig::test_default());
    dep.register_device("sd");
    dep.register_client("rc", "pw", &["A"]);
    let mut sd = dep.device("sd");
    sd.deposit("A", b"m").unwrap();
    let mut rc = dep.client("rc", "pw");
    let (token, messages) = rc.retrieve(0).unwrap();
    let session = rc.open_pkg_session(&token).unwrap();
    let good = &messages[0];
    let sk = rc.fetch_key(&session, good.aid, &good.nonce).unwrap();

    // Baseline decrypts.
    assert_eq!(rc.decrypt_message(good, &sk).unwrap(), b"m");

    // Tampered AAD fields do not.
    let mut bad = good.clone();
    bad.aad[10] ^= 1;
    assert!(rc.decrypt_message(&bad, &sk).is_err());
}

#[test]
fn rc_cannot_learn_attribute_strings() {
    // "The attribute is not revealed to the RC" (§V.A): scan every byte the
    // RC receives for the attribute string.
    let attr = "ULTRA-SECRET-ATTRIBUTE-NAME";
    let mut dep = Deployment::new(DeploymentConfig::test_default());
    dep.register_device("sd");
    dep.register_client("rc", "pw", &[attr]);
    let mut sd = dep.device("sd");
    sd.deposit(attr, b"payload").unwrap();
    let mut rc = dep.client("rc", "pw");
    let (token, messages) = rc.retrieve(0).unwrap();
    let needle = attr.as_bytes();
    let mut all_rc_bytes = token.clone();
    for m in &messages {
        all_rc_bytes.extend_from_slice(&m.u);
        all_rc_bytes.extend_from_slice(&m.sealed);
        all_rc_bytes.extend_from_slice(&m.nonce);
        all_rc_bytes.extend_from_slice(&m.aad);
    }
    // PKG phase bytes too: confirmation + encrypted key.
    let session = rc.open_pkg_session(&token).unwrap();
    let _ = rc
        .fetch_key(&session, messages[0].aid, &messages[0].nonce)
        .unwrap();
    assert!(
        !all_rc_bytes.windows(needle.len()).any(|w| w == needle),
        "attribute string leaked to the RC"
    );
}

#[test]
fn unregistered_device_deposits_rejected() {
    let mut dep = Deployment::new(DeploymentConfig::test_default());
    dep.register_device("legit");
    dep.register_client("rc", "pw", &["A"]);
    let mut legit = dep.device("legit");
    let pdu = legit.compose_deposit("A", b"x");
    // Rewrite the claimed identity to an unregistered device.
    let Pdu::DepositRequest {
        timestamp,
        u,
        algo,
        sealed,
        attribute,
        nonce,
        mac,
        ..
    } = pdu
    else {
        unreachable!()
    };
    let forged = Pdu::DepositRequest {
        sd_id: "rogue".into(),
        timestamp,
        u,
        algo,
        sealed,
        attribute,
        nonce,
        mac,
    };
    let reply = dep.network().client("mws").call(&forged).unwrap();
    assert!(matches!(reply, Pdu::Error { code: 401, .. }));
    assert_eq!(dep.mws().message_count(), 0);
}

#[test]
fn disabled_device_is_cut_off() {
    let mut dep = Deployment::new(DeploymentConfig::test_default());
    dep.register_device("sd");
    dep.register_client("rc", "pw", &["A"]);
    let mut sd = dep.device("sd");
    sd.deposit("A", b"before").unwrap();
    assert!(dep.mws().disable_device("sd"));
    let err = sd.deposit("A", b"after").unwrap_err();
    assert!(matches!(
        err,
        mws::core::CoreError::Remote {
            code: mws::core::ErrorCode::AuthFailed,
            ..
        }
    ));
    assert_eq!(dep.mws().message_count(), 1);
}

#[test]
fn gatekeeper_auth_replay_rejected() {
    use mws::core::gatekeeper::compose_rc_auth;
    use mws::crypto::{Digest, HmacDrbg, Sha256};
    let mut dep = Deployment::new(DeploymentConfig::test_default());
    dep.register_client("rc", "pw", &["A"]);
    // Craft one auth blob and replay the identical RetrieveRequest.
    let mut rng = HmacDrbg::from_u64(9);
    let auth = compose_rc_auth(&mut rng, &Sha256::digest(b"pw"), "rc", dep.clock().now());
    let req = Pdu::RetrieveRequest {
        rc_id: "rc".into(),
        auth,
        since: 0,
        limit: 0,
    };
    let mws = dep.network().client("mws");
    assert!(matches!(
        mws.call(&req).unwrap(),
        Pdu::RetrieveResponse { .. }
    ));
    assert!(matches!(
        mws.call(&req).unwrap(),
        Pdu::Error { code: 409, .. }
    ));
}
