//! Integration: Figure 3's architecture — each named component exists,
//! carries its stated responsibility, and the composition refuses what the
//! components individually refuse.

use mws::core::clock::{LogicalClock, ReplayPolicy};
use mws::core::gatekeeper::{compose_rc_auth, Gatekeeper};
use mws::core::mms::MessageManagementSystem;
use mws::core::registry::DeviceRegistry;
use mws::core::sda::{deposit_mac, SdAuthenticator};
use mws::core::token::{TicketContent, TokenGenerator};
use mws::crypto::{Digest, HmacDrbg, RsaKeyPair, Sha256};
use mws::store::StorageKind;

#[test]
fn sda_guards_the_message_database() {
    // SD Authenticator: only MAC-valid deposits reach storage.
    let mut registry = DeviceRegistry::new();
    registry.register("sd", b"shared-key");
    let mut sda = SdAuthenticator::new(registry, ReplayPolicy::Off);
    let mut mms = MessageManagementSystem::open(StorageKind::Memory, StorageKind::Memory).unwrap();

    let mac = deposit_mac(b"shared-key", b"U", b"C", "A", b"n", "sd", 0);
    assert!(sda.verify(0, "sd", 0, b"U", b"C", "A", b"n", &mac).is_ok());
    mms.store_message("A", b"n", b"U", 3, b"C", "sd", 0)
        .unwrap();

    let bad_mac = deposit_mac(b"wrong-key", b"U", b"C", "A", b"n2", "sd", 0);
    assert!(sda
        .verify(0, "sd", 0, b"U", b"C", "A", b"n2", &bad_mac)
        .is_err());
    // The composition (tested e2e in protocol tests) discards it; here the
    // contract is that SDA said no.
    assert_eq!(mms.messages().len(), 1);
}

#[test]
fn gatekeeper_fronts_the_user_database() {
    let mut gk = Gatekeeper::open(StorageKind::Memory, ReplayPolicy::Off).unwrap();
    gk.register("rc", "password", b"pubkey").unwrap();
    let mut rng = HmacDrbg::from_u64(1);
    let blob = compose_rc_auth(&mut rng, &Sha256::digest(b"password"), "rc", 0);
    let rec = gk.verify(0, "rc", &blob).unwrap();
    assert_eq!(rec.public_key, b"pubkey");
}

#[test]
fn mms_joins_policy_and_message_databases() {
    let mut mms = MessageManagementSystem::open(StorageKind::Memory, StorageKind::Memory).unwrap();
    mms.store_message("A1", b"n1", b"u", 3, b"c", "sd", 1)
        .unwrap();
    mms.store_message("A2", b"n2", b"u", 3, b"c", "sd", 2)
        .unwrap();
    let aid = mms.grant("IDRC1", "A1").unwrap();
    let rows = mms.retrieve_for("IDRC1", 0, 0).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].1, aid);
    assert_eq!(rows[0].0.attribute, "A1");
}

#[test]
fn token_generator_hides_attributes_from_the_rc() {
    // TG: the RC can open the token (session key) but not the ticket.
    let mut rng = HmacDrbg::from_u64(2);
    let rsa = RsaKeyPair::generate(&mut rng, 512).unwrap();
    let tg = TokenGenerator::new(b"mws<->pkg");
    let session_key = TokenGenerator::fresh_session_key(&mut rng);
    let ticket = tg.build_ticket(
        &mut rng,
        &TicketContent {
            rc_id: "rc".into(),
            session_key: session_key.clone(),
            issued_at: 0,
            table: vec![(1, "SECRET-ATTRIBUTE".into())],
        },
    );
    let token = TokenGenerator::build_token(&mut rng, &rsa.public, &session_key, &ticket).unwrap();
    let (got_key, got_ticket) = TokenGenerator::parse_token(&rsa.private, &token).unwrap();
    assert_eq!(got_key, session_key);
    // The ticket is opaque: only the PKG secret opens it.
    assert!(TokenGenerator::open_ticket(&got_key, &got_ticket).is_none());
    let content = TokenGenerator::open_ticket(b"mws<->pkg", &got_ticket).unwrap();
    assert_eq!(content.table[0].1, "SECRET-ATTRIBUTE");
}

#[test]
fn clock_is_shared_infrastructure() {
    let clock = LogicalClock::new();
    let a = clock.clone();
    let b = clock.clone();
    a.advance(3);
    b.advance(4);
    assert_eq!(clock.now(), 7);
}

#[test]
fn deployment_exposes_every_figure3_component() {
    use mws::core::{Deployment, DeploymentConfig};
    let mut dep = Deployment::new(DeploymentConfig::test_default());
    // PKG endpoint answers parameter requests (PKG box).
    let reply = dep
        .network()
        .client("pkg")
        .call(&mws::wire::Pdu::ParamsRequest)
        .unwrap();
    assert!(matches!(reply, mws::wire::Pdu::ParamsResponse { .. }));
    // MWS endpoint rejects nonsense (Gatekeeper/SDA front).
    let reply = dep
        .network()
        .client("mws")
        .call(&mws::wire::Pdu::ParamsRequest)
        .unwrap();
    assert!(matches!(reply, mws::wire::Pdu::Error { code: 400, .. }));
    // Policy table (PD), message count (MD), audit (administrator alerts).
    dep.register_client("rc", "pw", &["A"]);
    assert_eq!(dep.mws().policy_table().len(), 1);
    assert_eq!(dep.mws().message_count(), 0);
    assert_eq!(dep.mws().rejection_count(), 0);
}
