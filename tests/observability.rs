//! End-to-end trace propagation: one deposit and one collect, each
//! followed by its trace id across every component it crossed.
//!
//! The topology is the TCP deployment (three daemons on loopback sockets,
//! §VI.C); all three run in this test process, so one ring-buffer sink
//! captures every structured event the gatekeeper front door, the
//! warehouse and the PKG emit. A trace id minted at the client must
//! reappear — unchanged — in the events of every hop and in the
//! warehouse's audit records.

use mws_core::audit::AuditEvent;
use mws_core::clock::ReplayPolicy;
use mws_core::protocol::{Deployment, DeploymentConfig};
use mws_obs::{Level, RingSink};
use mws_server::{GatekeeperFrontdoor, ServerConfig, TcpClient, TcpServer};
use std::sync::Arc;

/// One test function: the sink and level gate are process-global, so the
/// deposit and collect phases share a single scenario.
#[test]
fn one_trace_id_spans_client_gatekeeper_warehouse_and_pkg() {
    // Honor MWS_LOG first (the tier-1 smoke run sets it to check the
    // happy path stays free of error-level events on stderr), then open
    // the gate wide for the ring sink this test asserts on.
    mws_obs::init_from_env();
    let ring = RingSink::new(4096);
    mws_obs::add_sink(ring.clone() as Arc<dyn mws_obs::Sink>);
    mws_obs::set_max_level(Some(Level::Debug));

    let mut dep = Deployment::new(DeploymentConfig::test_default());
    dep.register_device("meter-1");
    dep.register_client("utility", "pw", &["ELECTRIC-APT9"]);

    let mms = {
        let service = dep.mws().clone();
        TcpServer::spawn(ServerConfig::default(), || service.as_service()).expect("bind mms")
    };
    let pkg = {
        let service = dep.pkg().clone();
        TcpServer::spawn(ServerConfig::default(), || service.as_service()).expect("bind pkg")
    };
    let gatekeeper = {
        let upstream = TcpClient::new(mms.local_addr()).into_client();
        let front =
            GatekeeperFrontdoor::new(dep.clock().clone(), ReplayPolicy::standard(), upstream);
        front.register(
            "utility",
            "pw",
            &dep.mws().client_public_key("utility").expect("registered"),
        );
        TcpServer::spawn(ServerConfig::default(), || front.as_service()).expect("bind gatekeeper")
    };

    // ---- deposit: SD → MMS → store → audit ----
    let mut meter = dep
        .device_with(
            "meter-1",
            TcpClient::new(mms.local_addr()).into_client(),
            &TcpClient::new(pkg.local_addr()).into_client(),
        )
        .expect("bootstrap over TCP");
    let message_id = meter.deposit("ELECTRIC-APT9", b"kwh=42.7").unwrap();

    let deposit_trace = dep
        .mws()
        .audit_events()
        .iter()
        .find_map(|r| match &r.event {
            AuditEvent::DepositAccepted { message_id: id, .. } if *id == message_id => {
                Some(r.trace_id)
            }
            _ => None,
        })
        .expect("deposit audit record");
    assert_ne!(
        deposit_trace, 0,
        "the audit record must carry the trace minted at the device"
    );
    let deposit_ack = ring
        .records()
        .into_iter()
        .find(|r| r.target == "mws_core" && r.message == "deposit acked")
        .expect("warehouse-side deposit event in the ring sink");
    assert_eq!(
        deposit_ack.trace.map(|t| t.trace_id),
        Some(deposit_trace),
        "warehouse log event and audit record disagree on the trace id"
    );

    // ---- collect: RC → gatekeeper → MMS (+ PKG session) ----
    ring.clear();
    let mut rc = dep.client_with(
        "utility",
        "pw",
        TcpClient::new(gatekeeper.local_addr()).into_client(),
        TcpClient::new(pkg.local_addr()).into_client(),
    );
    let msgs = rc.retrieve_and_decrypt(0).unwrap();
    assert_eq!(msgs.len(), 1);

    let records = ring.records();
    let trace_of = |target: &str, message: &str| -> u64 {
        let rec = records
            .iter()
            .find(|r| r.target == target && r.message == message)
            .unwrap_or_else(|| panic!("no '{message}' event from {target} in the ring sink"));
        rec.trace
            .unwrap_or_else(|| panic!("'{message}' from {target} is untraced"))
            .trace_id
    };
    let gw = trace_of("mws_gateway", "retrieve relayed upstream");
    let mms_served = trace_of("mws_core", "retrieve served");
    let pkg_session = trace_of("mws_pkg", "session opened");
    assert_eq!(
        gw, mms_served,
        "gatekeeper and warehouse hops share the trace id"
    );
    assert_eq!(gw, pkg_session, "PKG hop shares the collect trace id");
    assert_ne!(gw, deposit_trace, "deposit and collect are separate traces");

    let retrieve_trace = dep
        .mws()
        .audit_events()
        .iter()
        .find_map(|r| match &r.event {
            AuditEvent::RetrieveServed { rc_id, .. } if rc_id == "utility" => Some(r.trace_id),
            _ => None,
        })
        .expect("retrieve audit record");
    assert_eq!(
        retrieve_trace, gw,
        "the audit trail must carry the same collect trace id"
    );

    drop((mms, pkg, gatekeeper));
}
