//! Integration: the paper's Table 1 — identity–attribute mapping —
//! regenerated through the public service API.

use mws::core::{Deployment, DeploymentConfig};

/// Builds the exact population of Table 1 through the service API.
fn table1_deployment() -> Deployment {
    let mut dep = Deployment::new(DeploymentConfig::test_default());
    dep.register_client("IDRC1", "p1", &["A1", "A2"]);
    dep.register_client("IDRC2", "p2", &["A1"]);
    dep.register_client("IDRC3", "p3", &["A3"]);
    dep.register_client("IDRC4", "p4", &["A4"]);
    dep
}

#[test]
fn exact_table1_reproduction() {
    let dep = table1_deployment();
    let rows = dep.mws().policy_table();
    let expect: [(&str, &str, u64); 5] = [
        ("IDRC1", "A1", 1),
        ("IDRC1", "A2", 2),
        ("IDRC2", "A1", 3),
        ("IDRC3", "A3", 4),
        ("IDRC4", "A4", 5),
    ];
    assert_eq!(rows.len(), 5);
    for (row, (identity, attribute, aid)) in rows.iter().zip(expect) {
        assert_eq!(row.identity, identity);
        assert_eq!(row.attribute, attribute);
        assert_eq!(row.attribute_id, aid);
    }
}

#[test]
fn shared_attribute_distinct_aids_end_to_end() {
    // IDRC1 and IDRC2 both read A1 but through different AIDs; both decrypt
    // the same warehoused message.
    let mut dep = table1_deployment();
    dep.register_device("sd");
    let mut sd = dep.device("sd");
    sd.deposit("A1", b"shared reading").unwrap();

    let mut rc1 = dep.client("IDRC1", "p1");
    let mut rc2 = dep.client("IDRC2", "p2");
    let (_, m1) = rc1.retrieve(0).unwrap();
    let (_, m2) = rc2.retrieve(0).unwrap();
    assert_eq!(m1[0].message_id, m2[0].message_id, "same stored message");
    assert_eq!(m1[0].aid, 1);
    assert_eq!(m2[0].aid, 3, "different AID for the same attribute");

    assert_eq!(
        rc1.retrieve_and_decrypt(0).unwrap()[0].plaintext,
        b"shared reading"
    );
    assert_eq!(
        rc2.retrieve_and_decrypt(0).unwrap()[0].plaintext,
        b"shared reading"
    );
}

#[test]
fn aids_survive_revocation_without_reuse() {
    let mut dep = table1_deployment();
    dep.mws().revoke("IDRC1", "A1").unwrap();
    dep.register_client("IDRC5", "p5", &["A5"]);
    let rows = dep.mws().policy_table();
    // Row with AID 1 is gone; the new grant takes AID 6, never recycling 1.
    assert!(!rows.iter().any(|r| r.attribute_id == 1));
    assert!(rows
        .iter()
        .any(|r| r.identity == "IDRC5" && r.attribute_id == 6));
}

#[test]
fn printed_table_matches_paper_format() {
    let dep = table1_deployment();
    let mut out = String::from("Identity Attribute Attribute ID\n");
    for row in dep.mws().policy_table() {
        out.push_str(&format!(
            "{} {} {}\n",
            row.identity, row.attribute, row.attribute_id
        ));
    }
    let expect = "Identity Attribute Attribute ID\n\
                  IDRC1 A1 1\n\
                  IDRC1 A2 2\n\
                  IDRC2 A1 3\n\
                  IDRC3 A3 4\n\
                  IDRC4 A4 5\n";
    assert_eq!(out, expect);
}
