//! Acceptance test for the TCP deployment: the paper's four-server
//! topology (§VI.C) on real loopback sockets, in one test process.
//!
//! Three daemons — MMS, PKG, and the Gatekeeper front door — each run a
//! `TcpServer` on an ephemeral port. The smart device and receiving client
//! are minted with socket-backed transports (`TcpClient`), so every PDU of
//! the deposit → ticket → key-issue → retrieve flow crosses a real TCP
//! connection. Shutdown must join every server thread.
//!
//! The whole suite honors `MWS_TRANSPORT=secure`: every link then runs
//! the IBS-authenticated handshake + AES-GCM record layer of DESIGN.md
//! §12, with no change to a single assertion. Dedicated tests below also
//! pin the secure flow (on both cores), the downgrade paths, and rekey
//! under load regardless of the environment.

use mws_core::clock::ReplayPolicy;
use mws_core::protocol::{Deployment, DeploymentConfig};
use mws_server::{
    ClientConfig, GatekeeperFrontdoor, IbsAuth, SecureClientSettings, SecureSettings, ServerConfig,
    ServerCore, TcpClient, TcpServer, TransportMode, ID_CLIENT, ID_GATEKEEPER, ID_MMS, ID_PKG,
};
use mws_wire::secure::SessionConfig;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// Server-side secure settings proving `identity`, from the topology's
/// deployment (what `SecureSettings::for_role` does for real daemons).
fn secure_settings(dep: &Deployment, identity: &str) -> Arc<SecureSettings> {
    Arc::new(SecureSettings {
        auth: Arc::new(IbsAuth::from_deployment(dep, identity)),
        session: SessionConfig::default(),
        handshake_timeout: Duration::from_secs(5),
    })
}

/// A client transport in `mode`: plaintext, or authenticating as
/// `identity` and pinning the server's `expect` identity.
fn client_for(
    dep: &Deployment,
    addr: SocketAddr,
    mode: TransportMode,
    identity: &str,
    expect: &str,
) -> mws_net::Client {
    if mode.is_secure() {
        TcpClient::with_config(
            addr,
            ClientConfig {
                secure: Some(Arc::new(SecureClientSettings::new(
                    dep,
                    identity,
                    Some(expect),
                ))),
                ..ClientConfig::default()
            },
        )
        .into_client()
    } else {
        TcpClient::new(addr).into_client()
    }
}

/// The three servers plus the provisioning authority behind them.
struct TcpTopology {
    dep: Deployment,
    mode: TransportMode,
    mms: TcpServer,
    pkg: TcpServer,
    gatekeeper: TcpServer,
}

impl TcpTopology {
    fn mms_client(&self) -> mws_net::Client {
        client_for(
            &self.dep,
            self.mms.local_addr(),
            self.mode,
            ID_CLIENT,
            ID_MMS,
        )
    }

    fn pkg_client(&self) -> mws_net::Client {
        client_for(
            &self.dep,
            self.pkg.local_addr(),
            self.mode,
            ID_CLIENT,
            ID_PKG,
        )
    }

    fn gatekeeper_client(&self) -> mws_net::Client {
        client_for(
            &self.dep,
            self.gatekeeper.local_addr(),
            self.mode,
            ID_CLIENT,
            ID_GATEKEEPER,
        )
    }
}

fn spawn_topology() -> TcpTopology {
    spawn_topology_with(TransportMode::from_env(), ServerCore::default())
}

fn spawn_topology_with(mode: TransportMode, core: ServerCore) -> TcpTopology {
    let mut dep = Deployment::new(DeploymentConfig::test_default());
    dep.register_device("meter-1");
    dep.register_client("utility", "pw", &["ELECTRIC-APT9"]);

    let cfg = |dep: &Deployment, identity: &str| ServerConfig {
        core,
        secure: mode.is_secure().then(|| secure_settings(dep, identity)),
        ..ServerConfig::default()
    };
    let mms = {
        let service = dep.mws().clone();
        TcpServer::spawn(cfg(&dep, ID_MMS), || service.as_service()).expect("bind mms")
    };
    let pkg = {
        let service = dep.pkg().clone();
        TcpServer::spawn(cfg(&dep, ID_PKG), || service.as_service()).expect("bind pkg")
    };
    let gatekeeper = {
        // The front door dials the MMS daemon over TCP, like its own
        // process would, and holds its own replica of the user table. In
        // secure mode the relay hop authenticates as the gatekeeper and
        // pins the warehouse identity.
        let upstream = client_for(&dep, mms.local_addr(), mode, ID_GATEKEEPER, ID_MMS);
        let front =
            GatekeeperFrontdoor::new(dep.clock().clone(), ReplayPolicy::standard(), upstream);
        front.register(
            "utility",
            "pw",
            &dep.mws().client_public_key("utility").expect("registered"),
        );
        TcpServer::spawn(cfg(&dep, ID_GATEKEEPER), || front.as_service()).expect("bind gatekeeper")
    };
    TcpTopology {
        dep,
        mode,
        mms,
        pkg,
        gatekeeper,
    }
}

/// Both cores available on this platform (epoll is Linux-only).
fn cores() -> Vec<ServerCore> {
    if cfg!(target_os = "linux") {
        vec![ServerCore::EventLoop, ServerCore::Threaded]
    } else {
        vec![ServerCore::Threaded]
    }
}

#[test]
fn four_server_flow_over_real_sockets() {
    let mut topo = spawn_topology();

    // SD side: deposits go directly to the warehouse (§V.D phase 1).
    let (mms_c, pkg_c) = (topo.mms_client(), topo.pkg_client());
    let mut meter = topo
        .dep
        .device_with("meter-1", mms_c, &pkg_c)
        .expect("bootstrap IBE params over TCP");
    let id1 = meter.deposit("ELECTRIC-APT9", b"kwh=42.7").unwrap();
    let id2 = meter.deposit("ELECTRIC-APT9", b"kwh=43.1").unwrap();
    assert_ne!(id1, id2);

    // RC side: retrievals enter through the Gatekeeper front door, which
    // authenticates and relays to the MMS; key issuance goes to the PKG
    // with the warehouse-minted ticket (phases 2 and 3).
    let (gk_c, pkg_c) = (topo.gatekeeper_client(), topo.pkg_client());
    let mut rc = topo.dep.client_with("utility", "pw", gk_c, pkg_c);
    let msgs = rc.retrieve_and_decrypt(0).unwrap();
    assert_eq!(msgs.len(), 2);
    let mut plaintexts: Vec<&[u8]> = msgs.iter().map(|m| m.plaintext.as_slice()).collect();
    plaintexts.sort();
    assert_eq!(plaintexts, vec![b"kwh=42.7".as_slice(), b"kwh=43.1"]);

    // Wrong password dies at the front door; the warehouse never sees it.
    let (gk_c, pkg_c) = (topo.gatekeeper_client(), topo.pkg_client());
    let mut intruder = topo.dep.client_with("utility", "wrong", gk_c, pkg_c);
    assert!(matches!(
        intruder.retrieve_and_decrypt(0).unwrap_err(),
        mws_core::CoreError::Remote {
            code: mws_core::ErrorCode::AuthFailed,
            ..
        }
    ));
    assert_eq!(topo.dep.mws().rejection_count(), 0);

    // Graceful shutdown joins every thread of every server — accept loop +
    // event loops + workers on the default epoll core, accept loop +
    // workers on the threaded fallback — even with the clients' persistent
    // connections still open.
    let cfg = ServerConfig::default();
    let expected = if cfg!(target_os = "linux") && cfg.core == ServerCore::EventLoop {
        1 + cfg.event_loops + cfg.workers
    } else {
        1 + cfg.workers
    };
    assert_eq!(topo.mms.shutdown(), expected);
    assert_eq!(topo.pkg.shutdown(), expected);
    assert_eq!(topo.gatekeeper.shutdown(), expected);
}

#[test]
fn deposit_replay_rejected_over_tcp() {
    let mut topo = spawn_topology();
    let mws = topo.mms_client();
    let pkg = topo.pkg_client();
    let mut meter = topo.dep.device_with("meter-1", mws.clone(), &pkg).unwrap();
    let pdu = meter.compose_deposit("ELECTRIC-APT9", b"reading");
    assert!(matches!(
        mws.call(&pdu).unwrap(),
        mws_wire::Pdu::DepositAck { .. }
    ));
    // An attacker replaying the captured frame is refused.
    assert!(matches!(
        mws.call(&pdu).unwrap(),
        mws_wire::Pdu::Error { code: 409, .. }
    ));
}

#[test]
fn secure_transport_full_flow_on_both_cores() {
    // The end-to-end deposit → ticket → key-issue → retrieve flow with
    // every link handshaked and sealed, on each connection engine — the
    // epoll core's HANDSHAKING→OPEN state machine and the threaded
    // core's handshake-first reader must be behaviorally identical.
    for core in cores() {
        let mut topo = spawn_topology_with(TransportMode::Secure, core);
        let (mms_c, pkg_c) = (topo.mms_client(), topo.pkg_client());
        let mut meter = topo
            .dep
            .device_with("meter-1", mms_c, &pkg_c)
            .expect("bootstrap over secure sessions");
        meter.deposit("ELECTRIC-APT9", b"kwh=7.7").unwrap();
        let (gk_c, pkg_c) = (topo.gatekeeper_client(), topo.pkg_client());
        let mut rc = topo.dep.client_with("utility", "pw", gk_c, pkg_c);
        let msgs = rc.retrieve_and_decrypt(0).unwrap();
        assert_eq!(msgs.len(), 1, "core {core:?}");
        assert_eq!(msgs[0].plaintext, b"kwh=7.7");
    }
}

#[test]
fn plaintext_client_refused_with_426_by_secure_server() {
    // A legacy plaintext client dialing a secure listener must get an
    // explicit 426 in its own protocol — not a hang, not a reset — on
    // both cores.
    for core in cores() {
        let dep = Deployment::new(DeploymentConfig::test_default());
        let service = dep.mws().clone();
        let server = TcpServer::spawn(
            ServerConfig {
                core,
                secure: Some(secure_settings(&dep, ID_MMS)),
                ..ServerConfig::default()
            },
            || service.as_service(),
        )
        .unwrap();
        let plain = TcpClient::with_config(
            server.local_addr(),
            ClientConfig {
                attempts: 1,
                ..ClientConfig::default()
            },
        )
        .into_client();
        match plain.call(&mws_wire::Pdu::StatsRequest) {
            Ok(mws_wire::Pdu::Error { code: 426, detail }) => {
                assert!(detail.contains("secure"), "core {core:?}: {detail}")
            }
            other => panic!("core {core:?}: expected 426, got {other:?}"),
        }
    }
}

#[test]
fn secure_client_to_plain_server_fails_cleanly() {
    // The reverse misconfiguration: the server speaks plaintext, the
    // client requires a handshake. The plain server rejects the HELLO
    // record as an unknown envelope version; the client must surface a
    // clean transport error (no panic, no partial session).
    let dep = Deployment::new(DeploymentConfig::test_default());
    let service = dep.mws().clone();
    let server = TcpServer::spawn(ServerConfig::default(), || service.as_service()).unwrap();
    let secure = client_for(
        &dep,
        server.local_addr(),
        TransportMode::Secure,
        ID_CLIENT,
        ID_MMS,
    );
    assert!(secure.call(&mws_wire::Pdu::StatsRequest).is_err());
}

#[test]
fn wrong_peer_identity_refused_end_to_end() {
    // The server proves `mws/pkg`; a client pinning `mws/mms` must
    // abort the handshake — a verified-but-wrong daemon never sees a
    // single sealed frame.
    let dep = Deployment::new(DeploymentConfig::test_default());
    let service = dep.pkg().clone();
    let server = TcpServer::spawn(
        ServerConfig {
            secure: Some(secure_settings(&dep, ID_PKG)),
            ..ServerConfig::default()
        },
        || service.as_service(),
    )
    .unwrap();
    let pinned_wrong = client_for(
        &dep,
        server.local_addr(),
        TransportMode::Secure,
        ID_CLIENT,
        ID_MMS,
    );
    assert!(pinned_wrong.call(&mws_wire::Pdu::StatsRequest).is_err());
}

#[test]
fn rekey_under_load_on_both_cores() {
    // A tiny rekey interval forces many mid-session key ratchets in
    // both directions; every exchange must still round-trip because
    // both ends count records in lockstep. 64 calls at rekey_every=4 is
    // ~16 generations per direction.
    for core in cores() {
        let dep = Deployment::new(DeploymentConfig::test_default());
        let session = SessionConfig { rekey_every: 4 };
        let service = dep.mws().clone();
        let server = TcpServer::spawn(
            ServerConfig {
                core,
                secure: Some(Arc::new(SecureSettings {
                    auth: Arc::new(IbsAuth::from_deployment(&dep, ID_MMS)),
                    session: session.clone(),
                    handshake_timeout: Duration::from_secs(5),
                })),
                ..ServerConfig::default()
            },
            || service.as_service(),
        )
        .unwrap();
        let client = TcpClient::with_config(
            server.local_addr(),
            ClientConfig {
                secure: Some(Arc::new(SecureClientSettings {
                    auth: Arc::new(IbsAuth::from_deployment(&dep, ID_CLIENT)),
                    expect_peer: Some(ID_MMS.into()),
                    session,
                })),
                ..ClientConfig::default()
            },
        )
        .into_client();
        for i in 0..64 {
            match client.call(&mws_wire::Pdu::StatsRequest) {
                Ok(mws_wire::Pdu::StatsResponse { .. }) => {}
                other => panic!("core {core:?}, call {i}: {other:?}"),
            }
        }
    }
}
