//! Acceptance test for the TCP deployment: the paper's four-server
//! topology (§VI.C) on real loopback sockets, in one test process.
//!
//! Three daemons — MMS, PKG, and the Gatekeeper front door — each run a
//! `TcpServer` on an ephemeral port. The smart device and receiving client
//! are minted with socket-backed transports (`TcpClient`), so every PDU of
//! the deposit → ticket → key-issue → retrieve flow crosses a real TCP
//! connection. Shutdown must join every server thread.

use mws_core::clock::ReplayPolicy;
use mws_core::protocol::{Deployment, DeploymentConfig};
use mws_server::{GatekeeperFrontdoor, ServerConfig, ServerCore, TcpClient, TcpServer};

/// The three servers plus the provisioning authority behind them.
struct TcpTopology {
    dep: Deployment,
    mms: TcpServer,
    pkg: TcpServer,
    gatekeeper: TcpServer,
}

fn spawn_topology() -> TcpTopology {
    let mut dep = Deployment::new(DeploymentConfig::test_default());
    dep.register_device("meter-1");
    dep.register_client("utility", "pw", &["ELECTRIC-APT9"]);

    let mms = {
        let service = dep.mws().clone();
        TcpServer::spawn(ServerConfig::default(), || service.as_service()).expect("bind mms")
    };
    let pkg = {
        let service = dep.pkg().clone();
        TcpServer::spawn(ServerConfig::default(), || service.as_service()).expect("bind pkg")
    };
    let gatekeeper = {
        // The front door dials the MMS daemon over TCP, like its own
        // process would, and holds its own replica of the user table.
        let upstream = TcpClient::new(mms.local_addr()).into_client();
        let front =
            GatekeeperFrontdoor::new(dep.clock().clone(), ReplayPolicy::standard(), upstream);
        front.register(
            "utility",
            "pw",
            &dep.mws().client_public_key("utility").expect("registered"),
        );
        TcpServer::spawn(ServerConfig::default(), || front.as_service()).expect("bind gatekeeper")
    };
    TcpTopology {
        dep,
        mms,
        pkg,
        gatekeeper,
    }
}

#[test]
fn four_server_flow_over_real_sockets() {
    let mut topo = spawn_topology();

    // SD side: deposits go directly to the warehouse (§V.D phase 1).
    let mut meter = topo
        .dep
        .device_with(
            "meter-1",
            TcpClient::new(topo.mms.local_addr()).into_client(),
            &TcpClient::new(topo.pkg.local_addr()).into_client(),
        )
        .expect("bootstrap IBE params over TCP");
    let id1 = meter.deposit("ELECTRIC-APT9", b"kwh=42.7").unwrap();
    let id2 = meter.deposit("ELECTRIC-APT9", b"kwh=43.1").unwrap();
    assert_ne!(id1, id2);

    // RC side: retrievals enter through the Gatekeeper front door, which
    // authenticates and relays to the MMS; key issuance goes to the PKG
    // with the warehouse-minted ticket (phases 2 and 3).
    let mut rc = topo.dep.client_with(
        "utility",
        "pw",
        TcpClient::new(topo.gatekeeper.local_addr()).into_client(),
        TcpClient::new(topo.pkg.local_addr()).into_client(),
    );
    let msgs = rc.retrieve_and_decrypt(0).unwrap();
    assert_eq!(msgs.len(), 2);
    let mut plaintexts: Vec<&[u8]> = msgs.iter().map(|m| m.plaintext.as_slice()).collect();
    plaintexts.sort();
    assert_eq!(plaintexts, vec![b"kwh=42.7".as_slice(), b"kwh=43.1"]);

    // Wrong password dies at the front door; the warehouse never sees it.
    let mut intruder = topo.dep.client_with(
        "utility",
        "wrong",
        TcpClient::new(topo.gatekeeper.local_addr()).into_client(),
        TcpClient::new(topo.pkg.local_addr()).into_client(),
    );
    assert!(matches!(
        intruder.retrieve_and_decrypt(0).unwrap_err(),
        mws_core::CoreError::Remote {
            code: mws_core::ErrorCode::AuthFailed,
            ..
        }
    ));
    assert_eq!(topo.dep.mws().rejection_count(), 0);

    // Graceful shutdown joins every thread of every server — accept loop +
    // event loops + workers on the default epoll core, accept loop +
    // workers on the threaded fallback — even with the clients' persistent
    // connections still open.
    let cfg = ServerConfig::default();
    let expected = if cfg!(target_os = "linux") && cfg.core == ServerCore::EventLoop {
        1 + cfg.event_loops + cfg.workers
    } else {
        1 + cfg.workers
    };
    assert_eq!(topo.mms.shutdown(), expected);
    assert_eq!(topo.pkg.shutdown(), expected);
    assert_eq!(topo.gatekeeper.shutdown(), expected);
}

#[test]
fn deposit_replay_rejected_over_tcp() {
    let mut topo = spawn_topology();
    let mws = TcpClient::new(topo.mms.local_addr()).into_client();
    let mut meter = topo
        .dep
        .device_with(
            "meter-1",
            mws.clone(),
            &TcpClient::new(topo.pkg.local_addr()).into_client(),
        )
        .unwrap();
    let pdu = meter.compose_deposit("ELECTRIC-APT9", b"reading");
    assert!(matches!(
        mws.call(&pdu).unwrap(),
        mws_wire::Pdu::DepositAck { .. }
    ));
    // An attacker replaying the captured frame is refused.
    assert!(matches!(
        mws.call(&pdu).unwrap(),
        mws_wire::Pdu::Error { code: 409, .. }
    ));
}
