//! `mws` — End-to-end confidential message warehousing with
//! Identity-Based Encryption.
//!
//! Reproduction of *Karabulut et al., "End-to-End Confidentiality for a
//! Message Warehousing Service Using Identity-Based Encryption"* (ICDE
//! Workshops 2010). This facade crate re-exports the whole workspace:
//!
//! * [`core`] — the MWS protocol and all Figure 3 components.
//! * [`ibe`] — Boneh–Franklin IBE, threshold PKG, pairing-based signatures.
//! * [`pairing`] — the supersingular curve + Tate pairing substrate.
//! * [`crypto`] — hashes, MACs, symmetric ciphers, DRBG, RSA baseline.
//! * [`bigint`] — fixed-width big-integer arithmetic.
//! * [`store`] — the embedded storage engine (message/policy/user tables).
//! * [`wire`] — the binary protocol codec.
//! * [`net`] — the deterministic in-process transport.
//!
//! See `examples/quickstart.rs` for the fastest end-to-end tour, and
//! `DESIGN.md` / `EXPERIMENTS.md` for the reproduction methodology.
//!
//! ```
//! use mws::core::{Deployment, DeploymentConfig};
//!
//! let mut dep = Deployment::new(DeploymentConfig::test_default());
//! dep.register_device("water-meter-1");
//! dep.register_client("water-co", "secret", &["WATER-APT-3"]);
//! let mut meter = dep.device("water-meter-1");
//! meter.deposit("WATER-APT-3", b"m3=1.7").unwrap();
//! let mut rc = dep.client("water-co", "secret");
//! assert_eq!(rc.retrieve_and_decrypt(0).unwrap()[0].plaintext, b"m3=1.7");
//! ```

#![forbid(unsafe_code)]

pub use mws_bigint as bigint;
pub use mws_core as core;
pub use mws_crypto as crypto;
pub use mws_ibe as ibe;
pub use mws_net as net;
pub use mws_pairing as pairing;
pub use mws_store as store;
pub use mws_wire as wire;
