#!/usr/bin/env bash
# Offline development check: patch the stub crates in, build and run the
# offline-safe test suite, then unpatch — even on failure.
#
# Use this inside a container with no crates.io access. The proptest-based
# test files and criterion benches cannot compile against the (empty)
# proptest/criterion stubs, so this targets --lib and the non-property
# integration tests; CI runs the full suite via scripts/tier1.sh instead.
set -euo pipefail
cd "$(dirname "$0")/.."

# Never touch the network: the stub patch satisfies every crates-io
# dependency from local paths, so resolution must not consult the index.
export CARGO_NET_OFFLINE=true

if grep -q "OFFLINE STUB PATCH" Cargo.toml; then
  echo "Cargo.toml is already patched; refusing to double-patch" >&2
  exit 1
fi

# Keep a byte-exact copy so unpatching cannot disturb the manifest (a
# marker-stripping sed can eat trailing blank lines).
ORIG_MANIFEST="$(mktemp)"
cp Cargo.toml "$ORIG_MANIFEST"

cleanup() {
  cp "$ORIG_MANIFEST" Cargo.toml
  rm -f "$ORIG_MANIFEST" Cargo.lock
}
trap cleanup EXIT

cat stubs/patch.toml >> Cargo.toml

echo "==> offline build"
cargo build --workspace --exclude mws-bench

echo "==> offline lib tests"
cargo test -q -p mws-obs -p mws-bigint -p mws-crypto -p mws-pairing -p mws-ibe \
  -p mws-store -p mws-wire -p mws-net -p mws-core -p mws-cluster -p mws-server --lib

echo "==> offline integration tests (non-property)"
cargo test -q -p mws \
  --test architecture --test chaos --test confidentiality \
  --test config_matrix --test distribution_points --test observability \
  --test persistence --test policy_table --test protocol_flow \
  --test revocation --test tcp_deployment --test utility_scenario \
  --test cluster_chaos

echo "==> offline secure-transport loopback (MWS_TRANSPORT=secure tcp_deployment)"
MWS_TRANSPORT=secure cargo test -q -p mws --test tcp_deployment

echo "==> offline doctests (crates under #![deny(missing_docs)])"
cargo test -q -p mws-store -p mws-server -p mws-wire --doc

echo "==> crypto_bench --smoke (fast-path bit-identity gate)"
# The crypto_bench and load_bench binaries are serde-free, so they build
# against the stubs even though the rest of mws-bench (report, criterion
# benches) cannot.
cargo run -q --release -p mws-bench --bin crypto_bench -- --smoke

echo "==> load_bench --smoke (durable-before-ack + dedup under socket load)"
cargo run -q --release -p mws-bench --bin load_bench -- --smoke

echo "==> load_bench --cluster --smoke (3-node R=2 quorum acks, exactly R copies)"
cargo run -q --release -p mws-bench --bin load_bench -- --cluster --smoke

echo "==> load_bench --rebalance --smoke (live join mid-load, exactly R copies after evict)"
cargo run -q --release -p mws-bench --bin load_bench -- --rebalance --smoke

echo "==> load_bench --connections --smoke (idle fleet on the event core, bursts all acked)"
cargo run -q --release -p mws-bench --bin load_bench -- --connections --smoke

echo "==> load_bench --secure --smoke (IBS handshake + sealed deposits all acked)"
cargo run -q --release -p mws-bench --bin load_bench -- --secure --smoke

echo "==> offline check passed (stubs unpatch on exit)"
