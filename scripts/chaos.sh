#!/usr/bin/env bash
# Chaos gate: runs the seed-deterministic chaos suite (tests/chaos.rs)
# once per pinned seed. On any failure it prints the seed and the exact
# command that reproduces the run bit-for-bit.
#
# Usage:
#   scripts/chaos.sh              # all pinned seeds
#   scripts/chaos.sh 91 1234      # explicit seed list
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS=("$@")
if [ ${#SEEDS[@]} -eq 0 ]; then
  SEEDS=(3 17 91)
fi

for seed in "${SEEDS[@]}"; do
  echo "==> chaos suite, seed ${seed}"
  # --nocapture: pinned-seed runs print each scenario's metrics snapshot
  # (request counts, retry/breaker counters, latency quantiles), and with
  # MWS_LOG=debug every structured event with its trace id.
  if ! MWS_CHAOS_SEED="${seed}" cargo test -q -p mws --test chaos -- --nocapture; then
    echo "" >&2
    echo "chaos suite FAILED at seed ${seed}" >&2
    echo "reproduce with: MWS_CHAOS_SEED=${seed} cargo test -p mws --test chaos" >&2
    exit 1
  fi
done

# One extra pinned pass of the secure-transport scenario alone: the
# handshake-fault schedule (truncation/reset/stall landing inside the
# three-message handshake, DESIGN.md §12) at a seed outside the default
# list, so handshake robustness is gated even when someone trims SEEDS.
echo "==> secure handshake-fault scenario, pinned seed 4242"
if ! MWS_CHAOS_SEED=4242 cargo test -q -p mws --test chaos secure_session -- --nocapture; then
  echo "" >&2
  echo "secure handshake-fault scenario FAILED at seed 4242" >&2
  echo "reproduce with: MWS_CHAOS_SEED=4242 cargo test -p mws --test chaos secure_session" >&2
  exit 1
fi

echo "==> chaos gate passed (${#SEEDS[@]} seed(s) + pinned handshake-fault seed)"
