#!/usr/bin/env bash
# Benchmark baselines, regenerated at the repo root.
#
# Targets:
#   scripts/bench.sh             # crypto microbenches  -> BENCH_crypto.json
#   scripts/bench.sh --server    # socket load benchmark -> BENCH_server.json
#   scripts/bench.sh --all       # both
#
# Iteration counts are pinned inside the binaries (crypto: 200 @ Toy,
# 40 @ Light, median of 5 runs per row; server: 16 clients, 6,400 single +
# 10,240 batched deposits per shard count) so two machines produce
# comparable JSON shapes and any row can be diffed against a committed
# baseline.
#
# Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

target="${1:-crypto}"

run_crypto() {
  echo "==> cargo run --release -p mws-bench --bin crypto_bench"
  cargo run --release -p mws-bench --bin crypto_bench >/dev/null
  echo "==> BENCH_crypto.json written"
}

run_server() {
  echo "==> cargo run --release -p mws-bench --bin load_bench"
  cargo run --release -p mws-bench --bin load_bench
  echo "==> BENCH_server.json written"
}

case "${target}" in
  crypto)       run_crypto ;;
  --server)     run_server ;;
  --all)        run_crypto; run_server ;;
  *)            echo "usage: scripts/bench.sh [--server|--all]" >&2; exit 2 ;;
esac
