#!/usr/bin/env bash
# Benchmark baselines, regenerated at the repo root.
#
# Targets:
#   scripts/bench.sh             # crypto microbenches  -> BENCH_crypto.json
#   scripts/bench.sh --server    # socket load benchmark -> BENCH_server.json
#   scripts/bench.sh --cluster   # N-node quorum benchmark -> cluster key in BENCH_server.json
#   scripts/bench.sh --rebalance # live-join benchmark -> rebalance key in BENCH_server.json
#   scripts/bench.sh --connections # 10k-connection fleet benchmark -> connections key in BENCH_server.json
#   scripts/bench.sh --secure    # transport-security overhead -> secure key in BENCH_server.json
#   scripts/bench.sh --all       # all of the above
#
# Iteration counts are pinned inside the binaries (crypto: 200 @ Toy,
# 40 @ Light, median of 5 runs per row; server: 16 clients, 6,400 single +
# 10,240 batched deposits per shard count) so two machines produce
# comparable JSON shapes and any row can be diffed against a committed
# baseline.
#
# Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

target="${1:-crypto}"

run_crypto() {
  echo "==> cargo run --release -p mws-bench --bin crypto_bench"
  cargo run --release -p mws-bench --bin crypto_bench >/dev/null
  echo "==> BENCH_crypto.json written"
}

run_server() {
  echo "==> cargo run --release -p mws-bench --bin load_bench"
  cargo run --release -p mws-bench --bin load_bench
  echo "==> BENCH_server.json written"
}

run_cluster() {
  echo "==> cargo run --release -p mws-bench --bin load_bench -- --cluster"
  cargo run --release -p mws-bench --bin load_bench -- --cluster
  echo "==> BENCH_server.json cluster section written"
}

run_rebalance() {
  echo "==> cargo run --release -p mws-bench --bin load_bench -- --rebalance"
  cargo run --release -p mws-bench --bin load_bench -- --rebalance
  echo "==> BENCH_server.json rebalance section written"
}

run_connections() {
  echo "==> cargo run --release -p mws-bench --bin load_bench -- --connections"
  cargo run --release -p mws-bench --bin load_bench -- --connections
  echo "==> BENCH_server.json connections section written"
}

run_secure() {
  echo "==> cargo run --release -p mws-bench --bin load_bench -- --secure"
  cargo run --release -p mws-bench --bin load_bench -- --secure
  echo "==> BENCH_server.json secure section written"
}

case "${target}" in
  crypto)        run_crypto ;;
  --server)      run_server ;;
  --cluster)     run_cluster ;;
  --rebalance)   run_rebalance ;;
  --connections) run_connections ;;
  --secure)      run_secure ;;
  --all)         run_crypto; run_server; run_cluster; run_rebalance; run_connections; run_secure ;;
  *)             echo "usage: scripts/bench.sh [--server|--cluster|--rebalance|--connections|--secure|--all]" >&2; exit 2 ;;
esac
