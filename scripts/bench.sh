#!/usr/bin/env bash
# Crypto benchmark baseline: regenerates BENCH_crypto.json at the repo root.
#
# Iteration counts are pinned inside the binary (200 @ Toy, 40 @ Light,
# median of 5 runs per row) so two machines produce comparable JSON shapes
# and any row can be diffed against a committed baseline.
#
# Run from the repository root: scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo run --release -p mws-bench --bin crypto_bench"
cargo run --release -p mws-bench --bin crypto_bench >/dev/null

echo "==> BENCH_crypto.json written"
