#!/usr/bin/env bash
# Stats-plane scraper: asks each running daemon for its Stats admin PDU
# and prints the Prometheus-style text, one section per daemon.
#
# Usage:
#   scripts/stats.sh                      # the three fixed ports
#   scripts/stats.sh 127.0.0.1:7101 ...   # explicit daemon addresses
#   scripts/stats.sh --shards [...]       # + per-shard warehouse summary
#
# Exit code = number of daemons that could not be scraped.
set -euo pipefail
cd "$(dirname "$0")/.."

exec cargo run -q --release -p mws-server --bin mws-stats -- "$@"
