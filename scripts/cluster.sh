#!/usr/bin/env bash
# Local 3-node warehouse cluster behind a cluster-mode front door, plus
# live membership orders against it.
#
# With no arguments: spawns three mws-mmsd warehouse nodes (ports
# 7111-7113), one mws-pkgd (7102) and one mws-gatekeeperd in cluster mode
# (7103, R=2 W=2), all provisioned from the same seed so every node
# derives identical key material. Ctrl-C tears the whole topology down.
#
# Usage:
#   scripts/cluster.sh                     # seed 42, one device + one client
#   MWS_SEED=7 scripts/cluster.sh          # a different deployment seed
#
# Against a running topology (from a second shell):
#   scripts/cluster.sh join 127.0.0.1:7114   # spawn a 4th warehouse and
#                                            # stream its arcs to it live
#   scripts/cluster.sh drain 127.0.0.1:7113  # hand a node's arcs off and
#                                            # drop it from the ring
#   scripts/cluster.sh status                # ring epoch + member table
#
# Poke it while it runs:
#   scripts/stats.sh --cluster 127.0.0.1:7103   # per-node membership table
#   kill %2  (in this script's job table)       # kill a node; deposits keep acking
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${MWS_SEED:-42}"
PROVISION=(--seed "$SEED" --device meter-1 --client "utility:pw:ELECTRIC-APT9,WATER-APT9")
NODES=(127.0.0.1:7111 127.0.0.1:7112 127.0.0.1:7113)
DOOR=127.0.0.1:7103

echo "==> building daemons"
cargo build -q --release -p mws-server --bins

BIN=target/release

# Membership subcommands order a running front door (started by the
# no-argument form of this script) and exit; only the join's new
# warehouse daemon outlives them.
case "${1:-}" in
  status)
    exec "$BIN/mws-clusterctl" status --addr "$DOOR"
    ;;
  join)
    ADDR="${2:?usage: scripts/cluster.sh join <host:port>}"
    "$BIN/mws-mmsd" --listen "$ADDR" --shards 2 "${PROVISION[@]}" &
    disown
    echo "==> warehouse node on $ADDR (pid $!); ordering join"
    exec "$BIN/mws-clusterctl" join "$ADDR" --addr "$DOOR" "${PROVISION[@]}" --wait 120
    ;;
  drain)
    ADDR="${2:?usage: scripts/cluster.sh drain <host:port>}"
    exec "$BIN/mws-clusterctl" drain "$ADDR" --addr "$DOOR" "${PROVISION[@]}" --wait 120
    ;;
  "") ;; # fall through: spawn the topology
  *)
    echo "usage: scripts/cluster.sh [status | join <addr> | drain <addr>]" >&2
    exit 2
    ;;
esac
PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
}
trap cleanup EXIT INT TERM

for addr in "${NODES[@]}"; do
  "$BIN/mws-mmsd" --listen "$addr" --shards 2 "${PROVISION[@]}" &
  PIDS+=($!)
  echo "==> warehouse node on $addr (pid $!)"
done

"$BIN/mws-pkgd" --listen 127.0.0.1:7102 "${PROVISION[@]}" &
PIDS+=($!)
echo "==> pkg on 127.0.0.1:7102 (pid $!)"

"$BIN/mws-gatekeeperd" --listen 127.0.0.1:7103 "${PROVISION[@]}" \
  --cluster-node "${NODES[0]}" --cluster-node "${NODES[1]}" --cluster-node "${NODES[2]}" \
  --replicas 2 --write-quorum 2 &
PIDS+=($!)
echo "==> cluster front door on 127.0.0.1:7103 (pid $!)  [R=2 W=2 over ${#NODES[@]} nodes]"

echo "==> cluster up; Ctrl-C to stop"
wait
