#!/usr/bin/env bash
# Tier-1 gate: everything that must be green before a merge.
# Run from the repository root: scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> tier-1 gate passed"
