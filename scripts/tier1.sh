#!/usr/bin/env bash
# Tier-1 gate: everything that must be green before a merge.
# Run from the repository root: scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --doc -q"
cargo test --doc -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> crypto_bench --smoke (fast-path bit-identity gate)"
cargo run --release -p mws-bench --bin crypto_bench -- --smoke

echo "==> load_bench --smoke (durable-before-ack + dedup under socket load)"
cargo run --release -p mws-bench --bin load_bench -- --smoke

echo "==> load_bench --cluster --smoke (3-node R=2 quorum acks, exactly R copies)"
cargo run --release -p mws-bench --bin load_bench -- --cluster --smoke

echo "==> load_bench --rebalance --smoke (live join mid-load, exactly R copies after evict)"
cargo run --release -p mws-bench --bin load_bench -- --rebalance --smoke

echo "==> load_bench --connections --smoke (idle fleet on the event core, bursts all acked)"
cargo run --release -p mws-bench --bin load_bench -- --connections --smoke

echo "==> load_bench --secure --smoke (IBS handshake + sealed deposits all acked)"
cargo run --release -p mws-bench --bin load_bench -- --secure --smoke

echo "==> MWS_TRANSPORT=secure loopback deployment (every link handshaked + sealed)"
MWS_TRANSPORT=secure cargo test -q -p mws --test tcp_deployment

echo "==> MWS_LOG=warn smoke (happy path emits no error-level events)"
SMOKE_OUT="$(MWS_LOG=warn cargo test -q -p mws --test observability -- --nocapture 2>&1)"
if grep -q " ERROR " <<<"${SMOKE_OUT}"; then
  grep " ERROR " <<<"${SMOKE_OUT}" >&2
  echo "error-level events during the happy-path loopback flow" >&2
  exit 1
fi

# Opt-in chaos gate: MWS_CHAOS=1 scripts/tier1.sh additionally runs the
# seeded chaos suite across its pinned seed schedule (scripts/chaos.sh
# prints the failing seed on any assertion failure).
if [ "${MWS_CHAOS:-0}" = "1" ]; then
  echo "==> scripts/chaos.sh (MWS_CHAOS=1)"
  scripts/chaos.sh
fi

echo "==> tier-1 gate passed"
